"""Arrival processes: when packets show up at an input.

All stochastic processes here draw counter-based randomness
(:mod:`repro.traffic.rng`): the only mutable state is a few integers
per port, so workloads built on them snapshot/restore bit-identically
across process boundaries -- the contract
:mod:`repro.parallel.fabric_shard` requires.  (The historical
:class:`Bernoulli` consumed a shared ``np.random.Generator``, which was
silently incompatible with sharding: a resumed slice could not replay
the generator's interleaved draw stream.)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.seeds import coerce_seed as _coerce_seed
from repro.traffic.rng import draw_float, draw_int, geometric_length, pareto_length


class ArrivalProcess:
    """Answers "does this input offer a packet right now?" per poll."""

    def offers(self, port: int) -> bool:
        raise NotImplementedError

    @property
    def load(self) -> float:
        """Nominal offered load in [0, 1] (1 = saturated)."""
        raise NotImplementedError


class Saturated(ArrivalProcess):
    """Inputs always backlogged -- the peak/average measurement regime."""

    def offers(self, port: int) -> bool:
        return True

    @property
    def load(self) -> float:
        return 1.0


class Bernoulli(ArrivalProcess):
    """Each poll independently offers a packet with probability ``p``.

    Under the quantum-per-poll fabric driver this approximates a
    Bernoulli-per-slot arrival process, the standard load model in the
    crossbar-scheduling literature (iSLIP, HOL analyses).  Draws are
    counter-based per port, so Bernoulli workloads shard bit-identically
    (``state()``/``restore()`` are the shard protocol).
    """

    def __init__(self, p: float, seed=0, ports: int = 64):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        self.p = p
        self.seed = _coerce_seed(seed)
        self._draws: List[int] = [0] * ports

    def _ensure(self, port: int) -> None:
        if port >= len(self._draws):
            self._draws.extend([0] * (port + 1 - len(self._draws)))

    def offers(self, port: int) -> bool:
        self._ensure(port)
        k = self._draws[port]
        self._draws[port] = k + 1
        return draw_float(self.seed, port, k) < self.p

    @property
    def load(self) -> float:
        return self.p

    # -- shard protocol -------------------------------------------------
    def state(self) -> Tuple[int, ...]:
        return tuple(self._draws)

    def restore(self, state) -> "Bernoulli":
        self._draws = list(state)
        return self


class OnOff(ArrivalProcess):
    """Two-state modulated arrivals (MMPP-style, optionally heavy-tailed).

    In the *on* state each poll offers with probability ``p``; in the
    *off* state never.  State durations (in polls) are geometric with
    means ``mean_on`` / ``mean_off``, or Pareto(``alpha``) when
    ``heavy=True`` -- the long-range-dependent trains of measured
    internet traffic, which stress buffering far beyond iid loads.
    Counter-based and per-port independent, so it shards.
    """

    def __init__(
        self,
        mean_on: float = 16.0,
        mean_off: float = 16.0,
        p: float = 1.0,
        seed=0,
        heavy: bool = False,
        alpha: float = 1.5,
        ports: int = 64,
    ):
        if mean_on < 1.0 or mean_off < 1.0:
            raise ValueError("on/off mean durations must be >= 1 poll")
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        if heavy and alpha <= 1.0:
            raise ValueError("heavy-tailed durations need alpha > 1")
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.p = p
        self.heavy = heavy
        self.alpha = alpha
        self.seed = _coerce_seed(seed)
        self._draws: List[int] = [0] * ports
        self._on: List[bool] = [False] * ports
        self._left: List[int] = [0] * ports

    def _ensure(self, port: int) -> None:
        if port >= len(self._draws):
            grow = port + 1 - len(self._draws)
            self._draws.extend([0] * grow)
            self._on.extend([False] * grow)
            self._left.extend([0] * grow)

    def _draw(self, port: int, stream_offset: int) -> float:
        k = self._draws[port]
        self._draws[port] = k + 1
        return draw_float(self.seed, port * 4 + stream_offset, k)

    def offers(self, port: int) -> bool:
        self._ensure(port)
        while self._left[port] == 0:
            self._on[port] = not self._on[port]
            mean = self.mean_on if self._on[port] else self.mean_off
            u = self._draw(port, 1)
            self._left[port] = (
                pareto_length(u, mean, self.alpha)
                if self.heavy
                else geometric_length(u, mean)
            )
        self._left[port] -= 1
        if not self._on[port]:
            return False
        return self.p >= 1.0 or self._draw(port, 2) < self.p

    @property
    def load(self) -> float:
        return self.p * self.mean_on / (self.mean_on + self.mean_off)

    # -- shard protocol -------------------------------------------------
    def state(self) -> Tuple:
        return tuple(self._draws), tuple(self._on), tuple(self._left)

    def restore(self, state) -> "OnOff":
        draws, on, left = state
        self._draws = list(draws)
        self._on = list(on)
        self._left = list(left)
        return self


# ---------------------------------------------------------------------------
# Per-slot arrivals for the cell-switch baselines (repro.baselines).
# ---------------------------------------------------------------------------
class IIDSlotArrivals:
    """One slot of per-input Bernoulli arrivals with uniform destinations.

    Preserves the historical shared-generator draw order (per input:
    one ``random()`` gate, then one ``integers(0, n)`` destination) so
    the seeded chapter-2 baseline experiments stay bit-identical.
    """

    def __init__(self, n: int, rng):
        self.n = n
        self.rng = rng

    def slot(self, load: float) -> List[Optional[int]]:
        out: List[Optional[int]] = []
        for _ in range(self.n):
            if self.rng.random() < load:
                out.append(int(self.rng.integers(0, self.n)))
            else:
                out.append(None)
        return out


class CounterSlotArrivals:
    """The counter-based, shard-safe variant of :class:`IIDSlotArrivals`."""

    def __init__(self, n: int, seed: int = 0):
        self.n = n
        self.seed = int(seed)
        self._slots = 0

    def slot(self, load: float) -> List[Optional[int]]:
        k = self._slots
        self._slots = k + 1
        out: List[Optional[int]] = []
        for i in range(self.n):
            if draw_float(self.seed, i * 2, k) < load:
                out.append(draw_int(self.seed, i * 2 + 1, k, self.n))
            else:
                out.append(None)
        return out

    def state(self) -> int:
        return self._slots

    def restore(self, state: int) -> "CounterSlotArrivals":
        self._slots = int(state)
        return self
