"""Arrival processes: when packets show up at an input."""

from __future__ import annotations

import numpy as np


class ArrivalProcess:
    """Answers "does this input offer a packet right now?" per poll."""

    def offers(self, port: int) -> bool:
        raise NotImplementedError

    @property
    def load(self) -> float:
        """Nominal offered load in [0, 1] (1 = saturated)."""
        raise NotImplementedError


class Saturated(ArrivalProcess):
    """Inputs always backlogged -- the peak/average measurement regime."""

    def offers(self, port: int) -> bool:
        return True

    @property
    def load(self) -> float:
        return 1.0


class Bernoulli(ArrivalProcess):
    """Each poll independently offers a packet with probability ``p``.

    Under the quantum-per-poll fabric driver this approximates a
    Bernoulli-per-slot arrival process, the standard load model in the
    crossbar-scheduling literature (iSLIP, HOL analyses).
    """

    def __init__(self, p: float, rng: np.random.Generator):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        self.p = p
        self.rng = rng

    def offers(self, port: int) -> bool:
        return bool(self.rng.random() < self.p)

    @property
    def load(self) -> float:
        return self.p
