"""Workload generation: one replayable traffic layer for every engine.

The thesis's evaluation uses two traffic regimes: conflict-free
permutation traffic for peak rate (section 7.2) and uniform traffic
"under complete fairness" for the average rate (section 7.3).  This
package provides those plus the adversarial workloads real switch cores
are judged on -- bursty trains, hotspots (static and drifting), IMIX
size mixes, on-off/MMPP and heavy-tailed arrivals, and recorded-trace
replay -- all behind one declarative, schema-tagged
:class:`~repro.traffic.spec.TrafficSpec` and one factory,
:func:`build` (:mod:`repro.traffic.build`), that every engine and
baseline constructs its sources through.

Stochastic draws are counter-based (:mod:`repro.traffic.rng`), so every
source composes with :mod:`repro.parallel.fabric_shard`'s time-sliced
sharding: the mutable state is a handful of integers per port.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    Bernoulli,
    CounterSlotArrivals,
    IIDSlotArrivals,
    OnOff,
    Saturated,
)
from repro.traffic.build import (
    build,
    fabric_source as build_fabric_source,
    router_traffic as build_router_traffic,
    shard_source,
    size_distribution,
    slot_arrivals,
    wordlevel_source as build_wordlevel_source,
)
from repro.traffic.model import SpecModel, TrafficModel
from repro.traffic.patterns import (
    BurstyDestinations,
    DestinationPattern,
    FixedPermutation,
    HotspotDestinations,
    RotatingPermutation,
    UniformDestinations,
)
from repro.traffic.replay import TraceReplay, generate_trace, iter_flows, scan_trace
from repro.traffic.sizes import (
    PAPER_SIZES,
    BimodalSizes,
    FixedSize,
    IMix,
    SizeDistribution,
    UniformSizes,
)
from repro.traffic.spec import (
    PRESETS,
    TRAFFIC_SCHEMA,
    ArrivalSpec,
    PatternSpec,
    SizeSpec,
    TrafficSpec,
    resolve_traffic,
    spec_from_legacy,
)
from repro.traffic.workload import PacketFactory, Workload, fabric_source

__all__ = [
    "DestinationPattern",
    "UniformDestinations",
    "FixedPermutation",
    "RotatingPermutation",
    "HotspotDestinations",
    "BurstyDestinations",
    "SizeDistribution",
    "FixedSize",
    "IMix",
    "UniformSizes",
    "BimodalSizes",
    "PAPER_SIZES",
    "ArrivalProcess",
    "Saturated",
    "Bernoulli",
    "OnOff",
    "IIDSlotArrivals",
    "CounterSlotArrivals",
    "Workload",
    "PacketFactory",
    "fabric_source",
    # The declarative layer.
    "TrafficSpec",
    "PatternSpec",
    "SizeSpec",
    "ArrivalSpec",
    "TRAFFIC_SCHEMA",
    "PRESETS",
    "resolve_traffic",
    "spec_from_legacy",
    "TrafficModel",
    "SpecModel",
    "TraceReplay",
    "generate_trace",
    "iter_flows",
    "scan_trace",
    # The one factory.
    "build",
    "build_fabric_source",
    "build_router_traffic",
    "build_wordlevel_source",
    "shard_source",
    "slot_arrivals",
    "size_distribution",
]
