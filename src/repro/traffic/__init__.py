"""Workload generation: destination patterns, arrivals, packet sizes.

The thesis's evaluation uses two traffic regimes: conflict-free
permutation traffic for peak rate (section 7.2) and uniform traffic
"under complete fairness" for the average rate (section 7.3).  This
package provides those plus the bursty / hotspot / IMIX generators the
wider experiments (baseline switches, QoS, multicast) need, and the
line-card processes that feed packets into the simulated router.
"""

from repro.traffic.patterns import (
    DestinationPattern,
    UniformDestinations,
    FixedPermutation,
    RotatingPermutation,
    HotspotDestinations,
    BurstyDestinations,
)
from repro.traffic.sizes import (
    SizeDistribution,
    FixedSize,
    IMix,
    UniformSizes,
    BimodalSizes,
    PAPER_SIZES,
)
from repro.traffic.arrivals import ArrivalProcess, Saturated, Bernoulli
from repro.traffic.workload import Workload, PacketFactory, fabric_source

__all__ = [
    "DestinationPattern",
    "UniformDestinations",
    "FixedPermutation",
    "RotatingPermutation",
    "HotspotDestinations",
    "BurstyDestinations",
    "SizeDistribution",
    "FixedSize",
    "IMix",
    "UniformSizes",
    "BimodalSizes",
    "PAPER_SIZES",
    "ArrivalProcess",
    "Saturated",
    "Bernoulli",
    "Workload",
    "PacketFactory",
    "fabric_source",
]
