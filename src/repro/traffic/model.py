"""The replayable TrafficModel protocol and its synthetic implementation.

A *traffic model* is the one shape every engine consumes:

``next_packet(port) -> Optional[(dest, size_bytes)]``
    None means "no arrival at this poll" (engines idle the port).
``state() -> picklable`` / ``restore(state)``
    Snapshot/resume the model bit-identically at any poll boundary --
    the :mod:`repro.parallel.fabric_shard` shard protocol.
``deterministic: bool``
    True only when the destination stream is a pure function of the
    port (licenses the fabric's steady-state fast-forward).

:class:`SpecModel` realizes a synthetic
:class:`~repro.traffic.spec.TrafficSpec` with counter-based draws
(:mod:`repro.traffic.rng`): the only mutable state is a few integers
per port, so the model shards and pickles trivially.  Trace replay is
:class:`repro.traffic.replay.TraceReplay`, which implements the same
protocol.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Tuple, runtime_checkable

from repro import seeds
from repro.traffic.rng import (
    draw_float,
    draw_int,
    geometric_length,
    pareto_length,
)
from repro.traffic.spec import ArrivalSpec, PatternSpec, SizeSpec, TrafficSpec

#: Per-port draw streams (stream id = port * _STRIDE + offset).
_S_PATTERN = 0
_S_SIZE = 1
_S_ARRIVAL = 2
_S_DURATION = 3
_S_BURST = 4
_STRIDE = 8


@runtime_checkable
class TrafficModel(Protocol):
    """The unified per-port packet source every engine adapts."""

    deterministic: bool

    def next_packet(self, port: int) -> Optional[Tuple[int, int]]:
        """(destination port, size bytes) or None for no arrival."""
        ...

    def state(self) -> Any:
        ...

    def restore(self, state: Any) -> "TrafficModel":
        ...


class SpecModel:
    """Counter-based realization of a synthetic :class:`TrafficSpec`.

    ``gate_arrivals=False`` strips the arrival process (every poll
    offers): the router engine's line-card path paces arrivals in
    simulated time itself and only needs the pattern/size draws.
    """

    def __init__(
        self,
        spec: TrafficSpec,
        n: int,
        seed: int = 0,
        gate_arrivals: bool = True,
    ):
        if spec.kind != "synthetic":
            raise ValueError("SpecModel realizes synthetic specs only")
        if n < 2:
            raise ValueError("need at least two ports")
        pat = spec.pattern
        if pat.kind in ("hotspot",) and pat.hot_port >= n:
            raise ValueError(
                f"hot_port {pat.hot_port} out of range for {n} ports"
            )
        self.spec = spec
        self.n = n
        self.seed = seeds.spec_seed(seed)
        self.gate = gate_arrivals and spec.arrivals.kind != "saturated"
        # The destination stream is a pure function of the port only for
        # a drift-free permutation with fixed sizes and no gating.
        self.deterministic = (
            pat.kind == "permutation"
            and spec.sizes.kind == "fixed"
            and not self.gate
        )
        # Per-port counters -- the entire mutable state.
        self._pat = [0] * n  #: pattern draws consumed
        self._size = [0] * n  #: size draws consumed
        self._arr = [0] * n  #: arrival draws consumed
        self._dur = [0] * n  #: on/off duration draws consumed
        self._offered = [0] * n  #: packets offered (drives hotspot drift)
        self._cur: list = [None] * n  #: bursty: current train destination
        self._on = [False] * n  #: onoff: current state (starts off->draw)
        self._left = [0] * n  #: onoff: polls left in the current state

    # -- draws ----------------------------------------------------------
    def _f(self, port: int, sub: int, counter_list) -> float:
        k = counter_list[port]
        counter_list[port] = k + 1
        return draw_float(self.seed, port * _STRIDE + sub, k)

    def _i(self, port: int, sub: int, counter_list, n: int) -> int:
        k = counter_list[port]
        counter_list[port] = k + 1
        return draw_int(self.seed, port * _STRIDE + sub, k, n)

    # -- arrival process ------------------------------------------------
    def _offers(self, port: int) -> bool:
        a = self.spec.arrivals
        if not self.gate:
            return True
        if a.kind == "bernoulli":
            return self._f(port, _S_ARRIVAL, self._arr) < a.p
        # onoff: advance the two-state machine by one poll.
        while self._left[port] == 0:
            self._on[port] = not self._on[port]
            mean = a.mean_on if self._on[port] else a.mean_off
            u = self._f(port, _S_DURATION, self._dur)
            self._left[port] = (
                pareto_length(u, mean, a.alpha)
                if a.heavy
                else geometric_length(u, mean)
            )
        self._left[port] -= 1
        if not self._on[port]:
            return False
        if a.p >= 1.0:
            return True
        return self._f(port, _S_ARRIVAL, self._arr) < a.p

    # -- destination pattern --------------------------------------------
    def _uniform_dest(self, port: int, sub: int, counters, exclude_self: bool) -> int:
        if not exclude_self:
            return self._i(port, sub, counters, self.n)
        d = self._i(port, sub, counters, self.n - 1)
        return d if d < port else d + 1

    def _next_dest(self, port: int) -> int:
        p = self.spec.pattern
        if p.kind == "permutation":
            return (port + p.shift) % self.n
        if p.kind == "uniform":
            return self._uniform_dest(port, _S_PATTERN, self._pat, p.exclude_self)
        if p.kind == "hotspot":
            hot = p.hot_port
            if p.drift_packets:
                hot = (hot + self._offered[port] // p.drift_packets) % self.n
            if self._f(port, _S_PATTERN, self._pat) < p.p_hot:
                return hot
            return self._i(port, _S_PATTERN, self._pat, self.n)
        # bursty: geometric trains sharing one destination.
        cur = self._cur[port]
        if cur is None or self._f(port, _S_BURST, self._pat) < 1.0 / p.mean_burst:
            cur = self._uniform_dest(port, _S_PATTERN, self._pat, p.exclude_self)
            self._cur[port] = cur
        return cur

    # -- packet sizes ---------------------------------------------------
    def _next_size(self, port: int) -> int:
        s = self.spec.sizes
        if s.kind == "fixed":
            return s.bytes
        if s.kind == "imix":
            u = self._f(port, _S_SIZE, self._size) * sum(s.IMIX_WEIGHTS)
            acc = 0.0
            for size, w in zip(s.IMIX_SIZES, s.IMIX_WEIGHTS):
                acc += w
                if u < acc:
                    return size
            return s.IMIX_SIZES[-1]
        if s.kind == "uniform":
            span = s.hi // 4 - s.lo // 4 + 1
            return (s.lo // 4 + self._i(port, _S_SIZE, self._size, span)) * 4
        return (
            s.small
            if self._f(port, _S_SIZE, self._size) < s.p_small
            else s.large
        )

    # -- the TrafficModel protocol --------------------------------------
    def next_packet(self, port: int) -> Optional[Tuple[int, int]]:
        if not self._offers(port):
            return None
        dest = self._next_dest(port)
        size = self._next_size(port)
        self._offered[port] += 1
        return dest, size

    def state(self) -> Tuple:
        return (
            tuple(self._pat),
            tuple(self._size),
            tuple(self._arr),
            tuple(self._dur),
            tuple(self._offered),
            tuple(self._cur),
            tuple(self._on),
            tuple(self._left),
        )

    def restore(self, state) -> "SpecModel":
        (pat, size, arr, dur, offered, cur, on, left) = state
        if len(pat) != self.n:
            raise ValueError("model state has the wrong port count")
        self._pat = list(pat)
        self._size = list(size)
        self._arr = list(arr)
        self._dur = list(dur)
        self._offered = list(offered)
        self._cur = list(cur)
        self._on = list(on)
        self._left = list(left)
        return self

    # -- convenience ----------------------------------------------------
    @property
    def load(self) -> float:
        return 1.0 if not self.gate else self.spec.arrivals.load

    @property
    def num_ports(self) -> int:
        """Duck-type compatibility with :class:`repro.traffic.workload.Workload`."""
        return self.n
