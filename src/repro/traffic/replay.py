"""Trace-driven traffic: stream flow records from disk, never materialized.

A trace is a sequence of *flow records* -- ``(src, dst, bytes, count)``:
``count`` packets of ``bytes`` bytes from input ``src`` to output
``dst``.  Two formats, chosen by extension:

``.csv``
    Header ``src,dst,bytes,count`` (``count`` optional, default 1),
    one record per line.
``.jsonl``
    One JSON object per line: ``{"src": 0, "dst": 2, "bytes": 576,
    "count": 12}``.

:class:`TraceReplay` implements the
:class:`~repro.traffic.model.TrafficModel` protocol by streaming the
file: records are read lazily as ports consume them and buffered
per-port, so a multi-gigabyte trace costs O(buffered records) memory,
not O(file).  The shard state is just the per-port consumed-packet
counts -- the stream position and buffers are a pure function of those
counts (records are read in file order, each pulled only when some
port's buffer runs dry), so :meth:`TraceReplay.restore` replays
consumption from the top of the file and lands on the identical state
regardless of which process resumes the run.

``python -m repro replay TRACE --check`` is the CI smoke: the bundled
trace through the fabric engine (twice, for determinism; serial vs
sharded, for the shard protocol) and the word-level engine, writing a
stats artifact.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

REPLAY_STATS_SCHEMA = "repro-replay-stats/1"

#: A parsed flow record: (src port, dst port, packet bytes, packet count).
FlowRecord = Tuple[int, int, int, int]


def _parse_csv_line(line: str, lineno: int) -> Optional[FlowRecord]:
    parts = [p.strip() for p in line.split(",")]
    if not parts or parts[0] in ("", "src"):
        return None  # blank line or header
    try:
        src, dst, nbytes = int(parts[0]), int(parts[1]), int(parts[2])
        count = int(parts[3]) if len(parts) > 3 and parts[3] else 1
    except (ValueError, IndexError):
        raise ValueError(f"trace line {lineno}: malformed CSV record {line!r}")
    return src, dst, nbytes, count


def _parse_jsonl_line(line: str, lineno: int) -> Optional[FlowRecord]:
    line = line.strip()
    if not line:
        return None
    try:
        obj = json.loads(line)
        return (
            int(obj["src"]),
            int(obj["dst"]),
            int(obj["bytes"]),
            int(obj.get("count", 1)),
        )
    except (ValueError, KeyError, TypeError):
        raise ValueError(f"trace line {lineno}: malformed JSONL record {line!r}")


def iter_flows(path: str) -> Iterator[FlowRecord]:
    """Stream flow records from a trace file, one at a time."""
    parse = _parse_jsonl_line if path.endswith(".jsonl") else _parse_csv_line
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            rec = parse(line, lineno)
            if rec is not None:
                yield rec


class TraceReplay:
    """Replay a recorded trace as a shardable TrafficModel.

    ``loop`` wraps to the top of the file at EOF -- required by
    saturated-only engines (word level); without it an exhausted trace
    returns None forever and the fabric engine idles out the budget.
    """

    deterministic = False

    def __init__(self, path: str, n: int, loop: bool = False):
        if n < 1:
            raise ValueError("need at least one port")
        if not os.path.exists(path):
            raise FileNotFoundError(f"trace file not found: {path}")
        self.path = path
        self.n = n
        self.loop = loop
        self._consumed = [0] * n  #: packets taken per port (the shard state)
        self._buffers: List[Deque[Tuple[int, int, int]]] = [deque() for _ in range(n)]
        self._stream: Optional[Iterator[FlowRecord]] = None

    def _validated(self, rec: FlowRecord) -> Tuple[int, int, int, int]:
        src, dst, nbytes, count = rec
        if not 0 <= src < self.n:
            raise ValueError(
                f"trace record src port {src} out of range for {self.n} ports"
            )
        if not 0 <= dst < self.n:
            raise ValueError(
                f"trace record dst port {dst} out of range for {self.n} ports"
            )
        if nbytes < 20 or nbytes % 4:
            raise ValueError(
                f"trace record size {nbytes}B: sizes must be word-aligned "
                "and at least an IP header"
            )
        if count < 1:
            raise ValueError(f"trace record count {count} must be >= 1")
        return src, dst, nbytes, count

    def _pull(self, port: int) -> bool:
        """Read records until ``port`` has one buffered; False at EOF."""
        if self._stream is None:
            self._stream = iter_flows(self.path)
        wrapped = False
        while not self._buffers[port]:
            rec = next(self._stream, None)
            if rec is None:
                # A second EOF within one pull means a whole pass added
                # nothing for this port: stop rather than loop forever.
                if not self.loop or wrapped:
                    return False
                wrapped = True
                self._stream = iter_flows(self.path)
                continue
            src, dst, nbytes, count = self._validated(rec)
            self._buffers[src].append((dst, nbytes, count))
        return True

    # -- the TrafficModel protocol --------------------------------------
    def next_packet(self, port: int) -> Optional[Tuple[int, int]]:
        if not self._pull(port):
            return None
        dst, nbytes, remaining = self._buffers[port][0]
        if remaining <= 1:
            self._buffers[port].popleft()
        else:
            self._buffers[port][0] = (dst, nbytes, remaining - 1)
        self._consumed[port] += 1
        return dst, nbytes

    def state(self) -> Tuple[int, ...]:
        return tuple(self._consumed)

    def restore(self, state) -> "TraceReplay":
        """Rebuild from consumed counts by replaying consumption.

        The stream position and buffer contents depend only on *how
        many* packets each port took, not the interleaving, so pulling
        ``state[p]`` packets per port from a fresh stream reproduces
        the exact mid-run state in any process.
        """
        if len(state) != self.n:
            raise ValueError("replay state has the wrong port count")
        self._consumed = [0] * self.n
        self._buffers = [deque() for _ in range(self.n)]
        self._stream = None
        for port, count in enumerate(state):
            for _ in range(count):
                if self.next_packet(port) is None:
                    raise ValueError(
                        f"replay state wants {count} packets from port {port} "
                        "but the trace ran dry"
                    )
        return self

    @property
    def num_ports(self) -> int:
        return self.n


def generate_trace(
    path: str,
    flows: int = 1000,
    ports: int = 4,
    seed: int = 0,
    max_count: int = 8,
) -> int:
    """Write a synthetic IMIX flow trace; returns total packet count.

    Deterministic in ``seed`` (counter-based draws), so the bundled
    example trace under ``examples/`` is exactly reproducible.
    """
    from repro.traffic.rng import draw_int
    from repro.traffic.spec import SizeSpec

    sizes = SizeSpec.IMIX_SIZES
    weights = SizeSpec.IMIX_WEIGHTS
    cdf: List[int] = []
    acc = 0
    for w in weights:
        acc += w
        cdf.append(acc)
    total = 0
    jsonl = path.endswith(".jsonl")
    with open(path, "w") as fh:
        if not jsonl:
            fh.write("src,dst,bytes,count\n")
        for i in range(flows):
            src = draw_int(seed, 1, i, ports)
            dst = draw_int(seed, 2, i, ports - 1)
            if dst >= src:
                dst += 1  # flows never loop back to their own port
            u = draw_int(seed, 3, i, cdf[-1])
            nbytes = sizes[next(j for j, c in enumerate(cdf) if u < c)]
            count = 1 + draw_int(seed, 4, i, max_count)
            total += count
            if jsonl:
                fh.write(
                    json.dumps(
                        {"src": src, "dst": dst, "bytes": nbytes, "count": count}
                    )
                    + "\n"
                )
            else:
                fh.write(f"{src},{dst},{nbytes},{count}\n")
    return total


def scan_trace(path: str) -> Dict[str, Any]:
    """One streaming pass: record/packet/byte totals and the port span."""
    records = packets = total_bytes = 0
    max_port = 0
    for src, dst, nbytes, count in iter_flows(path):
        records += 1
        packets += count
        total_bytes += nbytes * count
        max_port = max(max_port, src, dst)
    return {
        "records": records,
        "packets": packets,
        "bytes": total_bytes,
        "ports": max_port + 1,
    }


# ---------------------------------------------------------------------------
# ``python -m repro replay``: the workload-replay smoke.
# ---------------------------------------------------------------------------
def run_replay(
    trace: str,
    quanta: int = 600,
    cycles: int = 24_000,
    shards: int = 4,
    seed: int = 0,
    check: bool = False,
) -> Tuple[Dict[str, Any], List[str]]:
    """Run ``trace`` through fabric (serial + sharded) and word level.

    Returns ``(stats document, problems)``; with ``check`` the caller
    exits nonzero on problems.  The fabric run goes through the shard
    machinery (the serial step loop is the reference; the sharded run
    must match bit-for-bit), the word-level run through the engine
    layer with the trace looped (that model is saturated-only).
    """
    from repro.config import SimConfig
    from repro.engines import WordLevelEngine, WorkloadSpec
    from repro.parallel.fabric_shard import ShardSpec, run_serial, run_sharded
    from repro.traffic.spec import TrafficSpec

    info = scan_trace(trace)
    ports = max(info["ports"], 2)
    spec_json = TrafficSpec(kind="replay", trace=trace).to_json()
    shard_spec = ShardSpec(
        ports=ports,
        source=ShardSpec.pack_source(
            {"kind": "traffic", "json": spec_json, "seed": seed}
        ),
        quanta=quanta,
        warmup_quanta=0,
        shards=shards,
    )
    serial = run_serial(shard_spec)
    serial2 = run_serial(shard_spec)
    sharded, shard_info = run_sharded(shard_spec)

    problems: List[str] = []
    if serial.counters() != serial2.counters():
        problems.append("fabric determinism: two same-trace runs differ")
    if serial.counters() != sharded.counters():
        problems.append(
            f"shard identity: sharded stats differ from serial "
            f"({shard_info.shards} shards)"
        )
    if serial.delivered_packets < 1:
        problems.append("fabric run delivered no packets from the trace")

    doc: Dict[str, Any] = {
        "schema": REPLAY_STATS_SCHEMA,
        "trace": trace,
        "scan": info,
        "fabric": {
            "quanta": quanta,
            "shards": shard_info.shards,
            "delivered_packets": serial.delivered_packets,
            "delivered_words": serial.delivered_words,
            "gbps": serial.gbps,
            "sharded_match": serial.counters() == sharded.counters(),
        },
    }

    if ports == 4:
        wl = WordLevelEngine(SimConfig(fidelity="wordlevel", seed=seed)).run(
            WorkloadSpec(
                traffic=TrafficSpec(kind="replay", trace=trace, loop=True),
                cycles=cycles,
                warmup_cycles=0,
            )
        )
        doc["wordlevel"] = {
            "cycles": wl.cycles,
            "delivered_packets": wl.delivered_packets,
            "gbps": wl.gbps,
            "payload_errors": wl.extra.get("payload_errors", 0),
        }
        if wl.delivered_packets < 1:
            problems.append("wordlevel run delivered no packets from the trace")
        if wl.extra.get("payload_errors", 0):
            problems.append(
                f"wordlevel payload errors: {wl.extra['payload_errors']}"
            )
    else:
        doc["wordlevel"] = None  # the word-level model is fixed at 4 ports

    doc["problems"] = problems
    return doc, problems


def main(args) -> int:
    """Entry point behind ``python -m repro replay``."""
    import sys

    doc, problems = run_replay(
        args.trace,
        quanta=args.quanta,
        cycles=args.cycles,
        shards=args.shards,
        seed=args.seed,
        check=args.check,
    )
    scan = doc["scan"]
    print(
        f"{args.trace}: {scan['records']} flows, {scan['packets']} packets, "
        f"{scan['ports']} ports"
    )
    fab = doc["fabric"]
    print(
        f"fabric: {fab['delivered_packets']} pkts in {fab['quanta']} quanta, "
        f"{fab['gbps']:.3f} Gbps, sharded({fab['shards']}) "
        f"{'== serial' if fab['sharded_match'] else 'MISMATCH'}"
    )
    if doc.get("wordlevel"):
        wl = doc["wordlevel"]
        print(
            f"wordlevel: {wl['delivered_packets']} pkts in {wl['cycles']} "
            f"cycles, {wl['gbps']:.3f} Gbps"
        )
    if args.stats_out:
        with open(args.stats_out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.stats_out}")
    for p in problems:
        print(f"replay check failed: {p}", file=sys.stderr)
    if args.check:
        if problems:
            return 1
        print("replay check ok: deterministic, sharded == serial")
    return 0
