"""``traffic.build``: the one factory every engine builds sources through.

Dispatch rule: the *legacy trio* -- a drift-free
permutation/uniform/hotspot pattern with fixed sizes and saturated
arrivals -- routes to each engine's historical constructor with the
historical RNG and draw order, so pre-existing workloads are
bit-identical through this factory (the compat guarantee
``tests/test_traffic_spec.py`` pins).  Everything else (replay, IMIX,
on-off/MMPP, bursty, hotspot drift, Bernoulli) builds the unified
counter-based :class:`~repro.traffic.model.SpecModel` /
:class:`~repro.traffic.replay.TraceReplay` and wraps it in the
engine-specific adapter.  Counter-based draws are what make the new
sources shard (`{"kind": "traffic", ...}` in
:class:`~repro.parallel.fabric_shard.ShardSpec`).
"""

from __future__ import annotations

import json
from typing import Any, Optional, Tuple

from repro.config import CostModel, SimConfig
from repro.traffic.model import SpecModel, TrafficModel
from repro.traffic.replay import TraceReplay
from repro.traffic.spec import (
    ArrivalSpec,
    TrafficLike,
    TrafficSpec,
    resolve_traffic,
)


def _check_hot_port(spec: TrafficSpec, ports: int) -> None:
    """The engine-build-time range check (port count is not known when
    the spec is constructed)."""
    p = spec.pattern
    if spec.kind == "synthetic" and p.kind == "hotspot" and p.hot_port >= ports:
        raise ValueError(
            f"hot_port {p.hot_port} out of range: the engine has {ports} "
            f"ports (valid hot ports are 0..{ports - 1})"
        )


def _is_legacy(spec: TrafficSpec) -> bool:
    """True when the spec is exactly a thesis-era canned workload."""
    return (
        spec.kind == "synthetic"
        and spec.arrivals.kind == "saturated"
        and spec.sizes.kind == "fixed"
        and spec.pattern.kind in ("permutation", "uniform", "hotspot")
        and not (spec.pattern.kind == "hotspot" and spec.pattern.drift_packets)
    )


def _model(spec: TrafficSpec, ports: int, seed: int,
           gate_arrivals: bool = True, loop: Optional[bool] = None) -> TrafficModel:
    if spec.kind == "replay":
        return TraceReplay(
            spec.trace, n=ports, loop=spec.loop if loop is None else loop
        )
    return SpecModel(spec, n=ports, seed=seed, gate_arrivals=gate_arrivals)


# ---------------------------------------------------------------------------
# Fabric (quantum-level) fidelity.
# ---------------------------------------------------------------------------
class FabricModelSource:
    """Adapt a TrafficModel to the fabric PortSource protocol
    (destination + word count per poll; shard state passes through)."""

    def __init__(self, model: TrafficModel, costs: CostModel):
        self.model = model
        self.costs = costs
        self.deterministic = bool(getattr(model, "deterministic", False))

    def __call__(self, port: int) -> Optional[Tuple[int, int]]:
        drawn = self.model.next_packet(port)
        if drawn is None:
            return None
        dest, nbytes = drawn
        return dest, self.costs.bytes_to_words(nbytes)

    def state(self):
        return self.model.state()

    def restore(self, state) -> "FabricModelSource":
        self.model.restore(state)
        return self


def fabric_source(spec: TrafficLike, config: SimConfig,
                  force_counter: bool = False):
    """A fabric PortSource for ``spec`` under ``config``.

    ``force_counter`` builds the counter-based model even for legacy
    workloads -- the shard path needs ``state()``/``restore()``, which
    the historical shared-RNG sources cannot provide.
    """
    import numpy as np

    from repro.core.fabricsim import (
        saturated_hotspot,
        saturated_permutation,
        saturated_uniform,
    )

    spec = resolve_traffic(spec)
    if spec is None:
        raise ValueError("fabric_source needs a traffic spec")
    n = config.ports
    costs = config.cost_model()
    _check_hot_port(spec, n)
    if _is_legacy(spec) and not force_counter:
        p = spec.pattern
        words = costs.bytes_to_words(spec.sizes.bytes)
        if p.kind == "permutation":
            return saturated_permutation(words, shift=p.shift, n=n)
        rng = np.random.default_rng(config.seed)
        if p.kind == "uniform":
            return saturated_uniform(
                words, rng, n=n, exclude_self=p.exclude_self
            )
        return saturated_hotspot(
            words, rng, hot=p.hot_port, p_hot=p.p_hot, n=n
        )
    return FabricModelSource(_model(spec, n, config.seed), costs)


def shard_source(spec: TrafficLike, seed: int = 0) -> dict:
    """The ``ShardSpec.source`` dict for a traffic spec (counter-based,
    so the shard protocol's state/restore applies to every kind)."""
    resolved = resolve_traffic(spec)
    if resolved is None:
        raise ValueError("shard_source needs a traffic spec")
    return {"kind": "traffic", "json": resolved.to_json(), "seed": seed}


def fabric_source_for_shard(source_dict: dict, ports: int,
                            costs: CostModel) -> FabricModelSource:
    """Build the worker-side source from a ShardSpec ``traffic`` entry."""
    if "json" in source_dict:
        spec = TrafficSpec.from_dict(json.loads(source_dict["json"]))
    elif "spec" in source_dict:
        spec = resolve_traffic(source_dict["spec"])
    else:
        raise ValueError("traffic shard source needs a 'json' or 'spec' entry")
    seed = int(source_dict.get("seed", 0))
    config = SimConfig(ports=ports, costs=costs, seed=seed)
    src = fabric_source(spec, config, force_counter=True)
    assert isinstance(src, FabricModelSource)
    return src


# ---------------------------------------------------------------------------
# Router (phase-level) fidelity.
# ---------------------------------------------------------------------------
def router_traffic(spec: TrafficLike, config: SimConfig):
    """(workload-like, PacketFactory, offered_load) for the router engine.

    ``offered_load`` is None for saturated specs (attach via
    ``attach_saturated``); otherwise the line-card path paces the
    pattern/size stream at the arrival process's mean load in simulated
    time (``attach_linecards``), since the kernel-process ingress treats
    a None supply as end-of-stream rather than an idle poll.
    """
    import numpy as np

    from repro.traffic.arrivals import Saturated
    from repro.traffic.patterns import (
        FixedPermutation,
        HotspotDestinations,
        UniformDestinations,
    )
    from repro.traffic.sizes import FixedSize
    from repro.traffic.workload import PacketFactory, Workload

    spec = resolve_traffic(spec)
    if spec is None:
        raise ValueError("router_traffic needs a traffic spec")
    n = config.ports
    _check_hot_port(spec, n)
    rng = np.random.default_rng(config.seed)
    factory = PacketFactory(n, rng)
    if spec.kind == "replay":
        return TraceReplay(spec.trace, n=n, loop=spec.loop), factory, None
    if _is_legacy(spec):
        p = spec.pattern
        if p.kind == "permutation":
            pattern = FixedPermutation.shift(n, p.shift)
        elif p.kind == "uniform":
            pattern = UniformDestinations(n, rng, exclude_self=p.exclude_self)
        else:
            pattern = HotspotDestinations(n, rng, hot=p.hot_port, p_hot=p.p_hot)
        workload = Workload(pattern, FixedSize(spec.sizes.bytes), Saturated())
        return workload, factory, None
    if spec.arrivals.kind == "saturated":
        return SpecModel(spec, n=n, seed=config.seed), factory, None
    # Paced: strip the arrival gate (line cards pace in simulated time).
    model = SpecModel(spec, n=n, seed=config.seed, gate_arrivals=False)
    return model, factory, spec.arrivals.load


# ---------------------------------------------------------------------------
# Word-level fidelity.
# ---------------------------------------------------------------------------
class WordModelSource:
    """Adapt a (saturated) TrafficModel to the word-level WordSource
    protocol: mint real IPv4 packets the way the historical closures do."""

    def __init__(self, model: TrafficModel, max_bytes: int):
        from repro.ip.packet import IPv4Packet  # noqa: F401  (import check)

        self.model = model
        self.max_bytes = max_bytes
        self._count = 0

    def __call__(self, port: int):
        from repro.ip.packet import IPv4Packet

        drawn = self.model.next_packet(port)
        if drawn is None:
            raise RuntimeError(
                "word-level source ran dry: the word-level model needs a "
                "saturated traffic model (loop replay traces)"
            )
        dest, nbytes = drawn
        self._count += 1
        pkt = IPv4Packet.synthesize(
            src=(10 << 24) | port,
            dst=(dest << 30) | self._count % (1 << 24),
            size_bytes=nbytes,
            ident=self._count,
        )
        return dest, pkt


def wordlevel_source(spec: TrafficLike, config: SimConfig):
    """A word-level WordSource for ``spec`` (4 ports, saturated,
    single-quantum packets -- the model's standing restrictions)."""
    import numpy as np

    from repro.router.wordlevel import permutation_source, uniform_source

    spec = resolve_traffic(spec)
    if spec is None:
        raise ValueError("wordlevel_source needs a traffic spec")
    n = config.ports
    costs = config.cost_model()
    _check_hot_port(spec, n)
    max_bytes = costs.max_quantum_words * costs.word_bytes
    if spec.kind == "replay":
        # Saturated-only engine: loop the trace so it never runs dry.
        model = TraceReplay(spec.trace, n=n, loop=True)
        return WordModelSource(model, max_bytes)
    if spec.arrivals.kind != "saturated":
        raise ValueError(
            "the word-level engine is saturated-only; arrival processes "
            "apply at fabric/router fidelity"
        )
    if spec.sizes.max_bytes() > max_bytes:
        raise ValueError(
            f"word-level packets are single-quantum: size distribution "
            f"reaches {spec.sizes.max_bytes()}B > {max_bytes}B"
        )
    if _is_legacy(spec):
        p = spec.pattern
        if p.kind == "permutation":
            return permutation_source(spec.sizes.bytes, shift=p.shift)
        if p.kind == "uniform":
            return uniform_source(
                spec.sizes.bytes,
                np.random.default_rng(config.seed),
                exclude_self=p.exclude_self,
            )
        # Legacy hotspot historically raised on this engine; it now runs
        # through the unified model below.
    model = SpecModel(spec, n=n, seed=config.seed)
    return WordModelSource(model, max_bytes)


# ---------------------------------------------------------------------------
# Baselines (cell switches / backplanes).
# ---------------------------------------------------------------------------
def slot_arrivals(n: int, rng=None, seed: Optional[int] = None):
    """Per-slot iid arrivals for the cell-switch baselines.

    With ``rng`` this preserves the historical shared-generator draw
    order (the chapter-2 experiments are seeded on it); with ``seed``
    it returns the counter-based, shard-safe variant.
    """
    from repro.traffic.arrivals import CounterSlotArrivals, IIDSlotArrivals

    if rng is not None:
        return IIDSlotArrivals(n, rng)
    return CounterSlotArrivals(n, seed=seed or 0)


def size_distribution(sizes: Any, rng=None):
    """Normalize a SizeDistribution | SizeSpec | spec dict to a
    SizeDistribution (the backplane baselines' constructor contract)."""
    import numpy as np

    from repro.traffic.sizes import (
        BimodalSizes,
        FixedSize,
        IMix,
        SizeDistribution,
        UniformSizes,
    )
    from repro.traffic.spec import SizeSpec

    if isinstance(sizes, SizeDistribution):
        return sizes
    if isinstance(sizes, dict):
        sizes = SizeSpec(**sizes)
    if not isinstance(sizes, SizeSpec):
        raise TypeError(
            f"cannot build a size distribution from {type(sizes).__name__}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    if sizes.kind == "fixed":
        return FixedSize(sizes.bytes)
    if sizes.kind == "imix":
        return IMix(rng)
    if sizes.kind == "uniform":
        return UniformSizes(rng, sizes.lo, sizes.hi)
    return BimodalSizes(rng, sizes.small, sizes.large, p_small=sizes.p_small)


# ---------------------------------------------------------------------------
# The one entry point.
# ---------------------------------------------------------------------------
def build(spec: TrafficLike, config: SimConfig, fidelity: Optional[str] = None):
    """Build the source object for ``config``'s (or ``fidelity``'s) engine.

    fabric -> PortSource, router -> (workload, factory, offered_load),
    wordlevel -> WordSource.
    """
    fidelity = fidelity or config.fidelity
    if fidelity == "fabric":
        return fabric_source(spec, config)
    if fidelity == "router":
        return router_traffic(spec, config)
    if fidelity == "wordlevel":
        return wordlevel_source(spec, config)
    raise ValueError(f"unknown fidelity {fidelity!r}")
