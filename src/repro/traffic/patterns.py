"""Destination patterns: who sends to whom."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class DestinationPattern:
    """Produces the destination port of each successive packet of an input."""

    def __init__(self, num_ports: int):
        if num_ports < 2:
            raise ValueError("need at least two ports")
        self.n = num_ports

    def next_dest(self, port: int) -> int:
        raise NotImplementedError


class UniformDestinations(DestinationPattern):
    """Uniform iid destinations -- the thesis's average-rate traffic.

    ``exclude_self`` matches a router testbench (traffic entering a port
    is never destined back out the same port); with it on, the measured
    average/peak ratio lands on the thesis's ~69%.
    """

    def __init__(self, num_ports: int, rng: np.random.Generator, exclude_self: bool = True):
        super().__init__(num_ports)
        self.rng = rng
        self.exclude_self = exclude_self

    def next_dest(self, port: int) -> int:
        if not self.exclude_self:
            return int(self.rng.integers(0, self.n))
        dest = int(self.rng.integers(0, self.n - 1))
        return dest if dest < port else dest + 1


class FixedPermutation(DestinationPattern):
    """Conflict-free peak traffic: port i -> perm[i], forever."""

    def __init__(self, perm: Sequence[int]):
        super().__init__(len(perm))
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(f"{perm!r} is not a permutation")
        self.perm = list(perm)

    def next_dest(self, port: int) -> int:
        return self.perm[port]

    @classmethod
    def shift(cls, num_ports: int, k: int = 2) -> "FixedPermutation":
        """The i -> (i+k) mod N pattern (k=2 exercises the worst-case
        ring expansion on the 4-port prototype, as in Fig 5-1)."""
        return cls([(i + k) % num_ports for i in range(num_ports)])


class RotatingPermutation(DestinationPattern):
    """A different conflict-free permutation per packet round."""

    def __init__(self, num_ports: int):
        super().__init__(num_ports)
        self._round = [0] * num_ports

    def next_dest(self, port: int) -> int:
        k = self._round[port] % (self.n - 1) + 1  # never self
        self._round[port] += 1
        return (port + k) % self.n


class HotspotDestinations(DestinationPattern):
    """Every input prefers output ``hot`` with probability ``p_hot``."""

    def __init__(
        self,
        num_ports: int,
        rng: np.random.Generator,
        hot: int = 0,
        p_hot: float = 0.5,
    ):
        super().__init__(num_ports)
        if not 0.0 <= p_hot <= 1.0:
            raise ValueError("p_hot must be a probability")
        if not 0 <= hot < num_ports:
            raise ValueError("hot port out of range")
        self.rng = rng
        self.hot = hot
        self.p_hot = p_hot

    def next_dest(self, port: int) -> int:
        if self.rng.random() < self.p_hot:
            return self.hot
        return int(self.rng.integers(0, self.n))


class BurstyDestinations(DestinationPattern):
    """On/off bursts: a whole burst of packets shares one destination.

    Models TCP-like trains; burst lengths are geometric with mean
    ``mean_burst``.  Correlated destinations stress head-of-line
    behaviour much harder than iid traffic.
    """

    def __init__(
        self,
        num_ports: int,
        rng: np.random.Generator,
        mean_burst: float = 8.0,
        exclude_self: bool = True,
    ):
        super().__init__(num_ports)
        if mean_burst < 1.0:
            raise ValueError("mean burst length must be >= 1")
        self.rng = rng
        self.p_end = 1.0 / mean_burst
        self.exclude_self = exclude_self
        self._current: List[Optional[int]] = [None] * num_ports

    def next_dest(self, port: int) -> int:
        cur = self._current[port]
        if cur is None or self.rng.random() < self.p_end:
            if self.exclude_self:
                d = int(self.rng.integers(0, self.n - 1))
                cur = d if d < port else d + 1
            else:
                cur = int(self.rng.integers(0, self.n))
            self._current[port] = cur
        return cur
