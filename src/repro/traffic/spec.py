"""Declarative traffic specifications: the schema behind ``traffic=``.

A :class:`TrafficSpec` is a frozen, picklable, schema-tagged value
describing a workload as three orthogonal choices -- destination
pattern, packet sizes, arrival process -- or as a recorded trace to
replay.  It is what rides inside
:class:`~repro.engines.WorkloadSpec.traffic`, what ``repro sweep``'s
``traffic=`` axis fans across workers, and what
:mod:`repro.parallel.fabric_shard` serializes into a
:class:`~repro.parallel.fabric_shard.ShardSpec` source.

Like :mod:`repro.faults.plan`, specs round-trip through tagged dicts
(:meth:`TrafficSpec.to_dict` / :meth:`TrafficSpec.from_dict`) and
:func:`resolve_traffic` normalizes every spelling a caller might hold:
an existing spec, its dict form, a JSON file path, a trace file path
(``.csv`` / ``.jsonl``), or a named preset from :data:`PRESETS`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

TRAFFIC_SCHEMA = "repro-traffic/1"

#: Destination-pattern kinds the unified model understands.
PATTERN_KINDS = ("permutation", "uniform", "hotspot", "bursty")
SIZE_KINDS = ("fixed", "imix", "uniform", "bimodal")
ARRIVAL_KINDS = ("saturated", "bernoulli", "onoff")


@dataclass(frozen=True)
class PatternSpec:
    """Who sends to whom.

    ``drift_packets`` applies to ``hotspot``: after every
    ``drift_packets`` packets a port offers, its hot output advances by
    one (mod N) -- a nonstationary hotspot that defeats any static
    provisioning.  0 keeps the hotspot fixed.  ``mean_burst`` applies to
    ``bursty``: geometric trains of packets sharing one destination.
    """

    kind: str = "permutation"
    shift: int = 2
    exclude_self: bool = True
    hot_port: int = 0
    p_hot: float = 0.7
    drift_packets: int = 0
    mean_burst: float = 8.0

    def __post_init__(self):
        if self.kind not in PATTERN_KINDS:
            raise ValueError(
                f"unknown pattern kind {self.kind!r}; expected one of {PATTERN_KINDS}"
            )
        if self.shift < 0:
            raise ValueError(f"pattern shift must be >= 0, got {self.shift}")
        if self.hot_port < 0:
            raise ValueError(f"hot_port must be >= 0, got {self.hot_port}")
        if not 0.0 <= self.p_hot <= 1.0:
            raise ValueError(f"p_hot must be in [0, 1], got {self.p_hot}")
        if self.drift_packets < 0:
            raise ValueError("drift_packets must be >= 0")
        if self.mean_burst < 1.0:
            raise ValueError("mean_burst must be >= 1")


@dataclass(frozen=True)
class SizeSpec:
    """How big each packet is.

    ``imix`` mixes 64/576/1024-byte packets in 7:4:1 proportions within
    one run (:class:`repro.traffic.sizes.IMix`'s mix, counter-drawn);
    ``uniform`` draws word-aligned sizes in ``[lo, hi]``; ``bimodal``
    is the ACKs-vs-MTU mix.
    """

    kind: str = "fixed"
    bytes: int = 1024
    lo: int = 64
    hi: int = 1024
    small: int = 64
    large: int = 1024
    p_small: float = 0.5

    #: The IMIX points (word-aligned stand-ins for 40/576/1500).
    IMIX_SIZES = (64, 576, 1024)
    IMIX_WEIGHTS = (7, 4, 1)

    def __post_init__(self):
        if self.kind not in SIZE_KINDS:
            raise ValueError(
                f"unknown size kind {self.kind!r}; expected one of {SIZE_KINDS}"
            )
        for name in ("bytes", "lo", "hi", "small", "large"):
            v = getattr(self, name)
            if v < 20 or v % 4:
                raise ValueError(
                    f"size field {name}={v}: packet sizes must be word-aligned "
                    "and at least an IP header (20 bytes)"
                )
        if self.lo > self.hi:
            raise ValueError("size lo must be <= hi")
        if not 0.0 <= self.p_small <= 1.0:
            raise ValueError("p_small must be a probability")

    def max_bytes(self) -> int:
        """The largest packet this distribution can emit (engines with a
        single-quantum packet limit validate against this)."""
        if self.kind == "fixed":
            return self.bytes
        if self.kind == "imix":
            return max(self.IMIX_SIZES)
        if self.kind == "uniform":
            return self.hi
        return max(self.small, self.large)

    def mean_bytes(self) -> float:
        if self.kind == "fixed":
            return float(self.bytes)
        if self.kind == "imix":
            total = sum(self.IMIX_WEIGHTS)
            return sum(s * w for s, w in zip(self.IMIX_SIZES, self.IMIX_WEIGHTS)) / total
        if self.kind == "uniform":
            return (self.lo + self.hi) / 2.0
        return self.p_small * self.small + (1 - self.p_small) * self.large


@dataclass(frozen=True)
class ArrivalSpec:
    """When packets show up.

    ``bernoulli``: each poll offers with probability ``p`` (iid, the
    crossbar-literature load model).  ``onoff``: a two-state modulated
    process -- in the on state polls offer with probability ``p``, in
    the off state never; state durations are geometric with means
    ``mean_on`` / ``mean_off`` polls, or Pareto(``alpha``) when
    ``heavy`` (the heavy-tailed trains of measured internet traffic).
    """

    kind: str = "saturated"
    p: float = 1.0
    mean_on: float = 16.0
    mean_off: float = 16.0
    heavy: bool = False
    alpha: float = 1.5

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"arrival p must be in [0, 1], got {self.p}")
        if self.mean_on < 1.0 or self.mean_off < 1.0:
            raise ValueError("on/off mean durations must be >= 1 poll")
        if self.heavy and self.alpha <= 1.0:
            raise ValueError(
                "heavy-tailed durations need alpha > 1 (finite mean)"
            )

    @property
    def load(self) -> float:
        """Nominal offered load in [0, 1]."""
        if self.kind == "saturated":
            return 1.0
        if self.kind == "bernoulli":
            return self.p
        return self.p * self.mean_on / (self.mean_on + self.mean_off)


@dataclass(frozen=True)
class TrafficSpec:
    """A complete declarative workload.

    ``kind="synthetic"`` composes the three sub-specs; ``kind="replay"``
    streams flow records from ``trace`` (see
    :mod:`repro.traffic.replay`), with ``loop`` wrapping at EOF for
    engines that need saturated sources.
    """

    kind: str = "synthetic"
    pattern: PatternSpec = PatternSpec()
    sizes: SizeSpec = SizeSpec()
    arrivals: ArrivalSpec = ArrivalSpec()
    trace: str = ""
    loop: bool = False
    #: Traffic-class labels cycled over source ports (port ``p`` belongs
    #: to ``classes[p % len(classes)]``); empty disables the per-class
    #: journey dimension.  Purely observational -- classes never change
    #: what the workload generates.
    classes: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in ("synthetic", "replay"):
            raise ValueError(
                f"unknown traffic kind {self.kind!r}; expected synthetic or replay"
            )
        if self.kind == "replay" and not self.trace:
            raise ValueError("replay traffic needs a trace path")
        if not isinstance(self.classes, tuple):
            object.__setattr__(self, "classes", tuple(self.classes))
        if any(not c or not isinstance(c, str) for c in self.classes):
            raise ValueError("traffic classes must be non-empty strings")

    def port_class_labels(self, num_ports: int) -> Tuple[str, ...]:
        """Per-port class labels for ``num_ports`` ports (empty when no
        classes are declared)."""
        if not self.classes:
            return ()
        k = len(self.classes)
        return tuple(self.classes[p % k] for p in range(num_ports))

    def replace(self, **changes: Any) -> "TrafficSpec":
        return dataclasses.replace(self, **changes)

    # -- schema-tagged round-trip --------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["schema"] = TRAFFIC_SCHEMA
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TrafficSpec":
        d = dict(d)
        schema = d.pop("schema", TRAFFIC_SCHEMA)
        if schema != TRAFFIC_SCHEMA:
            raise ValueError(
                f"traffic spec schema is {schema!r}, expected {TRAFFIC_SCHEMA!r}"
            )
        for field, sub in (
            ("pattern", PatternSpec),
            ("sizes", SizeSpec),
            ("arrivals", ArrivalSpec),
        ):
            if field in d and isinstance(d[field], Mapping):
                d[field] = sub(**d[field])
        known = set(cls.__dataclass_fields__)
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown traffic spec fields: {sorted(unknown)}")
        return cls(**d)

    def to_json(self) -> str:
        """Canonical JSON form (stable key order, shard-spec friendly)."""
        return json.dumps(self.to_dict(), sort_keys=True)


#: Named workload presets: sweepable as ``--grid traffic=imix,bursty``.
PRESETS: Dict[str, TrafficSpec] = {
    "imix": TrafficSpec(
        pattern=PatternSpec(kind="uniform"), sizes=SizeSpec(kind="imix")
    ),
    "imix_onoff": TrafficSpec(
        pattern=PatternSpec(kind="uniform"),
        sizes=SizeSpec(kind="imix"),
        arrivals=ArrivalSpec(kind="onoff", mean_on=16.0, mean_off=16.0),
    ),
    "imix_heavy": TrafficSpec(
        pattern=PatternSpec(kind="uniform"),
        sizes=SizeSpec(kind="imix"),
        arrivals=ArrivalSpec(
            kind="onoff", mean_on=24.0, mean_off=24.0, heavy=True, alpha=1.5
        ),
    ),
    "bursty": TrafficSpec(
        pattern=PatternSpec(kind="bursty", mean_burst=8.0),
        sizes=SizeSpec(kind="fixed", bytes=1024),
    ),
    "hotspot_drift": TrafficSpec(
        pattern=PatternSpec(kind="hotspot", p_hot=0.7, drift_packets=256),
        sizes=SizeSpec(kind="fixed", bytes=1024),
    ),
    "bernoulli": TrafficSpec(
        pattern=PatternSpec(kind="uniform"),
        sizes=SizeSpec(kind="fixed", bytes=1024),
        arrivals=ArrivalSpec(kind="bernoulli", p=0.6),
    ),
}

#: Everything :func:`resolve_traffic` accepts.
TrafficLike = Union["TrafficSpec", Mapping[str, Any], str, None]


def spec_from_legacy(
    pattern: str,
    packet_bytes: int,
    shift: int = 2,
    exclude_self: bool = True,
    hot_port: int = 0,
    p_hot: float = 0.7,
) -> TrafficSpec:
    """The deprecated flat WorkloadSpec kwargs, as a TrafficSpec.

    This is the compat shim: old-style workloads map onto the exact
    spec their kwargs describe, and the build factory routes that spec
    through the historical per-engine constructors, so old kwargs and
    the equivalent explicit spec are bit-identical by construction.
    """
    return TrafficSpec(
        pattern=PatternSpec(
            kind=pattern,
            shift=shift,
            exclude_self=exclude_self,
            hot_port=hot_port,
            p_hot=p_hot,
        ),
        sizes=SizeSpec(kind="fixed", bytes=packet_bytes),
        arrivals=ArrivalSpec(kind="saturated"),
    )


def resolve_traffic(spec: TrafficLike) -> Optional[TrafficSpec]:
    """Normalize any traffic spelling to a TrafficSpec (None passes through).

    Strings resolve as: a ``.json`` path holding a spec dict, a
    ``.csv`` / ``.jsonl`` trace path (becomes a replay spec), or a
    preset name from :data:`PRESETS`.
    """
    if spec is None:
        return None
    if isinstance(spec, TrafficSpec):
        return spec
    if isinstance(spec, Mapping):
        return TrafficSpec.from_dict(spec)
    if isinstance(spec, str):
        if spec.endswith(".json"):
            with open(spec) as fh:
                return TrafficSpec.from_dict(json.load(fh))
        if spec.endswith((".csv", ".jsonl")):
            return TrafficSpec(kind="replay", trace=spec)
        if spec in PRESETS:
            return PRESETS[spec]
        raise ValueError(
            f"unknown traffic {spec!r}: not a preset "
            f"({', '.join(sorted(PRESETS))}), a .json spec, or a "
            ".csv/.jsonl trace"
        )
    raise TypeError(f"cannot resolve a traffic spec from {type(spec).__name__}")
