"""Packet-size distributions (word-aligned, as the fabric requires)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: The packet sizes of thesis Fig 7-1.
PAPER_SIZES: Tuple[int, ...] = (64, 128, 256, 512, 1024)

_MIN_BYTES = 20  # IPv4 header


def _check_size(nbytes: int) -> int:
    if nbytes < _MIN_BYTES:
        raise ValueError(f"packet of {nbytes} bytes is smaller than an IP header")
    if nbytes % 4:
        raise ValueError("packet sizes must be word-aligned")
    return nbytes


class SizeDistribution:
    """Produces the byte size of each successive packet."""

    def next_size(self) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError


class FixedSize(SizeDistribution):
    """All packets the same size -- the thesis's evaluation setting."""

    def __init__(self, nbytes: int):
        self.nbytes = _check_size(nbytes)

    def next_size(self) -> int:
        return self.nbytes

    def mean(self) -> float:
        return float(self.nbytes)


class IMix(SizeDistribution):
    """Simple IMIX: 64 / 576 / 1024 bytes in 7:4:1 proportions
    (word-aligned stand-ins for the classic 40/576/1500 mix)."""

    SIZES = (64, 576, 1024)
    WEIGHTS = (7, 4, 1)

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        total = sum(self.WEIGHTS)
        self._p = [w / total for w in self.WEIGHTS]

    def next_size(self) -> int:
        return int(self.rng.choice(self.SIZES, p=self._p))

    def mean(self) -> float:
        return float(np.dot(self.SIZES, self._p))


class UniformSizes(SizeDistribution):
    """Uniform over word-aligned sizes in ``[lo, hi]``."""

    def __init__(self, rng: np.random.Generator, lo: int, hi: int):
        self.lo = _check_size(lo)
        self.hi = _check_size(hi)
        if self.lo > self.hi:
            raise ValueError("lo must be <= hi")
        self.rng = rng

    def next_size(self) -> int:
        words = int(self.rng.integers(self.lo // 4, self.hi // 4 + 1))
        return words * 4

    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0


class BimodalSizes(SizeDistribution):
    """Small-or-large mix (ACKs vs MTU data), used by the cell-vs-
    variable-length baseline experiment."""

    def __init__(
        self,
        rng: np.random.Generator,
        small: int = 64,
        large: int = 1024,
        p_small: float = 0.5,
    ):
        if not 0.0 <= p_small <= 1.0:
            raise ValueError("p_small must be a probability")
        self.small = _check_size(small)
        self.large = _check_size(large)
        self.p_small = p_small
        self.rng = rng

    def next_size(self) -> int:
        return self.small if self.rng.random() < self.p_small else self.large

    def mean(self) -> float:
        return self.p_small * self.small + (1 - self.p_small) * self.large
