"""Workload: pattern + sizes + arrivals, and adapters for the simulators.

:class:`Workload` is the one object experiments configure;
:func:`fabric_source` adapts it to the quantum-level
:class:`~repro.core.fabricsim.FabricSimulator`, and
:class:`PacketFactory` mints real :class:`~repro.ip.packet.IPv4Packet`
objects (with addresses that the routing table resolves back to the
intended output port) for the full router and Click models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.ip.addr import ADDR_BITS
from repro.ip.packet import IPv4Packet
from repro.raw import costs
from repro.traffic.arrivals import ArrivalProcess
from repro.traffic.patterns import DestinationPattern
from repro.traffic.sizes import SizeDistribution


@dataclass
class Workload:
    """A complete traffic specification for an N-port router."""

    pattern: DestinationPattern
    sizes: SizeDistribution
    arrivals: ArrivalProcess

    @property
    def num_ports(self) -> int:
        return self.pattern.n

    def next_packet(self, port: int) -> Optional[Tuple[int, int]]:
        """(destination port, size bytes) or None if no arrival."""
        if not self.arrivals.offers(port):
            return None
        return self.pattern.next_dest(port), self.sizes.next_size()


def fabric_source(workload: Workload):
    """Adapt a workload to the fabric simulator's PortSource protocol
    (destinations + word counts; no packet objects on this fast path)."""

    def source(port: int) -> Optional[Tuple[int, int]]:
        pkt = workload.next_packet(port)
        if pkt is None:
            return None
        dest, nbytes = pkt
        return dest, costs.bytes_to_words(nbytes)

    return source


class PacketFactory:
    """Mints IPv4 packets whose destination address maps to a port.

    The address space is carved into ``num_ports`` equal blocks (matching
    :meth:`repro.ip.lookup.RoutingTable.uniform_split`), so a packet
    destined for output ``j`` gets a random address inside block ``j``
    and the Lookup Processor genuinely resolves it.
    """

    def __init__(self, num_ports: int, rng: np.random.Generator):
        if num_ports < 1 or (num_ports & (num_ports - 1)):
            raise ValueError("num_ports must be a power of two")
        self.n = num_ports
        self.rng = rng
        self._bits = num_ports.bit_length() - 1
        self._ident = 0

    def make(self, input_port: int, output_port: int, size_bytes: int) -> IPv4Packet:
        if not 0 <= output_port < self.n:
            raise ValueError("output port out of range")
        host_bits = ADDR_BITS - self._bits
        dst = (output_port << host_bits) | int(self.rng.integers(0, 1 << host_bits))
        src = int(self.rng.integers(0, 1 << ADDR_BITS))
        self._ident += 1
        pkt = IPv4Packet.synthesize(
            src=src, dst=dst, size_bytes=size_bytes, ident=self._ident
        )
        pkt.input_port = input_port
        pkt.output_port = output_port
        return pkt

    def from_workload(self, workload: Workload, port: int) -> Optional[IPv4Packet]:
        drawn = workload.next_packet(port)
        if drawn is None:
            return None
        dest, nbytes = drawn
        return self.make(port, dest, nbytes)
