"""Counter-based replayable randomness for the traffic layer.

Every stochastic draw a :class:`~repro.traffic.model.SpecModel` makes is
a pure function ``hash(seed, stream, counter)`` -- the style of
:class:`repro.core.fabricsim.CounterUniformSource`, generalized.  A
shared sequential ``np.random.Generator`` makes a workload unshardable:
resuming mid-run would need the generator's full internal state *and*
a guarantee that ports consume draws in the same interleaving, which a
time-sliced worker cannot reproduce.  With counter-based draws the only
mutable state is a handful of small integers per port, so any source
built on this module snapshots/restores bit-identically across process
boundaries (the contract :mod:`repro.parallel.fabric_shard` needs).

The hash is a splitmix64-style finalizer: cheap in pure Python (three
multiplies and three xor-shifts on ints) and avalanche-quality, which
the statistical tests in ``tests/test_traffic.py`` rely on.
"""

from __future__ import annotations

import math

_M64 = (1 << 64) - 1
#: Odd 64-bit constants (splitmix64 / Murmur3 finalizer lineage).
_A = 0x9E3779B97F4A7C15
_B = 0xBF58476D1CE4E5B9
_C = 0x94D049BB133111EB


def mix64(x: int) -> int:
    """Finalize ``x`` into a well-mixed unsigned 64-bit value."""
    x &= _M64
    x = ((x ^ (x >> 30)) * _B) & _M64
    x = ((x ^ (x >> 27)) * _C) & _M64
    return x ^ (x >> 31)


def draw_u64(seed: int, stream: int, k: int) -> int:
    """Draw ``k`` of stream ``stream``: a pure function of its inputs."""
    return mix64(seed * _A + stream * _B + k * _C + 1)


def draw_float(seed: int, stream: int, k: int) -> float:
    """Uniform float in [0, 1)."""
    return draw_u64(seed, stream, k) / float(1 << 64)


def draw_int(seed: int, stream: int, k: int, n: int) -> int:
    """Uniform integer in [0, n)."""
    if n <= 0:
        raise ValueError("draw_int needs n >= 1")
    return draw_u64(seed, stream, k) % n


def geometric_length(u: float, mean: float) -> int:
    """A geometric duration (>= 1) with the given mean, from one uniform."""
    if mean <= 1.0:
        return 1
    # P(stop each step) = 1/mean; inverse-CDF of the geometric.
    return 1 + int(math.log(max(1.0 - u, 1e-300)) / math.log(1.0 - 1.0 / mean))


def pareto_length(u: float, mean: float, alpha: float) -> int:
    """A heavy-tailed (Pareto) duration (>= 1) with the given mean.

    ``alpha`` is the tail index; ``alpha <= 1`` has no finite mean, so
    callers validate ``alpha > 1``.  The scale is chosen so the
    continuous Pareto mean equals ``mean``; durations are rounded up to
    whole polls.
    """
    xm = mean * (alpha - 1.0) / alpha
    return max(1, math.ceil(xm * (1.0 - u) ** (-1.0 / alpha)))
