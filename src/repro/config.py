"""Injectable configuration values: :class:`CostModel` and :class:`SimConfig`.

Historically the thesis's chapter-3 cycle costs lived as module-level
constants in :mod:`repro.raw.costs`, which made scaling studies
(frequency, FIFO-depth, quantum-size, control-overhead sweeps) a matter
of monkeypatching globals -- impossible to run concurrently.  This
module turns the cost model into a frozen, picklable dataclass that is
threaded *explicitly* through every engine, and pairs it with
:class:`SimConfig`, the complete description of one simulated router
(ports, quantum size, clock, FIFO depths, engine fidelity, seed).

``CostModel()`` (equivalently ``CostModel.default()``) reproduces every
historical constant exactly; :mod:`repro.raw.costs` remains as a thin
compatibility shim re-exporting those defaults.  Because both classes
are plain frozen values they pickle cleanly, which is what lets
:mod:`repro.sweep` fan a grid of configurations across
``multiprocessing`` workers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class CostModel:
    """The Raw cycle-cost model (thesis chapter 3) as an immutable value.

    Field defaults reproduce :mod:`repro.raw.costs` exactly (the single
    *calibrated* value is :attr:`quantum_ctl_overhead`, fitted once
    against the published Fig 7-1 throughputs; every other number comes
    straight from the thesis text).  Derive variants with
    :meth:`replace` -- instances are frozen, hashable, and picklable.
    """

    # Chip-level parameters (section 3.4).
    clock_hz: float = 250e6  #: Raw prototype target frequency, 250 MHz.
    word_bits: int = 32  #: static networks move one 32-bit word per cycle.
    num_tiles: int = 16  #: 4x4 grid (section 3.1).

    # Static network (section 3.3).
    static_hop_cycles: int = 1
    static_fifo_depth: int = 4
    send_to_use_cycles: int = 3

    # Dynamic network (section 3.3).
    dynamic_base_cycles: int = 15
    dynamic_per_hop_cycles: int = 2
    dynamic_max_message_words: int = 32

    # Tile processor (section 3.2) and buffer management (section 4.4).
    net_to_mem_cycles_per_word: int = 2
    mem_to_net_cycles_per_word: int = 1
    cut_through_cycles_per_word: int = 1
    predicted_branch_cycles: int = 1
    mispredicted_branch_cycles: int = 3

    # Memory system (section 3.2).
    dmem_words: int = 8192
    imem_words: int = 8192
    switch_mem_words: int = 8192
    cache_line_bytes: int = 32
    cache_ways: int = 2
    cache_hit_cycles: int = 3
    cache_miss_cycles: int = 54

    # Router phase costs (chapters 5/6).
    header_words: int = 2
    quantum_ctl_overhead: int = 48  #: calibrated, see DESIGN.md section 5.
    max_quantum_words: int = 256
    ingress_header_cycles: int = 20
    lookup_cycles: int = 30

    # ------------------------------------------------------------------
    @property
    def word_bytes(self) -> int:
        return self.word_bits // 8

    @classmethod
    def default(cls) -> "CostModel":
        """The thesis's cost model (a shared immutable instance)."""
        return _DEFAULT

    def replace(self, **changes: Any) -> "CostModel":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    # ------------------------------------------------------------------
    # Unit helpers (previously free functions in repro.raw.costs).
    def bytes_to_words(self, nbytes: int) -> int:
        """Number of network words needed to carry ``nbytes``."""
        return (nbytes + self.word_bytes - 1) // self.word_bytes

    def gbps(self, bits: float, cycles: float) -> float:
        """Throughput in Gbit/s for ``bits`` moved in ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return bits * self.clock_hz / cycles / 1e9

    def mpps(self, packets: float, cycles: float) -> float:
        """Packet rate in Mpkt/s for ``packets`` forwarded in ``cycles``."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return packets * self.clock_hz / cycles / 1e6


_DEFAULT = CostModel()

#: Engine fidelities, cheapest first (see DESIGN.md "Engines and
#: configuration"): the quantum-level fabric loop, the space-partitioned
#: multi-chip Clos (token-window workers, DESIGN.md §13), the
#: phase-level pipelined router, and the word-level chip simulation.
FIDELITIES = ("fabric", "space", "router", "wordlevel")


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to build one simulated router, as a value.

    ``quantum_words``, ``clock_hz`` and ``static_fifo_depth`` default to
    ``None`` meaning "whatever :attr:`costs` says"; setting them here
    overrides the cost model without having to spell out a full
    :class:`CostModel` (see :meth:`cost_model`).  Frozen and picklable
    so sweep cells can cross process boundaries.
    """

    ports: int = 4
    quantum_words: Optional[int] = None  #: crossbar transfer block override
    clock_hz: Optional[float] = None  #: clock frequency override
    static_fifo_depth: Optional[int] = None  #: static-network FIFO override
    input_queue_frags: int = 64
    egress_queue_frags: int = 8
    networks: int = 1  #: static networks the allocator may route over
    pipelined: bool = True  #: header/body overlap (sections 5.2/6.5)
    fidelity: str = "fabric"  #: one of :data:`FIDELITIES`
    seed: int = 0
    #: Fabric fast path (bit-identical; fabric fidelity only): LRU size
    #: for allocation memoization (0 disables), and steady-state cycle
    #: detection + fast-forward for deterministic saturated sources.
    alloc_cache: int = 0
    fast_forward: bool = False
    #: Space fidelity only (DESIGN.md §13/§15): worker-process count for
    #: the token-window partitioned fabric (1 = in-process serial
    #: reference, 0 = adaptive ``min(topology cut width, cpu_count)``),
    #: the uniform inter-chip channel latency in quanta (= the token
    #: window length), and the boundary transport ("pipe", "shm",
    #: "socket", or "socket:HOST:PORT" for external ``repro serve``
    #: workers).
    partitions: int = 1
    link_latency: int = 4
    transport: str = "pipe"
    costs: CostModel = field(default=_DEFAULT)

    def __post_init__(self):
        if self.ports < 2:
            raise ValueError("a router needs at least 2 ports")
        if self.alloc_cache < 0:
            raise ValueError("alloc_cache must be >= 0 (0 disables)")
        if self.partitions < 0:
            raise ValueError("partitions must be >= 1 (or 0 for adaptive)")
        if self.link_latency < 1:
            raise ValueError("link_latency must be >= 1 quantum")
        if self.transport.split(":", 1)[0] not in ("pipe", "shm", "socket"):
            raise ValueError(
                f"unknown transport {self.transport!r}; expected pipe, "
                "shm, socket, or socket:HOST:PORT"
            )
        if self.networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; expected one of {FIDELITIES}"
            )

    # ------------------------------------------------------------------
    def cost_model(self) -> CostModel:
        """The effective :class:`CostModel`: :attr:`costs` with this
        config's scalar overrides folded in."""
        overrides: Dict[str, Any] = {}
        if self.quantum_words is not None:
            overrides["max_quantum_words"] = self.quantum_words
        if self.clock_hz is not None:
            overrides["clock_hz"] = self.clock_hz
        if self.static_fifo_depth is not None:
            overrides["static_fifo_depth"] = self.static_fifo_depth
        return self.costs.replace(**overrides) if overrides else self.costs

    def replace(self, **changes: Any) -> "SimConfig":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (cost model inlined as a sub-dict)."""
        d = dataclasses.asdict(self)
        d["costs"] = self.cost_model().to_dict()
        return d


#: Field names accepted by :meth:`SimConfig.replace` (used by the sweep
#: grid parser to route ``key=value`` cells to the right layer).
SIM_CONFIG_FIELDS = frozenset(
    f.name for f in fields(SimConfig) if f.name != "costs"
)
COST_MODEL_FIELDS = frozenset(f.name for f in fields(CostModel))
