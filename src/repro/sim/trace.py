"""Per-process state tracing.

The kernel appends an :class:`Interval` each time a traced process spends
a non-zero span of cycles in one state.  States are short strings
(``"busy"``, ``"tx"``, ``"rx"``, ``"mem"``, ``"idle"``); the utilization
metrics (:mod:`repro.metrics.utilization`) and the ASCII timeline renderer
(:mod:`repro.viz.timeline`) consume these intervals directly.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from collections import defaultdict
from typing import Dict, List


@dataclass(frozen=True)
class Interval:
    """A half-open span ``[start, end)`` of cycles spent in ``state``."""

    key: str
    state: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class Trace:
    """Collects state intervals keyed by process trace key.

    Parameters
    ----------
    start, stop:
        Optional window; intervals entirely outside ``[start, stop)`` are
        dropped and partially-overlapping intervals are clipped.  Keeping
        the window small (e.g. the 800 cycles of thesis Fig 7-3) bounds
        memory during long simulations.
    """

    def __init__(self, start: int = 0, stop: int | None = None):
        self.start = start
        self.stop = stop
        self._by_key: Dict[str, List[Interval]] = defaultdict(list)

    def record(self, key: str, state: str, start: int, end: int) -> None:
        """Record ``[start, end)`` in ``state`` for ``key``.

        Raises ValueError if the span overlaps an interval already
        recorded for the same key: a process cannot be in two states at
        once, and accepting the overlap would silently double-count
        ``time_in_state``.
        """
        if end <= start:
            return
        if self.stop is not None:
            if start >= self.stop or end <= self.start:
                return
            start = max(start, self.start)
            end = min(end, self.stop)
        intervals = self._by_key[key]
        if intervals:
            last = intervals[-1]
            if start >= last.end:
                # Fast path: in-order recording (the kernel's only case).
                # Coalesce with a contiguous same-state predecessor, so a
                # per-word loop (many length-1 busy spans) and the
                # equivalent burst (one span) leave identical traces.
                if last.state == state and last.end == start:
                    intervals[-1] = Interval(key, state, last.start, end)
                else:
                    intervals.append(Interval(key, state, start, end))
                return
            # Out-of-order recording: intervals are kept sorted by start
            # (appends above preserve this), so a sorted insert with
            # neighbor checks catches any overlap.
            i = bisect_left(intervals, start, key=lambda iv: iv.start)
            if i > 0 and intervals[i - 1].end > start:
                raise ValueError(
                    f"interval overlap for {key!r}: [{start}, {end}) in "
                    f"{state!r} overlaps recorded {intervals[i - 1]}"
                )
            if i < len(intervals) and intervals[i].start < end:
                raise ValueError(
                    f"interval overlap for {key!r}: [{start}, {end}) in "
                    f"{state!r} overlaps recorded {intervals[i]}"
                )
            intervals.insert(i, Interval(key, state, start, end))
            return
        intervals.append(Interval(key, state, start, end))

    def keys(self) -> List[str]:
        return sorted(self._by_key)

    def intervals(self, key: str) -> List[Interval]:
        return sorted(self._by_key.get(key, []), key=lambda iv: iv.start)

    def all_intervals(self) -> List[Interval]:
        out: List[Interval] = []
        for key in self.keys():
            out.extend(self.intervals(key))
        return out

    def time_in_state(self, key: str, state: str) -> int:
        return sum(iv.length for iv in self._by_key.get(key, ()) if iv.state == state)

    def horizon(self) -> int:
        """Largest ``end`` recorded across all keys (0 if empty)."""
        ends = [iv.end for ivs in self._by_key.values() for iv in ivs]
        return max(ends, default=0)
