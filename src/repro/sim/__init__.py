"""Discrete-event simulation kernel.

A minimal, cycle-based process/channel simulator in the style of SimPy,
specialized for modeling the Raw processor's flow-controlled on-chip
networks.  Processes are Python generators that yield command objects
(:class:`Timeout`, :class:`Put`, :class:`Get`); channels are
flow-controlled, fixed-capacity registers with an optional propagation
latency, which is exactly the semantics of a Raw static-network link
(one 32-bit word per cycle per hop, blocking when full/empty).

The kernel records per-process state intervals (busy / blocked on
transmit / blocked on receive / blocked on memory) into a
:class:`Trace`, which is what the per-tile utilization figure
(thesis Fig 7-3) is rendered from.
"""

from repro.sim.errors import SimulationError, DeadlockError
from repro.sim.kernel import (
    Simulator,
    Process,
    Timeout,
    Put,
    Get,
    PutBurst,
    GetBurst,
    RouteBurst,
    BUSY,
    IDLE,
    TX_BLOCK,
    RX_BLOCK,
    MEM_BLOCK,
    DOWN,
    STALLED,
)
from repro.sim.channel import Channel
from repro.sim.trace import Trace, Interval

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Put",
    "Get",
    "PutBurst",
    "GetBurst",
    "RouteBurst",
    "Channel",
    "Trace",
    "Interval",
    "SimulationError",
    "DeadlockError",
    "BUSY",
    "IDLE",
    "TX_BLOCK",
    "RX_BLOCK",
    "MEM_BLOCK",
    "DOWN",
    "STALLED",
]
