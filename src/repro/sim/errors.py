"""Exceptions raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    In a correctly scheduled Rotating Crossbar this never happens (the
    compile-time scheduler only emits conflict-free, forward-progressing
    routes -- thesis section 5.5); the kernel surfaces it loudly so that
    schedule bugs -- and fault-induced wedges during chaos runs -- are
    diagnosable from the exception message alone.  When the kernel passes
    ``now``, each blocked process is reported with its direction
    (``tx``/``rx``), the channel it is parked on with that channel's
    occupancy/capacity, and the cycle it blocked at.
    """

    def __init__(self, blocked, now=None):
        self.blocked = list(blocked)
        self.now = now
        lines = []
        for p in self.blocked:
            ch = getattr(p, "_block_channel", None)
            state = getattr(p, "_block_state", None) or "?"
            since = getattr(p, "_block_start", None)
            if ch is not None:
                where = (
                    f"{state} on {ch.name or '<unnamed>'} "
                    f"[{len(ch._items)}/{ch.capacity} words"
                    + (", link down" if getattr(ch, "fault_active", False) else "")
                    + "]"
                )
            else:
                where = state
            lines.append(f"  {p.name}: {where}, blocked since cycle {since}")
        header = (
            f"simulation deadlock"
            + (f" at cycle {now}" if now is not None else "")
            + f": event queue empty with {len(self.blocked)} blocked process(es):"
        )
        super().__init__("\n".join([header] + lines))
