"""Exceptions raised by the simulation kernel."""


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    In a correctly scheduled Rotating Crossbar this never happens (the
    compile-time scheduler only emits conflict-free, forward-progressing
    routes -- thesis section 5.5); the kernel surfaces it loudly so that
    schedule bugs are caught by tests rather than hanging the simulation.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        names = ", ".join(p.name for p in self.blocked)
        super().__init__(
            f"simulation deadlock: event queue empty with {len(self.blocked)} "
            f"blocked process(es): {names}"
        )
