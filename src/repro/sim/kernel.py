"""The event loop: generator processes over flow-controlled channels.

Processes yield command objects and are resumed by the kernel:

``Timeout(n, state=BUSY)``
    Spend ``n`` cycles in ``state`` (busy computing, or blocked on the
    memory system when ``state=MEM_BLOCK``).

``Put(channel, value)``
    Write a word to a channel.  Completes in the same cycle when the
    channel has a free slot; otherwise the process blocks (recorded as
    ``TX_BLOCK`` in the trace) until a slot frees up.

``Get(channel)``
    Read a word.  Completes in the same cycle when a word is ready;
    otherwise blocks (``RX_BLOCK``).  The read value is the result of the
    ``yield`` expression.

This is deliberately the programming model of a Raw tile: register-mapped
network ports with blocking reads/writes, plus a cycle cost for every
instruction executed (expressed as Timeouts by the tile-program code in
:mod:`repro.raw` and :mod:`repro.router`).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional

from repro.sim.channel import Channel
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.trace import Trace

# Canonical trace states (thesis Fig 7-3 distinguishes computing from
# "blocked on transmit, receive, or cache miss").
BUSY = "busy"
IDLE = "idle"
TX_BLOCK = "tx"
RX_BLOCK = "rx"
MEM_BLOCK = "mem"

BLOCKED_STATES = frozenset({TX_BLOCK, RX_BLOCK, MEM_BLOCK})


class Timeout:
    """Advance the process's local clock by ``delay`` cycles."""

    __slots__ = ("delay", "state")

    def __init__(self, delay: int, state: str = BUSY):
        if delay < 0:
            raise ValueError("Timeout delay must be >= 0")
        self.delay = delay
        self.state = state


class Put:
    """Write ``value`` into ``channel`` (blocking when full)."""

    __slots__ = ("channel", "value")

    def __init__(self, channel: Channel, value: Any):
        self.channel = channel
        self.value = value


class Get:
    """Read a word from ``channel`` (blocking when empty)."""

    __slots__ = ("channel",)

    def __init__(self, channel: Channel):
        self.channel = channel


class Process:
    """A running generator plus its bookkeeping."""

    __slots__ = (
        "gen",
        "name",
        "trace_key",
        "alive",
        "result",
        "_block_start",
        "_block_state",
        "_block_channel",
    )

    def __init__(self, gen: Generator, name: str, trace_key: Optional[str]):
        self.gen = gen
        self.name = name
        self.trace_key = trace_key
        self.alive = True
        self.result: Any = None
        self._block_start: int = -1
        self._block_state: str = ""
        self._block_channel: Optional[Channel] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, alive={self.alive})"


class Simulator:
    """Cycle-based discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`Trace` receiving state intervals of processes
        created with a ``trace_key``.
    """

    def __init__(self, trace: Optional[Trace] = None):
        self.now: int = 0
        self.trace = trace
        self._heap: List[tuple] = []
        self._ready: Deque[tuple] = deque()  # (process, send_value)
        self._seq = 0
        self._processes: List[Process] = []
        self._blocked: Dict[int, Process] = {}
        self._drained_blocked: List[Process] = []

    # ------------------------------------------------------------------
    def add_process(
        self,
        gen: Generator,
        name: str = "proc",
        trace_key: Optional[str] = None,
    ) -> Process:
        """Register a generator as a process starting at the current cycle."""
        if not hasattr(gen, "send"):
            raise SimulationError(f"process {name!r} is not a generator")
        proc = Process(gen, name, trace_key)
        self._processes.append(proc)
        self._ready.append((proc, None))
        return proc

    def channel(self, name: str = "", capacity: int = 1, latency: int = 0) -> Channel:
        return Channel(name=name, capacity=capacity, latency=latency)

    # ------------------------------------------------------------------
    def _schedule(self, time: int, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, payload))

    def _record(self, proc: Process, state: str, start: int, end: int) -> None:
        if self.trace is not None and proc.trace_key is not None:
            self.trace.record(proc.trace_key, state, start, end)

    def _mark_blocked(
        self, proc: Process, state: str, channel: Optional[Channel] = None
    ) -> None:
        proc._block_start = self.now
        proc._block_state = state
        proc._block_channel = channel
        self._blocked[id(proc)] = proc

    def _unblock(self, proc: Process, value: Any) -> None:
        self._blocked.pop(id(proc), None)
        if proc._block_start >= 0:
            self._record(proc, proc._block_state, proc._block_start, self.now)
            proc._block_start = -1
            proc._block_channel = None
        self._ready.append((proc, value))

    # ------------------------------------------------------------------
    # Non-blocking channel access for synchronous controllers (the
    # Rotating Crossbar's fabric loop inspects four head-of-line queues
    # and consumes only the granted ones; a blocking Get cannot express
    # that).  Only call these from *inside* a running process.
    def peek(self, ch: Channel):
        """(True, value) if a word is ready now, else (False, None).
        Does not consume the word."""
        if ch.peek_ready(self.now):
            return True, ch._items[0][1]
        return False, None

    def try_get(self, ch: Channel):
        """Consume a ready word: (True, value), or (False, None)."""
        if not ch.peek_ready(self.now):
            return False, None
        _, value = ch._items.popleft()
        if ch._putters:
            self._service_channel(ch)
        return True, value

    def try_put(self, ch: Channel, value: Any) -> bool:
        """Deposit a word if there is room; False when the channel is full
        (lets line-card models drop instead of blocking, matching the
        thesis's externally-dropping FIFO assumption)."""
        if ch.is_full:
            return False
        ch._items.append((self.now + ch.latency, value))
        if ch._getters:
            ready_at = ch._items[0][0]
            if ready_at <= self.now:
                self._service_channel(ch)
            else:
                self._schedule(ready_at, "service", ch)
        return True

    # ------------------------------------------------------------------
    def _service_channel(self, ch: Channel) -> None:
        """Move words/waiters through a channel at the current cycle."""
        progressed = True
        while progressed:
            progressed = False
            # Deliver ready words to blocked getters.
            if ch._getters and ch.peek_ready(self.now):
                _, value = ch._items.popleft()
                getter = ch._getters.popleft()
                self._unblock(getter, value)
                progressed = True
                continue
            # Admit blocked putters into freed slots.
            if ch._putters and not ch.is_full:
                putter, value = ch._putters.popleft()
                ch._items.append((self.now + ch.latency, value))
                self._unblock(putter, None)
                progressed = True
                continue
        # If getters remain and a word is merely in flight, wake later.
        if ch._getters and ch._items:
            ready_at = ch._items[0][0]
            if ready_at > self.now:
                self._schedule(ready_at, "service", ch)

    # ------------------------------------------------------------------
    def _step(self, proc: Process, send_value: Any) -> None:
        """Run one process until it blocks, sleeps, or terminates."""
        gen = proc.gen
        while True:
            try:
                cmd = gen.send(send_value)
            except StopIteration as stop:
                proc.alive = False
                proc.result = stop.value
                return
            send_value = None

            if isinstance(cmd, Timeout):
                if cmd.delay == 0:
                    continue
                self._record(proc, cmd.state, self.now, self.now + cmd.delay)
                self._schedule(self.now + cmd.delay, "resume", (proc, None))
                return

            if isinstance(cmd, Put):
                ch = cmd.channel
                if not ch.is_full:
                    ch._items.append((self.now + ch.latency, cmd.value))
                    if ch._getters:
                        ready_at = ch._items[0][0]
                        if ready_at <= self.now:
                            self._service_channel(ch)
                        else:
                            self._schedule(ready_at, "service", ch)
                    continue  # put completed this cycle
                ch._putters.append((proc, cmd.value))
                self._mark_blocked(proc, TX_BLOCK, ch)
                return

            if isinstance(cmd, Get):
                ch = cmd.channel
                if ch.peek_ready(self.now):
                    _, value = ch._items.popleft()
                    if ch._putters:
                        self._service_channel(ch)
                    send_value = value
                    continue  # get completed this cycle
                ch._getters.append(proc)
                self._mark_blocked(proc, RX_BLOCK, ch)
                if ch._items:  # word in flight; wake when it lands
                    self._schedule(ch._items[0][0], "service", ch)
                return

            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command {cmd!r}"
            )

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, raise_on_deadlock: bool = True) -> int:
        """Run until the event queue drains or ``until`` cycles have elapsed.

        Returns the final simulation time.  If the queue drains *before*
        ``until``, the clock stays at the last event (nothing can happen
        in between, and measurement code divides by elapsed time).  When
        the queue drains while processes remain blocked on channels, a
        :class:`DeadlockError` is raised unless ``raise_on_deadlock`` is
        false (useful for open-ended pipelines whose sources finished).
        With ``until`` set, the same situation returns normally -- often
        legitimately (the bounded run outlived its sources) but sometimes
        masking a real deadlock; :meth:`blocked_report` says which
        processes were left stuck and since when.
        """
        self._drained_blocked = []
        while True:
            while self._ready:
                proc, value = self._ready.popleft()
                if proc.alive:
                    self._step(proc, value)
            if not self._heap:
                break
            time = self._heap[0][0]
            if until is not None and time > until:
                self.now = until
                return self.now
            # Pop every event at this timestamp, then run ready processes.
            self.now = time
            while self._heap and self._heap[0][0] == time:
                _, _, kind, payload = heapq.heappop(self._heap)
                if kind == "resume":
                    p, v = payload
                    if p.alive:
                        self._ready.append((p, v))
                elif kind == "service":
                    self._service_channel(payload)

        blocked = [p for p in self._blocked.values() if p.alive]
        self._drained_blocked = blocked
        if blocked and raise_on_deadlock and until is None:
            raise DeadlockError(blocked)
        return self.now

    def blocked_report(self) -> List[Dict[str, Any]]:
        """Processes left blocked when the last :meth:`run` drained.

        One dict per stuck process: ``name``, ``state`` (``tx``/``rx``),
        ``channel`` (the channel's name, or None if it was unnamed), and
        ``since`` (the cycle it blocked).  Empty when the last run
        drained cleanly or was cut off by ``until`` with events still
        pending.
        """
        return [
            {
                "name": proc.name,
                "state": proc._block_state,
                "channel": (
                    proc._block_channel.name or None
                    if proc._block_channel is not None
                    else None
                ),
                "since": proc._block_start,
            }
            for proc in self._drained_blocked
        ]


def run_processes(
    *gens: Generator,
    until: Optional[int] = None,
    trace: Optional[Trace] = None,
    raise_on_deadlock: bool = True,
) -> Simulator:
    """Convenience: build a simulator, add ``gens``, run, return it."""
    sim = Simulator(trace=trace)
    for i, gen in enumerate(gens):
        sim.add_process(gen, name=f"proc{i}")
    sim.run(until=until, raise_on_deadlock=raise_on_deadlock)
    return sim
