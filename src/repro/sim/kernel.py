"""The event loop: generator processes over flow-controlled channels.

Processes yield command objects and are resumed by the kernel:

``Timeout(n, state=BUSY)``
    Spend ``n`` cycles in ``state`` (busy computing, or blocked on the
    memory system when ``state=MEM_BLOCK``).

``Put(channel, value)``
    Write a word to a channel.  Completes in the same cycle when the
    channel has a free slot; otherwise the process blocks (recorded as
    ``TX_BLOCK`` in the trace) until a slot frees up.

``Get(channel)``
    Read a word.  Completes in the same cycle when a word is ready;
    otherwise blocks (``RX_BLOCK``).  The read value is the result of the
    ``yield`` expression.

``PutBurst(channel, values, gap=1)`` / ``GetBurst(channel, count)`` /
``RouteBurst(moves, count)``
    Burst forms of the word loops tile programs would otherwise run one
    yield at a time (ingress DMA, egress drain, switch-route repeats).
    They are *semantically identical* to the equivalent loop of
    ``Put``/``Get``/``Timeout`` commands -- same cycle counts, same
    blocking, same trace -- but execute inside the kernel as small state
    machines, without a generator round-trip per word.

This is deliberately the programming model of a Raw tile: register-mapped
network ports with blocking reads/writes, plus a cycle cost for every
instruction executed (expressed as Timeouts by the tile-program code in
:mod:`repro.raw` and :mod:`repro.router`).

Scheduler internals (see DESIGN.md "Kernel internals"): events live in a
bounded-horizon calendar wheel -- almost every event in this kernel is
0-3 cycles out (link latencies, per-word costs), so a bucket append/pop
replaces the global ``heapq`` -- with a far-future heap backing store
for long sleeps.  Commands dispatch on a small integer class tag instead
of an ``isinstance`` chain, and a channel never has more than one
pending ``service`` event per cycle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.sim.channel import Channel
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.trace import Trace
from repro.telemetry import runtime as _telemetry

# Canonical trace states (thesis Fig 7-3 distinguishes computing from
# "blocked on transmit, receive, or cache miss").
BUSY = "busy"
IDLE = "idle"
TX_BLOCK = "tx"
RX_BLOCK = "rx"
MEM_BLOCK = "mem"

# Fault-window states recorded by the injector (repro.faults): a link or
# port held down by a fault, or stalled by an overload window.
DOWN = "down"
STALLED = "stalled"

BLOCKED_STATES = frozenset({TX_BLOCK, RX_BLOCK, MEM_BLOCK})
FAULT_STATES = frozenset({DOWN, STALLED})

#: Calendar-wheel horizon in cycles.  The kernel's event pattern is
#: overwhelmingly near-future (hop latency 1, per-word gaps 1, control
#: costs < 100); anything at or beyond the horizon overflows to a heap.
WHEEL_CYCLES = 1024

# Event kinds inside the scheduler (wheel buckets / far heap).
_EV_RESUME = 0  #: resume a process or burst state machine
_EV_SERVICE = 1  #: move words/waiters through a channel
_EV_GET = 2  #: complete a deferred Get: pop the head word, resume the process


class Timeout:
    """Advance the process's local clock by ``delay`` cycles."""

    _kind = 0
    __slots__ = ("delay", "state")

    def __init__(self, delay: int, state: str = BUSY):
        if delay < 0:
            raise ValueError("Timeout delay must be >= 0")
        self.delay = delay
        self.state = state


class Put:
    """Write ``value`` into ``channel`` (blocking when full)."""

    _kind = 1
    __slots__ = ("channel", "value")

    def __init__(self, channel: Channel, value: Any):
        self.channel = channel
        self.value = value


class Get:
    """Read a word from ``channel`` (blocking when empty)."""

    _kind = 2
    __slots__ = ("channel",)

    def __init__(self, channel: Channel):
        self.channel = channel


class PutBurst:
    """Stream ``values`` into ``channel`` at one word per ``gap`` cycles.

    Cycle-for-cycle equivalent to::

        for v in values:
            yield Put(channel, v)
            yield Timeout(gap, state)

    including blocking (``TX_BLOCK``) when the channel back-pressures,
    but executed inside the kernel without resuming the generator per
    word.  ``gap=0`` degenerates to back-to-back puts in one cycle.
    """

    _kind = 3
    __slots__ = ("channel", "values", "gap", "state")

    def __init__(
        self, channel: Channel, values: Sequence[Any], gap: int = 1, state: str = BUSY
    ):
        if gap < 0:
            raise ValueError("PutBurst gap must be >= 0")
        self.channel = channel
        self.values = values
        self.gap = gap
        self.state = state


class GetBurst:
    """Read ``count`` words from ``channel``; yields the list of values.

    Cycle-for-cycle equivalent to::

        [(yield Get(channel)) for _ in range(count)]

    including per-word ``RX_BLOCK`` blocking, without a generator
    round-trip per word.
    """

    _kind = 4
    __slots__ = ("channel", "count")

    def __init__(self, channel: Channel, count: int):
        if count < 0:
            raise ValueError("GetBurst count must be >= 0")
        self.channel = channel
        self.count = count


class RouteBurst:
    """``count`` repetitions of a switch route: read each distinct source
    once, then write the full fanout.

    Cycle-for-cycle equivalent to::

        for _ in range(count):
            vals = {}
            for src in distinct_sources:   # first-appearance order
                vals[src] = yield Get(src)
            for src, dst in moves:
                yield Put(dst, vals[src])

    which is exactly the interpreter loop of
    :meth:`repro.raw.switchproc.SwitchProcessor.execute_one`.  The
    instruction's all-or-nothing stall behaviour is preserved because it
    was only ever emergent from those blocking reads/writes.
    """

    _kind = 5
    __slots__ = ("sources", "moves", "count", "single")

    def __init__(self, moves: Sequence[Tuple[Channel, Channel]], count: int = 1):
        if count < 1:
            raise ValueError("RouteBurst count must be >= 1")
        if not moves:
            raise ValueError("RouteBurst needs at least one move (use Timeout)")
        sources: List[Channel] = []
        for src, _ in moves:
            if not any(s is src for s in sources):
                sources.append(src)
        index = {id(src): i for i, src in enumerate(sources)}
        self.sources: Tuple[Channel, ...] = tuple(sources)
        self.moves: Tuple[Tuple[int, Channel], ...] = tuple(
            (index[id(src)], dst) for src, dst in moves
        )
        self.count = count
        #: Precomputed: route the command through the kernel's
        #: single-move fast path (:class:`_RouteSM1`).
        self.single = len(self.moves) == 1


class Process:
    """A running generator plus its bookkeeping."""

    _wkind = 0  #: waiter-queue dispatch tag (burst SMs use 1..3)
    __slots__ = (
        "gen",
        "name",
        "trace_key",
        "alive",
        "result",
        "_block_start",
        "_block_state",
        "_block_channel",
    )

    def __init__(self, gen: Generator, name: str, trace_key: Optional[str]):
        self.gen = gen
        self.name = name
        self.trace_key = trace_key
        self.alive = True
        self.result: Any = None
        self._block_start: int = -1
        self._block_state: str = ""
        self._block_channel: Optional[Channel] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, alive={self.alive})"


class _GetSM:
    """Kernel-side state of an in-progress :class:`GetBurst`."""

    _wkind = 1
    __slots__ = ("proc", "ch", "remaining", "values")

    def __init__(self, proc: Process, ch: Channel, count: int):
        self.proc = proc
        self.ch = ch
        self.remaining = count
        self.values: List[Any] = []


class _RouteSM:
    """Kernel-side state of an in-progress :class:`RouteBurst`."""

    _wkind = 2
    __slots__ = ("proc", "sources", "moves", "remaining", "values", "src_idx", "put_idx")

    def __init__(self, proc: Process, cmd: RouteBurst):
        self.proc = proc
        self.sources = cmd.sources
        self.moves = cmd.moves
        self.remaining = cmd.count
        self.values: List[Any] = [None] * len(cmd.sources)
        self.src_idx = 0
        self.put_idx = 0


class _RouteSM1(_RouteSM):
    """A :class:`_RouteSM` for the (dominant) single-move instruction.

    Same fields and mid-execution state as the generic machine -- the
    channel-service arms handle both identically -- but dispatched to a
    specialized advance loop with no index machinery.
    """

    _wkind = 4
    __slots__ = ()


class _PutSM:
    """Kernel-side state of an in-progress :class:`PutBurst`."""

    _wkind = 3
    __slots__ = ("proc", "ch", "values", "gap", "state", "idx", "phase")

    def __init__(self, proc: Process, cmd: PutBurst):
        self.proc = proc
        self.ch = cmd.channel
        self.values = cmd.values
        self.gap = cmd.gap
        self.state = cmd.state
        self.idx = 0  #: next value to admit
        self.phase = 0  #: 0 = admit word ``idx``; 1 = gap after word ``idx``


class Simulator:
    """Cycle-based discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`Trace` receiving state intervals of processes
        created with a ``trace_key``.
    """

    def __init__(self, trace: Optional[Trace] = None):
        self.now: int = 0
        self.trace = trace
        #: Scheduler activity counter: events executed plus process /
        #: burst steps.  Monotonic across runs; the bench harness
        #: divides it by wall time.
        self.events_processed: int = 0
        # Telemetry recorder captured at construction (None when
        # disabled); the hot loops guard every use with one truthiness
        # check so disabled-mode runs are bit-identical.
        self._tel = _telemetry.RECORDER
        if self._tel is not None:
            self._tel.registry.gauge(
                "kernel.events_dispatched", lambda: self.events_processed
            )
        # Calendar wheel: one bucket per cycle within the horizon, plus
        # a heap for far-future events.  Bucket entries are
        # (kind, payload, value); append order *is* schedule order, which
        # is the global FIFO tie-break the old single heap enforced with
        # sequence numbers.  Heap entries are (time, seq, kind, payload,
        # value); the seq breaks same-time ties within the heap only.
        # Cross-store ordering needs no seq: a heap event firing at t was
        # scheduled >= WHEEL_CYCLES before t (else it would be in the
        # wheel), while every wheel entry for t was scheduled inside the
        # last WHEEL_CYCLES cycles -- so heap spills always precede the
        # bucket's entries.
        self._wheel: List[List[tuple]] = [[] for _ in range(WHEEL_CYCLES)]
        self._wheel_count = 0
        self._far: List[tuple] = []
        self._seq = 0
        # Runnable queue: same (kind, payload, value) tuples as wheel
        # buckets (kind is ignored on drain; sharing the shape lets the
        # event loop re-queue resume events without reallocating).
        self._ready: Deque[tuple] = deque()
        self._processes: List[Process] = []
        # Channels that have ever parked a waiter; scanned when the
        # event queue drains to find deadlocked processes (keeping a
        # central blocked dict costs two dict writes per block, which is
        # the kernel's hottest pattern).
        self._wait_channels: List[Channel] = []
        self._drained_blocked: List[Process] = []

    # ------------------------------------------------------------------
    def add_process(
        self,
        gen: Generator,
        name: str = "proc",
        trace_key: Optional[str] = None,
    ) -> Process:
        """Register a generator as a process starting at the current cycle."""
        if not hasattr(gen, "send"):
            raise SimulationError(f"process {name!r} is not a generator")
        proc = Process(gen, name, trace_key)
        self._processes.append(proc)
        self._ready.append((_EV_RESUME, proc, None))
        return proc

    def channel(self, name: str = "", capacity: int = 1, latency: int = 0) -> Channel:
        return Channel(name=name, capacity=capacity, latency=latency)

    # ------------------------------------------------------------------
    def _schedule(self, time: int, kind: int, payload, value=None) -> None:
        if time - self.now < WHEEL_CYCLES:
            self._wheel[time % WHEEL_CYCLES].append((kind, payload, value))
            self._wheel_count += 1
        else:
            self._seq += 1
            heapq.heappush(self._far, (time, self._seq, kind, payload, value))

    def _schedule_service(self, ch: Channel, time: int) -> None:
        """Schedule a channel service, skipping exact duplicates (several
        same-cycle puts would otherwise each schedule one)."""
        if ch._service_at == time:
            return
        ch._service_at = time
        self._schedule(time, _EV_SERVICE, ch)

    def _record(self, proc: Process, state: str, start: int, end: int) -> None:
        if self.trace is not None and proc.trace_key is not None:
            self.trace.record(proc.trace_key, state, start, end)

    def _mark_blocked(self, proc: Process, state: str, channel: Channel) -> None:
        proc._block_start = self.now
        proc._block_state = state
        proc._block_channel = channel
        if not channel._registered:
            channel._registered = True
            self._wait_channels.append(channel)

    def _unmark_blocked(self, proc: Process) -> None:
        """Clear block bookkeeping and record the blocked interval."""
        if proc._block_start >= 0:
            self._record(proc, proc._block_state, proc._block_start, self.now)
            proc._block_start = -1
            proc._block_channel = None

    def _unblock(self, proc: Process, value: Any) -> None:
        self._unmark_blocked(proc)
        self._ready.append((_EV_RESUME, proc, value))

    def _notify_getters(self, ch: Channel) -> None:
        """A put just appended a word and getters are waiting.

        When the word is already consumable, run the channel service.
        When it is still propagating and exactly one getter waits for
        exactly this word, convert the parked waiter into a direct wake
        at the word's ready time -- the wake event lands at the same
        bucket position the channel-service event would have (both are
        scheduled at this exact point), and the resumed waiter re-checks
        readiness, so ordering and outcomes are unchanged; the generic
        parked-waiter path is kept for fan-in.
        """
        items = ch._items
        ready_at = items[0][0]
        now = self.now
        if ready_at <= now:
            self._service_channel(ch)
            return
        getters = ch._getters
        if len(getters) == 1 and len(items) == 1:
            g = getters.popleft()
            if g.__class__ is Process:
                self._schedule(ready_at, _EV_GET, g, ch)
            else:
                self._schedule(ready_at, _EV_RESUME, g)
        else:
            self._schedule_service(ch, ready_at)

    # ------------------------------------------------------------------
    # Non-blocking channel access for synchronous controllers (the
    # Rotating Crossbar's fabric loop inspects four head-of-line queues
    # and consumes only the granted ones; a blocking Get cannot express
    # that).  Only call these from *inside* a running process.
    def peek(self, ch: Channel):
        """(True, value) if a word is ready now, else (False, None).
        Does not consume the word."""
        return ch.peek_value(self.now)

    def try_get(self, ch: Channel):
        """Consume a ready word: (True, value), or (False, None)."""
        ok, value = ch.pop_ready(self.now)
        if ok and ch._putters:
            self._service_channel(ch)
        return ok, value

    def try_put(self, ch: Channel, value: Any) -> bool:
        """Deposit a word if there is room; False when the channel is full
        (lets line-card models drop instead of blocking, matching the
        thesis's externally-dropping FIFO assumption)."""
        if not ch.push(value, self.now):
            return False
        if ch._getters:
            self._notify_getters(ch)
        return True

    # ------------------------------------------------------------------
    def _service_channel(self, ch: Channel) -> None:
        """Move words/waiters through a channel at the current cycle."""
        now = self.now
        items = ch._items
        getters = ch._getters
        putters = ch._putters
        ready = self._ready
        while True:
            # Deliver ready words to blocked getters.
            if getters and items and items[0][0] <= now:
                g = getters.popleft()
                value = items.popleft()[1]
                if g.__class__ is Process:
                    self._unblock(g, value)
                else:
                    # Burst state machine: hand it the word and let it
                    # continue from the ready queue, exactly where the
                    # equivalent word-loop process would resume.
                    self._unmark_blocked(g.proc)
                    if g._wkind == 1:  # _GetSM
                        g.values.append(value)
                        g.remaining -= 1
                    else:  # _RouteSM reading a source
                        g.values[g.src_idx] = value
                        g.src_idx += 1
                    ready.append((_EV_RESUME, g, None))
                continue
            # Admit blocked putters into freed slots.
            if putters and len(items) < ch.capacity:
                p = putters.popleft()
                if p.__class__ is tuple:  # plain Put: (process, value)
                    proc, value = p
                    items.append((now + ch.latency, value))
                    self._unblock(proc, None)
                else:
                    # Burst state machine blocked mid-put: admit the
                    # pending word here (the put completes at service
                    # time, as it did for a blocked Put command) and
                    # resume the machine from the ready queue.
                    if p._wkind == 3:  # _PutSM
                        items.append((now + ch.latency, p.values[p.idx]))
                        p.phase = 1
                    else:  # _RouteSM writing a destination
                        items.append(
                            (now + ch.latency, p.values[p.moves[p.put_idx][0]])
                        )
                        p.put_idx += 1
                    self._unmark_blocked(p.proc)
                    ready.append((_EV_RESUME, p, None))
                continue
            break
        # If getters remain and a word is merely in flight, wake later.
        if getters and items:
            ready_at = items[0][0]
            if ready_at > now:
                self._schedule_service(ch, ready_at)

    # ------------------------------------------------------------------
    # Burst state machines.  Each advance function runs its machine as
    # far as it can go at the current cycle and returns True when the
    # whole burst is complete (the owning process then resumes).  The
    # machines block and resume through the same waiter queues, trace
    # records, and ready-queue positions the equivalent command loops
    # used, which is what keeps burst and word-at-a-time execution
    # cycle-identical.
    def _defer_until_ready(self, sm, ready_at: int) -> None:
        """Sleep a burst machine until an in-flight head word lands.

        Channels here are single-consumer, so when the head word exists
        but is still propagating the machine can resume directly at its
        ready time instead of parking in the getter queue behind a
        channel-service event -- same wake cycle, same bucket position
        (both are scheduled at this exact point), so ordering is
        unchanged.  The RX interval is recorded at resume (in
        :meth:`run`'s drain loop), like a queue-parked waiter's would be.
        """
        proc = sm.proc
        proc._block_start = self.now
        proc._block_state = RX_BLOCK
        self._schedule(ready_at, _EV_RESUME, sm)

    def _advance_get(self, sm: _GetSM) -> bool:
        # Same inlining note as _advance_put.
        now = self.now
        ch = sm.ch
        items = ch._items
        values = sm.values
        while sm.remaining:
            if items and items[0][0] <= now:
                values.append(items.popleft()[1])
                sm.remaining -= 1
                if ch._putters:
                    self._service_channel(ch)
            elif items:
                # Word in flight: sleep until it lands (the inline form
                # of _defer_until_ready).
                proc = sm.proc
                proc._block_start = now
                proc._block_state = RX_BLOCK
                ready_at = items[0][0]
                if ready_at - now < WHEEL_CYCLES:
                    self._wheel[ready_at % WHEEL_CYCLES].append(
                        (_EV_RESUME, sm, None)
                    )
                    self._wheel_count += 1
                else:
                    self._seq += 1
                    heapq.heappush(
                        self._far, (ready_at, self._seq, _EV_RESUME, sm, None)
                    )
                return False
            else:
                ch._getters.append(sm)
                proc = sm.proc
                proc._block_start = now
                proc._block_state = RX_BLOCK
                proc._block_channel = ch
                if not ch._registered:
                    ch._registered = True
                    self._wait_channels.append(ch)
                return False
        return True

    def _advance_put(self, sm: _PutSM) -> bool:
        # Inlines the fast paths of _notify_getters / _schedule /
        # _mark_blocked (call overhead dominates at ~10^6 words per run);
        # any semantic change here must be mirrored in those methods.
        now = self.now
        ch = sm.ch
        values = sm.values
        n = len(values)
        items = ch._items
        capacity = ch.capacity
        latency = ch.latency
        trace = self.trace
        while True:
            if sm.phase == 0:
                idx = sm.idx
                if idx >= n:
                    return True
                if len(items) >= capacity:
                    ch._putters.append(sm)
                    proc = sm.proc
                    proc._block_start = now
                    proc._block_state = TX_BLOCK
                    proc._block_channel = ch
                    if not ch._registered:
                        ch._registered = True
                        self._wait_channels.append(ch)
                    return False
                items.append((now + latency, values[idx]))
                getters = ch._getters
                if getters:
                    ready_at = items[0][0]
                    if ready_at > now and len(getters) == 1 and len(items) == 1:
                        g = getters.popleft()
                        ev = (
                            (_EV_GET, g, ch)
                            if g.__class__ is Process
                            else (_EV_RESUME, g, None)
                        )
                        if ready_at - now < WHEEL_CYCLES:
                            self._wheel[ready_at % WHEEL_CYCLES].append(ev)
                            self._wheel_count += 1
                        else:
                            self._seq += 1
                            heapq.heappush(
                                self._far, (ready_at, self._seq) + ev
                            )
                    else:
                        self._notify_getters(ch)
                sm.phase = 1
            else:
                # The word at ``idx`` is admitted; spend the inter-word
                # gap (the per-word instruction cost of the DMA loop).
                sm.idx += 1
                sm.phase = 0
                gap = sm.gap
                if gap:
                    proc = sm.proc
                    if trace is not None and proc.trace_key is not None:
                        trace.record(proc.trace_key, sm.state, now, now + gap)
                    t = now + gap
                    if gap < WHEEL_CYCLES:
                        self._wheel[t % WHEEL_CYCLES].append(
                            (_EV_RESUME, sm, None)
                        )
                        self._wheel_count += 1
                    else:
                        self._seq += 1
                        heapq.heappush(
                            self._far, (t, self._seq, _EV_RESUME, sm, None)
                        )
                    return False

    def _advance_route(self, sm: _RouteSM) -> bool:
        # The kernel's innermost loop; same inlining note as _advance_put.
        now = self.now
        sources = sm.sources
        nsrc = len(sources)
        moves = sm.moves
        nmoves = len(moves)
        values = sm.values
        proc = sm.proc
        while True:
            src_idx = sm.src_idx
            while src_idx < nsrc:
                ch = sources[src_idx]
                items = ch._items
                if items:
                    ready_at = items[0][0]
                    if ready_at <= now:
                        values[src_idx] = items.popleft()[1]
                        src_idx += 1
                        if ch._putters:
                            self._service_channel(ch)
                        continue
                    # Word in flight: sleep until it lands (the inline
                    # form of _defer_until_ready).
                    sm.src_idx = src_idx
                    proc._block_start = now
                    proc._block_state = RX_BLOCK
                    if ready_at - now < WHEEL_CYCLES:
                        self._wheel[ready_at % WHEEL_CYCLES].append(
                            (_EV_RESUME, sm, None)
                        )
                        self._wheel_count += 1
                    else:
                        self._seq += 1
                        heapq.heappush(
                            self._far, (ready_at, self._seq, _EV_RESUME, sm, None)
                        )
                    return False
                sm.src_idx = src_idx
                ch._getters.append(sm)
                proc._block_start = now
                proc._block_state = RX_BLOCK
                proc._block_channel = ch
                if not ch._registered:
                    ch._registered = True
                    self._wait_channels.append(ch)
                return False
            sm.src_idx = src_idx
            put_idx = sm.put_idx
            while put_idx < nmoves:
                pos, dst = moves[put_idx]
                items = dst._items
                if len(items) < dst.capacity:
                    items.append((now + dst.latency, values[pos]))
                    getters = dst._getters
                    if getters:
                        ready_at = items[0][0]
                        if ready_at > now and len(getters) == 1 and len(items) == 1:
                            g = getters.popleft()
                            ev = (
                                (_EV_GET, g, dst)
                                if g.__class__ is Process
                                else (_EV_RESUME, g, None)
                            )
                            if ready_at - now < WHEEL_CYCLES:
                                self._wheel[ready_at % WHEEL_CYCLES].append(ev)
                                self._wheel_count += 1
                            else:
                                self._seq += 1
                                heapq.heappush(
                                    self._far, (ready_at, self._seq) + ev
                                )
                        else:
                            self._notify_getters(dst)
                    put_idx += 1
                else:
                    sm.put_idx = put_idx
                    dst._putters.append(sm)
                    proc._block_start = now
                    proc._block_state = TX_BLOCK
                    proc._block_channel = dst
                    if not dst._registered:
                        dst._registered = True
                        self._wait_channels.append(dst)
                    return False
            sm.remaining -= 1
            if sm.remaining == 0:
                sm.put_idx = put_idx
                return True
            sm.src_idx = 0
            sm.put_idx = 0

    def _advance_route1(self, sm: _RouteSM1) -> bool:
        # Single-move specialization of _advance_route: one source, one
        # destination, no fanout -- the shape of the egress relay, the
        # header feed, and most body instructions.  Blocking leaves
        # ``src_idx``/``put_idx``/``values`` exactly as the generic loop
        # would, so parked machines are serviced identically.
        now = self.now
        src = sm.sources[0]
        dst = sm.moves[0][1]
        proc = sm.proc
        while True:
            if sm.src_idx == 0:
                items = src._items
                if items:
                    head = items[0]
                    if head[0] <= now:
                        items.popleft()
                        word = head[1]
                        if src._putters:
                            self._service_channel(src)
                    else:
                        # Word in flight: sleep until it lands.
                        proc._block_start = now
                        proc._block_state = RX_BLOCK
                        ready_at = head[0]
                        if ready_at - now < WHEEL_CYCLES:
                            self._wheel[ready_at % WHEEL_CYCLES].append(
                                (_EV_RESUME, sm, None)
                            )
                            self._wheel_count += 1
                        else:
                            self._seq += 1
                            heapq.heappush(
                                self._far,
                                (ready_at, self._seq, _EV_RESUME, sm, None),
                            )
                        return False
                else:
                    src._getters.append(sm)
                    proc._block_start = now
                    proc._block_state = RX_BLOCK
                    proc._block_channel = src
                    if not src._registered:
                        src._registered = True
                        self._wait_channels.append(src)
                    return False
            else:
                # Resumed after a channel service read/admitted the word.
                word = sm.values[0]
            if sm.put_idx == 0:
                items = dst._items
                if len(items) < dst.capacity:
                    items.append((now + dst.latency, word))
                    getters = dst._getters
                    if getters:
                        ready_at = items[0][0]
                        if ready_at > now and len(getters) == 1 and len(items) == 1:
                            g = getters.popleft()
                            ev = (
                                (_EV_GET, g, dst)
                                if g.__class__ is Process
                                else (_EV_RESUME, g, None)
                            )
                            if ready_at - now < WHEEL_CYCLES:
                                self._wheel[ready_at % WHEEL_CYCLES].append(ev)
                                self._wheel_count += 1
                            else:
                                self._seq += 1
                                heapq.heappush(
                                    self._far, (ready_at, self._seq) + ev
                                )
                        else:
                            self._notify_getters(dst)
                else:
                    sm.values[0] = word
                    sm.src_idx = 1
                    dst._putters.append(sm)
                    proc._block_start = now
                    proc._block_state = TX_BLOCK
                    proc._block_channel = dst
                    if not dst._registered:
                        dst._registered = True
                        self._wait_channels.append(dst)
                    return False
            sm.remaining -= 1
            if sm.remaining == 0:
                return True
            sm.src_idx = 0
            sm.put_idx = 0

    def _complete_deferred_get(self, proc: Process, ch: Channel) -> None:
        """Finish a Get that slept until its in-flight word's ready time.

        Equivalent to the channel service the old path scheduled: pop
        the word, resume the process, admit any blocked putters into the
        freed slot.  If the word was taken meanwhile (``try_get``), fall
        back to waiting again without restarting the blocked interval.
        """
        now = self.now
        items = ch._items
        if items and items[0][0] <= now:
            value = items.popleft()[1]
            if proc._block_start >= 0:
                self._record(proc, proc._block_state, proc._block_start, now)
                proc._block_start = -1
            self._ready.append((_EV_RESUME, proc, value))
            if ch._putters:
                self._service_channel(ch)
        elif items:
            self._schedule(items[0][0], _EV_GET, proc, ch)
        else:
            ch._getters.append(proc)
            proc._block_channel = ch
            if not ch._registered:
                ch._registered = True
                self._wait_channels.append(ch)

    # ------------------------------------------------------------------
    def _step(self, proc: Process, send_value: Any) -> None:
        """Run one process until it blocks, sleeps, or terminates.

        The Put/Get arms inline :meth:`Channel.push` / ``pop_ready`` --
        this loop is the simulator's innermost -- but must match those
        methods' semantics exactly.
        """
        gen = proc.gen
        send = gen.send
        now = self.now
        tel = self._tel
        while True:
            try:
                cmd = gen.send(send_value)
            except StopIteration as stop:
                proc.alive = False
                proc.result = stop.value
                return
            send_value = None

            try:
                kind = cmd._kind
            except AttributeError:
                raise SimulationError(
                    f"process {proc.name!r} yielded unsupported command {cmd!r}"
                ) from None

            if tel is not None:
                # Command tags index telemetry's CMD_NAMES directly.
                tel.kernel.cmd_counts[kind] += 1

            if kind == 1:  # Put
                ch = cmd.channel
                items = ch._items
                if len(items) < ch.capacity:
                    items.append((now + ch.latency, cmd.value))
                    if ch._getters:
                        self._notify_getters(ch)
                    continue  # put completed this cycle
                ch._putters.append((proc, cmd.value))
                self._mark_blocked(proc, TX_BLOCK, ch)
                return

            if kind == 2:  # Get
                ch = cmd.channel
                items = ch._items
                if items and items[0][0] <= now:
                    send_value = items.popleft()[1]
                    if ch._putters:
                        self._service_channel(ch)
                    continue  # get completed this cycle
                if items:  # word in flight: wake directly when it lands
                    proc._block_start = now
                    proc._block_state = RX_BLOCK
                    self._schedule(items[0][0], _EV_GET, proc, ch)
                    return
                ch._getters.append(proc)
                self._mark_blocked(proc, RX_BLOCK, ch)
                return

            if kind == 0:  # Timeout
                delay = cmd.delay
                if delay == 0:
                    continue
                self._record(proc, cmd.state, now, now + delay)
                self._schedule(now + delay, _EV_RESUME, proc)
                return

            if kind == 5:  # RouteBurst
                if cmd.single:
                    if self._advance_route1(_RouteSM1(proc, cmd)):
                        continue
                elif self._advance_route(_RouteSM(proc, cmd)):
                    continue
                return

            if kind == 3:  # PutBurst
                if not len(cmd.values):
                    continue
                sm = _PutSM(proc, cmd)
                if self._advance_put(sm):
                    continue
                return

            if kind == 4:  # GetBurst
                if cmd.count == 0:
                    send_value = []
                    continue
                sm = _GetSM(proc, cmd.channel, cmd.count)
                if self._advance_get(sm):
                    send_value = sm.values
                    continue
                return

            raise SimulationError(
                f"process {proc.name!r} yielded unsupported command {cmd!r}"
            )

    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, raise_on_deadlock: bool = True) -> int:
        """Run until the event queue drains or ``until`` cycles have elapsed.

        Returns the final simulation time, which always equals
        :attr:`now`.  The contract around ``until``:

        * If events remain beyond ``until``, the clock advances to
          exactly ``until`` and the simulator is resumable from there.
        * If the queue drains *before* ``until``, the clock stays at the
          last executed event -- it is **not** advanced to ``until``,
          because nothing can happen in between and measurement code
          divides by elapsed time.  Callers must use the returned time,
          not ``until``.  In this drained-early case
          :meth:`blocked_report` says which processes (if any) were left
          stuck on channels and since when; no :class:`DeadlockError` is
          raised (the bounded run may simply have outlived its sources).
        * ``until`` at or before the current clock is a no-op: the clock
          never moves backwards.

        When the queue drains with processes still blocked and no
        ``until`` was given, a :class:`DeadlockError` is raised unless
        ``raise_on_deadlock`` is false (useful for open-ended pipelines
        whose sources finished).
        """
        if until is not None and until <= self.now:
            return self.now
        self._drained_blocked = []
        ready = self._ready
        wheel = self._wheel
        far = self._far
        trace = self.trace
        tel = self._tel
        ep = self.events_processed
        try:
            while True:
                now = self.now
                while ready:
                    entry = ready.popleft()
                    item = entry[1]
                    if item.__class__ is Process:
                        if item.alive:
                            ep += 1
                            self._step(item, entry[2])
                    else:
                        # Burst state machine: close any deferred-wait
                        # interval, advance it, and when the whole burst
                        # is done resume the owning process (with the
                        # collected words for GetBurst).
                        ep += 1
                        proc = item.proc
                        if proc._block_start >= 0:
                            if trace is not None and proc.trace_key is not None:
                                trace.record(
                                    proc.trace_key,
                                    proc._block_state,
                                    proc._block_start,
                                    now,
                                )
                            proc._block_start = -1
                        wk = item._wkind
                        if wk == 4:
                            if self._advance_route1(item):
                                self._step(proc, None)
                        elif wk == 3:
                            if self._advance_put(item):
                                self._step(proc, None)
                        elif wk == 2:
                            if self._advance_route(item):
                                self._step(proc, None)
                        elif self._advance_get(item):
                            self._step(proc, item.values)

                # Find the next event time: scan the wheel (the next
                # event is almost always 1-3 cycles out), then let a
                # nearer far-heap entry override it.
                if self._wheel_count:
                    t = self.now
                    while not wheel[t % WHEEL_CYCLES]:
                        t += 1
                    if far and far[0][0] < t:
                        t = far[0][0]
                elif far:
                    t = far[0][0]
                else:
                    break

                if until is not None and t > until:
                    self.now = until
                    return self.now

                self.now = t
                bucket = wheel[t % WHEEL_CYCLES]
                if bucket:
                    wheel[t % WHEEL_CYCLES] = []
                    self._wheel_count -= len(bucket)
                if far and far[0][0] == t:
                    spill = []
                    while far and far[0][0] == t:
                        _, _, kind, payload, value = heapq.heappop(far)
                        spill.append((kind, payload, value))
                    # Far entries were scheduled >= WHEEL_CYCLES before
                    # t, wheel entries within the last WHEEL_CYCLES, so
                    # spill-then-bucket is global FIFO order.
                    if tel is not None:
                        tel.kernel.far_spills += len(spill)
                    bucket = spill + bucket if bucket else spill

                if tel is not None:
                    prof = tel.kernel
                    n = len(bucket)
                    prof.bucket_drains += 1
                    prof.bucket_events += n
                    if n > prof.bucket_peak:
                        prof.bucket_peak = n
                    if self._wheel_count > prof.wheel_peak:
                        prof.wheel_peak = self._wheel_count

                for ev in bucket:
                    ep += 1
                    kind = ev[0]
                    if kind == _EV_RESUME:
                        payload = ev[1]
                        if payload.__class__ is Process:
                            if payload.alive:
                                ready.append(ev)
                        else:
                            ready.append(ev)
                    elif kind == _EV_SERVICE:
                        ch = ev[1]
                        if ch._service_at == t:
                            ch._service_at = -1
                        self._service_channel(ch)
                    else:  # _EV_GET: payload is the process, value the channel
                        if ev[1].alive:
                            self._complete_deferred_get(ev[1], ev[2])
        finally:
            self.events_processed = ep

        blocked = self._collect_blocked()
        self._drained_blocked = blocked
        if blocked and raise_on_deadlock and until is None:
            raise DeadlockError(blocked, now=self.now)
        return self.now

    def _collect_blocked(self) -> List[Process]:
        """Processes parked in channel wait queues (a process can wait on
        at most one channel, so no dedup is needed)."""
        out: List[Process] = []
        for ch in self._wait_channels:
            for g in ch._getters:
                proc = g if g.__class__ is Process else g.proc
                if proc.alive:
                    out.append(proc)
            for p in ch._putters:
                proc = p[0] if p.__class__ is tuple else p.proc
                if proc.alive:
                    out.append(proc)
        return out

    def blocked_report(self) -> List[Dict[str, Any]]:
        """Processes left blocked when the last :meth:`run` drained.

        One dict per stuck process: ``name``, ``state`` (``tx``/``rx``),
        ``channel`` (the channel's name, or None if it was unnamed), and
        ``since`` (the cycle it blocked).  Empty when the last run
        drained cleanly or was cut off by ``until`` with events still
        pending.
        """
        return [
            {
                "name": proc.name,
                "state": proc._block_state,
                "channel": (
                    proc._block_channel.name or None
                    if proc._block_channel is not None
                    else None
                ),
                "since": proc._block_start,
            }
            for proc in self._drained_blocked
        ]


def run_processes(
    *gens: Generator,
    until: Optional[int] = None,
    trace: Optional[Trace] = None,
    raise_on_deadlock: bool = True,
) -> Simulator:
    """Convenience: build a simulator, add ``gens``, run, return it."""
    sim = Simulator(trace=trace)
    for i, gen in enumerate(gens):
        sim.add_process(gen, name=f"proc{i}")
    sim.run(until=until, raise_on_deadlock=raise_on_deadlock)
    return sim
