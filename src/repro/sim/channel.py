"""Flow-controlled channels: the model of a Raw static-network link.

A :class:`Channel` is a bounded FIFO register with an optional propagation
``latency``.  ``Put`` succeeds immediately when a slot is free and the word
becomes visible to ``Get`` ``latency`` cycles later; when the channel is
full the putter blocks (Raw's static network "stalls when data is not
available" and back-pressures when full -- thesis section 3.3).  With
``capacity=1`` and ``latency=1`` a chain of forwarding processes sustains
exactly one word per cycle per hop, matching the static network's
bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple


class Channel:
    """Bounded FIFO with propagation latency and blocking semantics.

    The kernel manipulates the private wait queues; user code only ever
    names channels inside ``Put``/``Get`` commands.  ``capacity`` counts
    words resident in the link stage (in flight plus ready).
    """

    __slots__ = (
        "name",
        "capacity",
        "latency",
        "_items",
        "_putters",
        "_getters",
        "_service_at",
        "_registered",
    )

    def __init__(self, name: str = "", capacity: int = 1, latency: int = 0):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        if latency < 0:
            raise ValueError("channel latency must be >= 0")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        # Each item is (ready_time, value).
        self._items: Deque[Tuple[int, Any]] = deque()
        self._putters: Deque[Any] = deque()  # waiters blocked on Put
        self._getters: Deque[Any] = deque()  # waiters blocked on Get
        # Cycle of the earliest pending kernel "service" event for this
        # channel, or -1; lets the kernel skip scheduling duplicates.
        self._service_at: int = -1
        # True once the kernel has listed this channel in its registry of
        # channels that ever parked a waiter (used for deadlock reports).
        self._registered: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, cap={self.capacity}, lat={self.latency}, "
            f"items={len(self._items)}, putters={len(self._putters)}, "
            f"getters={len(self._getters)})"
        )

    # -- introspection used by tests and the deadlock reporter ----------
    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def peek_ready(self, now: int) -> bool:
        """True when a word is available to a getter at cycle ``now``."""
        return bool(self._items) and self._items[0][0] <= now

    # -- the fast-path word operations --------------------------------
    # One implementation shared by the kernel's blocking commands, the
    # burst state machines, and the Simulator's non-blocking helpers
    # (peek / try_get / try_put).
    def peek_value(self, now: int) -> Tuple[bool, Any]:
        """(True, head word) if one is ready at ``now``, without
        consuming it; (False, None) otherwise."""
        items = self._items
        if items and items[0][0] <= now:
            return True, items[0][1]
        return False, None

    def pop_ready(self, now: int) -> Tuple[bool, Any]:
        """Consume and return the head word if ready: (True, value);
        (False, None) when empty or still in flight."""
        items = self._items
        if items and items[0][0] <= now:
            return True, items.popleft()[1]
        return False, None

    def push(self, value: Any, now: int) -> bool:
        """Deposit ``value`` (visible ``latency`` cycles later) if a slot
        is free; False when the channel is full."""
        items = self._items
        if len(items) >= self.capacity:
            return False
        items.append((now + self.latency, value))
        return True

    def seed(self, value: Any, ready_at: int = 0) -> None:
        """Pre-load a word before the simulation starts (e.g. a mutex
        token); bypasses capacity checks and waiter bookkeeping."""
        self._items.append((ready_at, value))
