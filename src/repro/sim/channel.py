"""Flow-controlled channels: the model of a Raw static-network link.

A :class:`Channel` is a bounded FIFO register with an optional propagation
``latency``.  ``Put`` succeeds immediately when a slot is free and the word
becomes visible to ``Get`` ``latency`` cycles later; when the channel is
full the putter blocks (Raw's static network "stalls when data is not
available" and back-pressures when full -- thesis section 3.3).  With
``capacity=1`` and ``latency=1`` a chain of forwarding processes sustains
exactly one word per cycle per hop, matching the static network's
bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple

from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import EV_LINK_DOWN, EV_LINK_UP


class Channel:
    """Bounded FIFO with propagation latency and blocking semantics.

    The kernel manipulates the private wait queues; user code only ever
    names channels inside ``Put``/``Get`` commands.  ``capacity`` counts
    words resident in the link stage (in flight plus ready).
    """

    __slots__ = (
        "name",
        "capacity",
        "latency",
        "_items",
        "_putters",
        "_getters",
        "_service_at",
        "_registered",
        "_fault_capacity",
    )

    def __init__(self, name: str = "", capacity: int = 1, latency: int = 0):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        if latency < 0:
            raise ValueError("channel latency must be >= 0")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        # Each item is (ready_time, value).
        self._items: Deque[Tuple[int, Any]] = deque()
        self._putters: Deque[Any] = deque()  # waiters blocked on Put
        self._getters: Deque[Any] = deque()  # waiters blocked on Get
        # Cycle of the earliest pending kernel "service" event for this
        # channel, or -1; lets the kernel skip scheduling duplicates.
        self._service_at: int = -1
        # True once the kernel has listed this channel in its registry of
        # channels that ever parked a waiter (used for deadlock reports).
        self._registered: bool = False
        # Saved capacity while a link-down fault holds this channel, or
        # None when the link is healthy (see fault_down / fault_restore).
        self._fault_capacity = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, cap={self.capacity}, lat={self.latency}, "
            f"items={len(self._items)}, putters={len(self._putters)}, "
            f"getters={len(self._getters)})"
        )

    # -- introspection used by tests and the deadlock reporter ----------
    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def peek_ready(self, now: int) -> bool:
        """True when a word is available to a getter at cycle ``now``."""
        return bool(self._items) and self._items[0][0] <= now

    # -- the fast-path word operations --------------------------------
    # One implementation shared by the kernel's blocking commands, the
    # burst state machines, and the Simulator's non-blocking helpers
    # (peek / try_get / try_put).
    def peek_value(self, now: int) -> Tuple[bool, Any]:
        """(True, head word) if one is ready at ``now``, without
        consuming it; (False, None) otherwise."""
        items = self._items
        if items and items[0][0] <= now:
            return True, items[0][1]
        return False, None

    def pop_ready(self, now: int) -> Tuple[bool, Any]:
        """Consume and return the head word if ready: (True, value);
        (False, None) when empty or still in flight."""
        items = self._items
        if items and items[0][0] <= now:
            return True, items.popleft()[1]
        return False, None

    def push(self, value: Any, now: int) -> bool:
        """Deposit ``value`` (visible ``latency`` cycles later) if a slot
        is free; False when the channel is full."""
        items = self._items
        if len(items) >= self.capacity:
            return False
        items.append((now + self.latency, value))
        return True

    def seed(self, value: Any, ready_at: int = 0) -> None:
        """Pre-load a word before the simulation starts (e.g. a mutex
        token); bypasses capacity checks and waiter bookkeeping."""
        self._items.append((ready_at, value))

    # -- fault-injection hooks (repro.faults) ---------------------------
    # Every kernel put path (blocking Put, burst state machines, inlined
    # arms in Simulator._step) admits a word only when
    # ``len(_items) < capacity``, and every get path hands out the head
    # only when ``_items[0][0] <= now``.  Dropping capacity to 0 and
    # pushing ready times past the outage therefore silences the link on
    # *all* paths -- including bursts -- with zero cost to fault-free runs.

    @property
    def fault_active(self) -> bool:
        return self._fault_capacity is not None

    def fault_down(self, until: int, now: int = -1) -> None:
        """Take the link down: no word enters or leaves before ``until``.

        Words already in the link stage are held (they re-arrive when the
        link comes back, modeling a stalled wire, not a lossy one);
        putters back-pressure against the zeroed capacity.  ``now`` is
        only used to cycle-stamp the telemetry event.
        """
        if self._fault_capacity is None:
            self._fault_capacity = self.capacity
        self.capacity = 0
        if self._items:
            self._items = deque(
                (max(ready, until), value) for ready, value in self._items
            )
        tel = _telemetry.RECORDER
        if tel is not None:
            tel.events.emit(now, EV_LINK_DOWN, self.name, until)
            tel.registry.count("channel.link_downs")

    def fault_restore(self, now: int = -1) -> bool:
        """Bring the link back up; True if it was actually down.

        The caller (the injector) must re-service the channel so parked
        putters/getters wake -- the channel itself has no kernel handle.
        """
        if self._fault_capacity is None:
            return False
        self.capacity = self._fault_capacity
        self._fault_capacity = None
        tel = _telemetry.RECORDER
        if tel is not None:
            tel.events.emit(now, EV_LINK_UP, self.name, None)
        return True

    def fault_corrupt_head(self, mutate) -> Tuple[bool, Any]:
        """Apply ``mutate`` to the head in-flight word, in place.

        Returns ``(True, new_value)`` when a word was present, else
        ``(False, None)`` -- a corruption event aimed at an idle link is
        a miss, which the resilience metrics count separately.
        """
        if not self._items:
            return False, None
        ready, value = self._items[0]
        new_value = mutate(value)
        self._items[0] = (ready, new_value)
        return True, new_value
