"""Flow-controlled channels: the model of a Raw static-network link.

A :class:`Channel` is a bounded FIFO register with an optional propagation
``latency``.  ``Put`` succeeds immediately when a slot is free and the word
becomes visible to ``Get`` ``latency`` cycles later; when the channel is
full the putter blocks (Raw's static network "stalls when data is not
available" and back-pressures when full -- thesis section 3.3).  With
``capacity=1`` and ``latency=1`` a chain of forwarding processes sustains
exactly one word per cycle per hop, matching the static network's
bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Tuple


class Channel:
    """Bounded FIFO with propagation latency and blocking semantics.

    The kernel manipulates the private wait queues; user code only ever
    names channels inside ``Put``/``Get`` commands.  ``capacity`` counts
    words resident in the link stage (in flight plus ready).
    """

    __slots__ = ("name", "capacity", "latency", "_items", "_putters", "_getters")

    def __init__(self, name: str = "", capacity: int = 1, latency: int = 0):
        if capacity < 1:
            raise ValueError("channel capacity must be >= 1")
        if latency < 0:
            raise ValueError("channel latency must be >= 0")
        self.name = name
        self.capacity = capacity
        self.latency = latency
        # Each item is (ready_time, value).
        self._items: Deque[Tuple[int, Any]] = deque()
        self._putters: Deque[Any] = deque()  # processes blocked on Put
        self._getters: Deque[Any] = deque()  # processes blocked on Get

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.name!r}, cap={self.capacity}, lat={self.latency}, "
            f"items={len(self._items)}, putters={len(self._putters)}, "
            f"getters={len(self._getters)})"
        )

    # -- introspection used by tests and the deadlock reporter ----------
    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def peek_ready(self, now: int) -> bool:
        """True when a word is available to a getter at cycle ``now``."""
        return bool(self._items) and self._items[0][0] <= now
