"""Whole-chip assembly: simulator + networks + tiles in one object.

:class:`RawChip` owns a kernel :class:`~repro.sim.Simulator`, the two
static networks, the dynamic network, a per-tile data cache, and the
registry of tile/switch programs.  The word-level router model
(:mod:`repro.router.wordlevel`) and the examples build on it; unit tests
drive it directly with small hand-written programs.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.config import CostModel
from repro.raw.layout import NUM_TILES
from repro.raw.memory import DataCache
from repro.raw.network import DynamicNetwork, StaticNetwork
from repro.raw.switchproc import SwitchProcessor
from repro.sim.kernel import Process, Simulator
from repro.sim.trace import Trace


class RawChip:
    """A simulated Raw chip.

    Parameters
    ----------
    trace:
        Optional trace sink for per-tile utilization; pass a
        :class:`~repro.sim.Trace` windowed to the cycles of interest to
        reproduce thesis Fig 7-3.
    num_static_networks:
        The prototype has two; the router uses only network 1 (section
        5.3 shows one suffices), but the ablation experiments instantiate
        both.
    """

    def __init__(
        self,
        trace: Optional[Trace] = None,
        num_static_networks: int = 2,
        costs: CostModel = CostModel.default(),
    ):
        if not 1 <= num_static_networks <= 2:
            raise ValueError("Raw has one or two static networks")
        self.costs = costs
        self.sim = Simulator(trace=trace)
        self.trace = trace
        self.static = [
            StaticNetwork(self.sim, index=i + 1, costs=costs)
            for i in range(num_static_networks)
        ]
        self.dynamic = DynamicNetwork(self.sim, costs=costs)
        self.caches: List[DataCache] = [
            DataCache.for_model(costs) for _ in range(NUM_TILES)
        ]
        self.switches: List[SwitchProcessor] = [
            SwitchProcessor(t) for t in range(NUM_TILES)
        ]
        self._programs: Dict[str, Process] = {}

    # ------------------------------------------------------------------
    @property
    def network(self) -> StaticNetwork:
        """Static network 1, the one the Rotating Crossbar runs on."""
        return self.static[0]

    def add_tile_program(self, tile: int, gen: Generator, role: str = "tile") -> Process:
        """Register a tile-processor program; traced as ``t{tile}``."""
        if not 0 <= tile < NUM_TILES:
            raise ValueError(f"tile id {tile} out of range")
        name = f"{role}@t{tile}"
        proc = self.sim.add_process(gen, name=name, trace_key=f"t{tile}")
        self._programs[name] = proc
        return proc

    def add_switch_program(self, tile: int, gen: Generator) -> Process:
        """Register a switch-processor program (traced separately)."""
        if not 0 <= tile < NUM_TILES:
            raise ValueError(f"tile id {tile} out of range")
        name = f"switch@t{tile}"
        proc = self.sim.add_process(gen, name=name, trace_key=f"sw{tile}")
        self._programs[name] = proc
        return proc

    def add_io_program(self, gen: Generator, name: str) -> Process:
        """Register an off-chip process (line card, traffic source/sink)."""
        proc = self.sim.add_process(gen, name=name)
        self._programs[name] = proc
        return proc

    def run(self, until: Optional[int] = None, raise_on_deadlock: bool = False) -> int:
        """Advance the simulation; returns the final cycle count."""
        return self.sim.run(until=until, raise_on_deadlock=raise_on_deadlock)

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.sim.now

    def seconds(self) -> float:
        return self.sim.now / self.costs.clock_hz
