"""Flit-level model of Raw's dynamic network (thesis section 3.3).

The dynamic networks are "wormhole routed, two-stage pipelined,
dimension-ordered" with header words and messages up to 32 words.  The
rest of the repository only needs their *latency* (cache misses, control
messages -- :class:`repro.raw.network.DynamicNetwork`), but the
substrate would be incomplete without the mechanism itself, so this
module implements it: per-tile wormhole routers moving header+body flits
over the same flow-controlled channels the static model uses, X-then-Y
dimension ordering, and per-output arbitration that holds a route for a
whole worm (no flit interleaving).

The tests pin the two models to each other: the flit-level latency of an
uncontended message lands within the 15-30 cycle envelope the thesis
quotes and tracks the closed-form estimator hop for hop, and wormhole
integrity + deadlock freedom hold under random concurrent traffic
(dimension-ordered routing's classic guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.config import CostModel
from repro.raw.layout import Direction, NUM_TILES, neighbor, tile_xy
from repro.sim.channel import Channel
from repro.sim.kernel import BUSY, Get, Put, Simulator, Timeout

#: Router pipeline depth per hop (the thesis's "two-stage pipelined").
ROUTE_CYCLES_PER_HOP = 2
#: Processor-side launch sequence (header construction, network register
#: setup); sized so the uncontended nearest-neighbor latency lands on the
#: thesis's 15-cycle minimum.
INJECT_OVERHEAD_CYCLES = 7

_SIDES = (Direction.NORTH, Direction.SOUTH, Direction.EAST, Direction.WEST)


@dataclass(frozen=True)
class Header:
    """The head flit: where the worm goes and how long it is."""

    dst: int
    length: int  #: body words (excluding the header)
    tag: int = 0

    def __post_init__(self):
        if not 0 <= self.dst < NUM_TILES:
            raise ValueError(f"destination tile {self.dst} out of range")
        if not 0 <= self.length < CostModel.default().dynamic_max_message_words:
            raise ValueError("message exceeds the 32-word dynamic-network limit")


def _route_direction(here: int, dst: int) -> Optional[Direction]:
    """Dimension-ordered next hop: X first, then Y; None on arrival."""
    hx, hy = tile_xy(here)
    dx, dy = tile_xy(dst)
    if hx < dx:
        return Direction.EAST
    if hx > dx:
        return Direction.WEST
    if hy < dy:
        return Direction.SOUTH
    if hy > dy:
        return Direction.NORTH
    return None


class WormholeNetwork:
    """One dynamic network: per-tile routers over flit channels."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dyn",
        costs: CostModel = CostModel.default(),
    ):
        self.sim = sim
        self.name = name
        self.costs = costs
        # Directed tile-to-tile flit links.
        self._links: Dict[Tuple[int, int], Channel] = {}
        # Processor-side inject queues and eject mailboxes.
        self._inject: Dict[int, Channel] = {}
        self._eject: Dict[int, Channel] = {}
        # One single-token mutex per *output* link: a worm holds its
        # output for its full length (wormhole, no interleaving).  The
        # eject mailbox is an output too -- worms arriving on different
        # inputs must deliver atomically.
        self._out_mutex: Dict[Tuple[int, Direction], Channel] = {}
        self._eject_mutex: Dict[int, Channel] = {}
        self._inject_mutex: Dict[int, Channel] = {}
        self.delivered: List[Tuple[int, Header, Tuple]] = []
        for tile in range(NUM_TILES):
            self._inject[tile] = sim.channel(f"{name}.inj{tile}", capacity=4)
            self._eject[tile] = sim.channel(f"{name}.ej{tile}", capacity=64)
            ej_mutex = sim.channel(f"{name}.ejmx{tile}", capacity=1)
            ej_mutex.seed(1)
            self._eject_mutex[tile] = ej_mutex
            inj_mutex = sim.channel(f"{name}.injmx{tile}", capacity=1)
            inj_mutex.seed(1)
            self._inject_mutex[tile] = inj_mutex
            for side in _SIDES:
                other = neighbor(tile, side)
                if other is not None:
                    self._links[(tile, other)] = sim.channel(
                        f"{name}.t{tile}->t{other}",
                        capacity=costs.static_fifo_depth,
                        latency=1,
                    )
            for side in _SIDES:
                if neighbor(tile, side) is not None:
                    mutex = sim.channel(f"{name}.mx{tile}.{side.value}", capacity=1)
                    mutex.seed(1)  # token available at t=0
                    self._out_mutex[(tile, side)] = mutex
        # Forwarding processes: one per (tile, incoming side) + inject.
        for tile in range(NUM_TILES):
            sim.add_process(
                self._forwarder(tile, self._inject[tile]), name=f"{name}.fw{tile}.inj"
            )
            for side in _SIDES:
                other = neighbor(tile, side)
                if other is not None:
                    sim.add_process(
                        self._forwarder(tile, self._links[(other, tile)]),
                        name=f"{name}.fw{tile}.{side.value}",
                    )

    # ------------------------------------------------------------------
    def _forwarder(self, tile: int, incoming: Channel) -> Generator:
        """Move worms arriving on one input toward their destination."""
        while True:
            header = yield Get(incoming)
            assert isinstance(header, Header), f"expected header flit, got {header!r}"
            direction = _route_direction(tile, header.dst)
            yield Timeout(ROUTE_CYCLES_PER_HOP, BUSY)  # two-stage router
            if direction is None:
                # Eject: deliver header then body to the local mailbox,
                # atomically with respect to other arriving worms.
                yield Get(self._eject_mutex[tile])
                yield Put(self._eject[tile], header)
                for _ in range(header.length):
                    flit = yield Get(incoming)
                    yield Put(self._eject[tile], flit)
                    yield Timeout(1, BUSY)  # one flit per cycle
                yield Put(self._eject_mutex[tile], 1)
                continue
            mutex = self._out_mutex[(tile, direction)]
            out = self._links[(tile, neighbor(tile, direction))]
            yield Get(mutex)  # hold the output for the whole worm
            yield Put(out, header)
            for _ in range(header.length):
                flit = yield Get(incoming)
                yield Put(out, flit)
                yield Timeout(1, BUSY)  # one flit per cycle per link
            yield Put(mutex, 1)

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, words: Tuple, tag: int = 0) -> Generator:
        """Inject a message from tile ``src`` (yield-from inside a program)."""
        header = Header(dst=dst, length=len(words), tag=tag)
        yield Timeout(INJECT_OVERHEAD_CYCLES, BUSY)
        # Concurrent senders on one tile serialize at the network
        # register (a tile processor is single-issue anyway).
        yield Get(self._inject_mutex[src])
        yield Put(self._inject[src], header)
        for w in words:
            yield Put(self._inject[src], w)
            yield Timeout(1, BUSY)
        yield Put(self._inject_mutex[src], 1)

    def receive(self, tile: int) -> Generator:
        """Take one complete message from a tile's mailbox; returns
        (header, words) via StopIteration value."""
        header = yield Get(self._eject[tile])
        words = []
        for _ in range(header.length):
            words.append((yield Get(self._eject[tile])))
        return header, tuple(words)

    def mailbox(self, tile: int) -> Channel:
        return self._eject[tile]
