"""Tile-processor programming model.

A tile program is a Python generator that yields kernel commands; the
:class:`TileProgram` base class provides the Raw-flavored vocabulary --
``compute`` (issue n single-cycle instructions), ``mem_stall`` (block on
the memory system), ``send``/``recv`` on register-mapped network ports --
plus a per-tile :class:`~repro.raw.memory.DataCache` whose stall cycles
feed back into the timing.  This is the same programming contract the
thesis's hand-written assembly obeys: every instruction costs a cycle,
network ports block, and cache misses stall the pipe.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.config import CostModel
from repro.raw.memory import DataCache
from repro.sim.channel import Channel
from repro.sim.kernel import BUSY, Get, MEM_BLOCK, Put, Timeout


class TileProgram:
    """Base class for programs running on one tile processor.

    Subclasses implement :meth:`run` as a generator.  The chip assembly
    (:class:`repro.raw.chip.RawChip`) registers ``run()`` with the kernel
    under the tile's trace key, so the time this program spends computing
    versus blocked lands in the utilization trace (thesis Fig 7-3).
    """

    def __init__(
        self,
        tile: int,
        name: Optional[str] = None,
        cache: Optional[DataCache] = None,
        costs: CostModel = CostModel.default(),
    ):
        self.tile = tile
        self.name = name or f"{type(self).__name__}@t{tile}"
        self.costs = costs
        self.cache = cache if cache is not None else DataCache.for_model(costs)

    # -- command vocabulary (return kernel command objects) --------------
    @staticmethod
    def compute(cycles: int) -> Timeout:
        """Issue ``cycles`` worth of straight-line instructions."""
        return Timeout(cycles, BUSY)

    @staticmethod
    def mem_stall(cycles: int) -> Timeout:
        """Stall on the memory system (cache miss service)."""
        return Timeout(cycles, MEM_BLOCK)

    @staticmethod
    def send(channel: Channel, value: Any) -> Put:
        """Write a word to a register-mapped network port."""
        return Put(channel, value)

    @staticmethod
    def recv(channel: Channel) -> Get:
        """Read a word from a register-mapped network port."""
        return Get(channel)

    # -- compound costed operations (generators to ``yield from``) -------
    def load_words(self, addr: int, nwords: int) -> Generator:
        """Stream ``nwords`` from local memory: 1 cycle/word + miss stalls."""
        stall = self.cache.touch_range(addr, nwords * self.costs.word_bytes)
        yield self.compute(nwords * self.costs.mem_to_net_cycles_per_word)
        if stall:
            yield self.mem_stall(stall)

    def store_words(self, addr: int, nwords: int) -> Generator:
        """Buffer ``nwords`` into local memory: 2 cycles/word + miss stalls."""
        stall = self.cache.touch_range(addr, nwords * self.costs.word_bytes)
        yield self.compute(nwords * self.costs.net_to_mem_cycles_per_word)
        if stall:
            yield self.mem_stall(stall)

    # -- to be provided by subclasses ------------------------------------
    def run(self) -> Generator:
        raise NotImplementedError
