"""Model of the Raw tiled processor (thesis chapter 3).

The Raw prototype is a 4x4 grid of tiles at 250 MHz; each tile couples a
MIPS-like tile processor with a programmable static-switch processor, two
static networks and two dynamic networks.  This package models the parts
of the chip the router design depends on:

* :mod:`repro.raw.costs` -- the published cycle-cost model (send-to-use
  latency, link bandwidth, cache timing, branch costs) plus the router's
  calibrated per-quantum control overhead.
* :mod:`repro.raw.layout` -- grid geometry and the port-to-tile mapping of
  thesis Figs 4-1 / 7-2.
* :mod:`repro.raw.memory` -- the per-tile 2-way set-associative data cache.
* :mod:`repro.raw.network` -- static-network links as flow-controlled
  channels and a latency model of the dynamic (wormhole) network.
* :mod:`repro.raw.tile` / :mod:`repro.raw.switchproc` -- the programming
  model: tile programs and switch route schedules as kernel processes.
* :mod:`repro.raw.chip` -- assembles a whole chip simulation.
"""

from repro.raw import costs
from repro.raw.layout import (
    GRID_WIDTH,
    GRID_HEIGHT,
    NUM_TILES,
    Direction,
    PortLayout,
    ROUTER_LAYOUT,
    tile_xy,
    tile_id,
    neighbor,
    manhattan,
    CROSSBAR_RING,
    INGRESS_TILES,
    EGRESS_TILES,
    LOOKUP_TILES,
)
from repro.raw.memory import DataCache, CacheStats
from repro.raw.network import StaticNetwork, DynamicNetwork
from repro.raw.dynrouter import WormholeNetwork
from repro.raw.tile import TileProgram
from repro.raw.switchproc import SwitchProcessor, RouteInstruction
from repro.raw.chip import RawChip

__all__ = [
    "costs",
    "GRID_WIDTH",
    "GRID_HEIGHT",
    "NUM_TILES",
    "Direction",
    "PortLayout",
    "ROUTER_LAYOUT",
    "tile_xy",
    "tile_id",
    "neighbor",
    "manhattan",
    "CROSSBAR_RING",
    "INGRESS_TILES",
    "EGRESS_TILES",
    "LOOKUP_TILES",
    "DataCache",
    "CacheStats",
    "StaticNetwork",
    "DynamicNetwork",
    "WormholeNetwork",
    "TileProgram",
    "SwitchProcessor",
    "RouteInstruction",
    "RawChip",
]
