"""Per-tile data-cache model (thesis section 3.2).

Each tile has an 8,192-word (32 KB), 2-way set-associative, 3-cycle-latency
data cache with 32-byte lines and a write buffer; there is no coherence.
The model is functional-timing only: it tracks tags and LRU state and
returns a cycle cost per access, which tile programs turn into
``Timeout(cost, MEM_BLOCK)`` commands.  Payload words themselves live in
plain Python lists -- the cache model prices the accesses, it does not
store data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import CostModel

_DEFAULT = CostModel.default()


@dataclass
class CacheStats:
    """Hit/miss counters, exported by the router's per-tile statistics."""

    hits: int = 0
    misses: int = 0
    miss_cycles: int = _DEFAULT.cache_miss_cycles

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def stall_cycles(self) -> int:
        return self.misses * self.miss_cycles


class DataCache:
    """2-way set-associative cache with true-LRU replacement.

    Parameters mirror the Raw tile cache; they are overridable so the
    route-lookup experiments can sweep cache geometry.

    ``access(addr)`` returns the *extra* stall cycles of the access beyond
    the pipelined hit path: 0 for a hit (the 3-cycle hit latency is hidden
    by the 8-stage pipeline for independent accesses), and
    ``CACHE_MISS_CYCLES`` for a miss.  ``access_latency(addr)`` returns
    the full latency (hit latency or miss service time) for dependent
    accesses such as trie walks.
    """

    def __init__(
        self,
        size_words: int = _DEFAULT.dmem_words,
        line_bytes: int = _DEFAULT.cache_line_bytes,
        ways: int = _DEFAULT.cache_ways,
        hit_cycles: int = _DEFAULT.cache_hit_cycles,
        miss_cycles: int = _DEFAULT.cache_miss_cycles,
        word_bytes: int = _DEFAULT.word_bytes,
    ):
        if size_words <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        line_words = line_bytes // word_bytes
        num_lines = size_words // line_words
        if num_lines % ways != 0:
            raise ValueError("cache size not divisible into ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = num_lines // ways
        self.hit_cycles = hit_cycles
        self.miss_cycles = miss_cycles
        self.stats = CacheStats(miss_cycles=miss_cycles)
        # Per-set list of resident tags in LRU order (front = LRU).
        self._sets: Dict[int, List[int]] = {}

    @classmethod
    def for_model(cls, costs: CostModel) -> "DataCache":
        """A tile data cache with the geometry/latencies of ``costs``."""
        return cls(
            size_words=costs.dmem_words,
            line_bytes=costs.cache_line_bytes,
            ways=costs.cache_ways,
            hit_cycles=costs.cache_hit_cycles,
            miss_cycles=costs.cache_miss_cycles,
            word_bytes=costs.word_bytes,
        )

    def _locate(self, addr: int) -> tuple:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def probe(self, addr: int) -> bool:
        """True if ``addr`` is resident (no state change)."""
        index, tag = self._locate(addr)
        return tag in self._sets.get(index, ())

    def access(self, addr: int) -> int:
        """Touch ``addr``; return extra stall cycles (0 on hit)."""
        index, tag = self._locate(addr)
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)  # most-recently used at the back
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append(tag)
        return self.miss_cycles

    def access_latency(self, addr: int) -> int:
        """Full load-to-use latency of a dependent access."""
        stall = self.access(addr)
        return self.hit_cycles if stall == 0 else stall

    def touch_range(self, addr: int, nbytes: int) -> int:
        """Stream ``nbytes`` starting at ``addr``; return total stall cycles."""
        if nbytes <= 0:
            return 0
        total = 0
        first = addr // self.line_bytes
        last = (addr + nbytes - 1) // self.line_bytes
        for line in range(first, last + 1):
            total += self.access(line * self.line_bytes)
        return total

    def flush(self) -> None:
        self._sets.clear()
