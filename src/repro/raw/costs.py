"""The Raw cycle-cost model (thesis chapter 3) and router calibration.

Every constant cites where it comes from in the thesis; the single
*calibrated* value is :data:`QUANTUM_CTL_OVERHEAD`, the non-overlapped
control cost of one Rotating Crossbar routing quantum, fitted once against
the published Fig 7-1 throughputs (see DESIGN.md section 5 for the fit and
residuals).  All other numbers are taken directly from the text.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Chip-level parameters (section 3.4).
# ---------------------------------------------------------------------------
CLOCK_HZ: float = 250e6  #: Raw prototype target frequency, 250 MHz.
WORD_BITS: int = 32  #: static networks move one 32-bit word per cycle.
WORD_BYTES: int = WORD_BITS // 8
NUM_TILES: int = 16  #: 4x4 grid (section 3.1).

# ---------------------------------------------------------------------------
# Static network (section 3.3).
# ---------------------------------------------------------------------------
#: Cycles for one word to cross one switch-to-switch hop.
STATIC_HOP_CYCLES: int = 1
#: Depth of the input FIFO behind each static-network port.  The Raw
#: switch buffers a few words per port; without this slack, symmetric
#: ring communication (everyone injecting, then everyone forwarding)
#: would deadlock on the capacity-1 wires.
STATIC_FIFO_DEPTH: int = 4
#: ALU-to-ALU send-to-use latency for nearest neighbors (Fig 3-2 walkthrough):
#: five cycles total of which two perform computation => 3-cycle latency.
SEND_TO_USE_CYCLES: int = 3

# ---------------------------------------------------------------------------
# Dynamic network (section 3.3): wormhole, dimension-ordered, 2-stage pipe.
# ---------------------------------------------------------------------------
DYNAMIC_BASE_CYCLES: int = 15  #: nearest-neighbor ALU-to-ALU minimum.
DYNAMIC_PER_HOP_CYCLES: int = 2  #: two-stage pipelined router per hop.
DYNAMIC_MAX_MESSAGE_WORDS: int = 32  #: including the header word.

# ---------------------------------------------------------------------------
# Tile processor (section 3.2) and buffer management costs (section 4.4).
# ---------------------------------------------------------------------------
#: Moving a word network->memory costs two instructions (receive + store):
#: "buffering data on a tile's local memory requires two processor cycles
#: per word" (section 4.4).
NET_TO_MEM_CYCLES_PER_WORD: int = 2
#: memory->network is a single register-mapped load-and-send
#: (``lw $csto, 0(rs)``), one cycle per word.
MEM_TO_NET_CYCLES_PER_WORD: int = 1
#: network->network cut-through (``or $csto, $0, $csti``), one cycle per word.
CUT_THROUGH_CYCLES_PER_WORD: int = 1

PREDICTED_BRANCH_CYCLES: int = 1  #: no penalty, but the branch itself issues.
MISPREDICTED_BRANCH_CYCLES: int = 3  #: three-cycle misprediction penalty.

# ---------------------------------------------------------------------------
# Memory system (section 3.2).
# ---------------------------------------------------------------------------
DMEM_WORDS: int = 8192  #: per-tile data cache, 32-bit words.
IMEM_WORDS: int = 8192  #: per-tile local instruction memory, 32-bit words.
SWITCH_MEM_WORDS: int = 8192  #: per-tile switch memory, 64-bit words.
CACHE_LINE_BYTES: int = 32
CACHE_WAYS: int = 2
CACHE_HIT_CYCLES: int = 3  #: 3-cycle latency data cache.
#: Miss service: request + reply over the memory dynamic network plus DRAM;
#: mid-chip round trip ~2 x (15 + 2*3) + DRAM ~= 54 cycles.
CACHE_MISS_CYCLES: int = 54

# ---------------------------------------------------------------------------
# Router phase costs (chapters 5/6).  The per-quantum control sequence of
# Fig 6-2 is: headers-request, headers send/recv, exchange around the ring,
# choose_new_config (jump-table lookup on the tile processor), then the
# confirmation handshake with the switch processor.  Header processing of
# the *next* packet overlaps body streaming of the current one (section
# 6.5); QUANTUM_CTL_OVERHEAD is the part that does not overlap.
# ---------------------------------------------------------------------------
HEADER_WORDS: int = 2  #: local header exchanged between crossbar tiles
#: (output port + quantum length).

#: Non-overlapped control cycles per routing quantum.  CALIBRATED: with
#: cycles/quantum = words + expansion + C, the published Fig 7-1 peak
#: throughputs imply C in [38, 54] across packet sizes; C = 48 reproduces
#: 26.7 vs 26.9 Gbps at 1,024 B and 7.6 vs 7.3 Gbps at 64 B.
QUANTUM_CTL_OVERHEAD: int = 48

#: Largest tile-to-tile transfer block: packets longer than this are
#: fragmented by the Ingress Processor (section 4.2) and reassembled by
#: the Egress Processor.  256 words = 1,024 bytes, so every packet size in
#: Fig 7-1 moves in a single quantum.
MAX_QUANTUM_WORDS: int = 256

#: Per-packet IP header work on the Ingress Processor (checksum verify and
#: incremental update, TTL decrement, fragmentation decision) -- about 20
#: unrolled integer instructions; overlapped with payload streaming.
INGRESS_HEADER_CYCLES: int = 20

#: Route lookup budget on the Lookup Processor; overlapped with payload
#: buffering (section 4.3), so it only binds for tiny packets.
LOOKUP_CYCLES: int = 30


# ---------------------------------------------------------------------------
# Helpers shared by the experiment harness.
# ---------------------------------------------------------------------------
def bytes_to_words(nbytes: int) -> int:
    """Number of 32-bit network words needed to carry ``nbytes``."""
    return (nbytes + WORD_BYTES - 1) // WORD_BYTES


def gbps(bits: float, cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Throughput in Gbit/s for ``bits`` moved in ``cycles`` at ``clock_hz``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return bits * clock_hz / cycles / 1e9


def mpps(packets: float, cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Packet rate in Mpkt/s for ``packets`` forwarded in ``cycles``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return packets * clock_hz / cycles / 1e6
