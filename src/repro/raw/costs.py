"""Compatibility shim over :class:`repro.config.CostModel`.

The Raw cycle-cost model (thesis chapter 3) now lives in
:class:`repro.config.CostModel`, a frozen dataclass that engines take as
an explicit parameter; this module re-exports the *default* model's
fields under their historical constant names so existing call sites and
notebooks keep working.  New code should accept a ``CostModel`` instead
of importing these constants -- the constants cannot be swept or varied
per-instance.

Every value cites where it comes from in the thesis; the single
*calibrated* one is :data:`QUANTUM_CTL_OVERHEAD`, the non-overlapped
control cost of one Rotating Crossbar routing quantum, fitted once
against the published Fig 7-1 throughputs (see DESIGN.md section 5 for
the fit and residuals).
"""

from __future__ import annotations

from repro.config import CostModel

_DEFAULT = CostModel.default()

# Chip-level parameters (section 3.4).
CLOCK_HZ: float = _DEFAULT.clock_hz
WORD_BITS: int = _DEFAULT.word_bits
WORD_BYTES: int = _DEFAULT.word_bytes
NUM_TILES: int = _DEFAULT.num_tiles

# Static network (section 3.3).
STATIC_HOP_CYCLES: int = _DEFAULT.static_hop_cycles
STATIC_FIFO_DEPTH: int = _DEFAULT.static_fifo_depth
SEND_TO_USE_CYCLES: int = _DEFAULT.send_to_use_cycles

# Dynamic network (section 3.3).
DYNAMIC_BASE_CYCLES: int = _DEFAULT.dynamic_base_cycles
DYNAMIC_PER_HOP_CYCLES: int = _DEFAULT.dynamic_per_hop_cycles
DYNAMIC_MAX_MESSAGE_WORDS: int = _DEFAULT.dynamic_max_message_words

# Tile processor (section 3.2) and buffer management costs (section 4.4).
NET_TO_MEM_CYCLES_PER_WORD: int = _DEFAULT.net_to_mem_cycles_per_word
MEM_TO_NET_CYCLES_PER_WORD: int = _DEFAULT.mem_to_net_cycles_per_word
CUT_THROUGH_CYCLES_PER_WORD: int = _DEFAULT.cut_through_cycles_per_word
PREDICTED_BRANCH_CYCLES: int = _DEFAULT.predicted_branch_cycles
MISPREDICTED_BRANCH_CYCLES: int = _DEFAULT.mispredicted_branch_cycles

# Memory system (section 3.2).
DMEM_WORDS: int = _DEFAULT.dmem_words
IMEM_WORDS: int = _DEFAULT.imem_words
SWITCH_MEM_WORDS: int = _DEFAULT.switch_mem_words
CACHE_LINE_BYTES: int = _DEFAULT.cache_line_bytes
CACHE_WAYS: int = _DEFAULT.cache_ways
CACHE_HIT_CYCLES: int = _DEFAULT.cache_hit_cycles
CACHE_MISS_CYCLES: int = _DEFAULT.cache_miss_cycles

# Router phase costs (chapters 5/6).
HEADER_WORDS: int = _DEFAULT.header_words
QUANTUM_CTL_OVERHEAD: int = _DEFAULT.quantum_ctl_overhead
MAX_QUANTUM_WORDS: int = _DEFAULT.max_quantum_words
INGRESS_HEADER_CYCLES: int = _DEFAULT.ingress_header_cycles
LOOKUP_CYCLES: int = _DEFAULT.lookup_cycles


# ---------------------------------------------------------------------------
# Helpers shared by the experiment harness (delegate to the default model).
# ---------------------------------------------------------------------------
def bytes_to_words(nbytes: int) -> int:
    """Number of 32-bit network words needed to carry ``nbytes``."""
    return _DEFAULT.bytes_to_words(nbytes)


def gbps(bits: float, cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Throughput in Gbit/s for ``bits`` moved in ``cycles`` at ``clock_hz``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return bits * clock_hz / cycles / 1e9


def mpps(packets: float, cycles: float, clock_hz: float = CLOCK_HZ) -> float:
    """Packet rate in Mpkt/s for ``packets`` forwarded in ``cycles``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return packets * clock_hz / cycles / 1e6
