"""On-chip networks: static links as channels, dynamic net as a latency model.

Static networks (section 3.3): flow-controlled, one 32-bit word per cycle
per hop, no headers, routes fixed by the switch-processor instruction
stream.  Each point-to-point link is a :class:`repro.sim.Channel` with
``capacity=1, latency=1``, which reproduces exactly that behaviour under
the kernel (see tests/test_sim_kernel.py::test_chain_throughput).

Dynamic networks: wormhole-routed, dimension-ordered, two-stage pipelined
routers, messages up to 32 words, nearest-neighbor ALU-to-ALU latency
15-30 cycles.  The router proper never touches them (the Rotating
Crossbar runs entirely on static network 1); they back the cache-miss
path and the non-blocking route-lookup extension (section 8.2), so a
latency model plus a mailbox delivery mechanism suffices.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import CostModel
from repro.raw.layout import Direction, NUM_TILES, manhattan, neighbor, tile_xy
from repro.sim.channel import Channel
from repro.sim.kernel import Put, Simulator, Timeout


class StaticNetwork:
    """One of Raw's two static networks, materialized as link channels.

    Links exist between every pair of adjacent tiles (both directions
    independently -- the network is full duplex) and at the chip edge,
    where the 16 periphery connections become the chip's I/O pins
    (section 3.4: the internal networks are multiplexed off-chip).
    """

    def __init__(
        self,
        sim: Simulator,
        index: int = 1,
        costs: CostModel = CostModel.default(),
    ):
        self.sim = sim
        self.index = index
        self.costs = costs
        self._links: Dict[Tuple[int, int], Channel] = {}
        self._edges: Dict[Tuple[int, Direction], Channel] = {}
        for tile in range(NUM_TILES):
            for direction in (
                Direction.NORTH,
                Direction.SOUTH,
                Direction.EAST,
                Direction.WEST,
            ):
                other = neighbor(tile, direction)
                if other is None:
                    self._edges[(tile, direction)] = sim.channel(
                        f"sn{index}.edge.t{tile}.{direction.value}",
                        capacity=costs.static_fifo_depth,
                        latency=costs.static_hop_cycles,
                    )
                elif (tile, other) not in self._links:
                    self._links[(tile, other)] = sim.channel(
                        f"sn{index}.t{tile}->t{other}",
                        capacity=costs.static_fifo_depth,
                        latency=costs.static_hop_cycles,
                    )
                    self._links[(other, tile)] = sim.channel(
                        f"sn{index}.t{other}->t{tile}",
                        capacity=costs.static_fifo_depth,
                        latency=costs.static_hop_cycles,
                    )

    def link(self, src: int, dst: int) -> Channel:
        """The directed link channel from tile ``src`` to adjacent ``dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ValueError(f"tiles {src} and {dst} are not adjacent") from None

    def edge(self, tile: int, direction: Direction) -> Channel:
        """The off-chip I/O channel of an edge tile in ``direction``.

        The same channel serves as input or output depending on which side
        (line card process or switch process) puts and which gets.
        """
        try:
            return self._edges[(tile, direction)]
        except KeyError:
            raise ValueError(
                f"tile {tile} has no chip edge to the {direction.value}"
            ) from None

    def edge_directions(self, tile: int):
        """Directions in which ``tile`` touches the chip edge."""
        return [d for (t, d) in self._edges if t == tile]

    def find(self, name: str) -> Optional[Channel]:
        """The link or edge channel with kernel name ``name``, or None.

        Fault plans name word-level targets this way
        (``"link:sn1.t5->t6"``); a linear scan is fine because it runs
        once per fault event at plan-install time, never per cycle.
        """
        for ch in self._links.values():
            if ch.name == name:
                return ch
        for ch in self._edges.values():
            if ch.name == name:
                return ch
        return None

    def channels(self) -> Dict[str, Channel]:
        """Every link/edge channel keyed by its kernel name."""
        out = {ch.name: ch for ch in self._links.values()}
        out.update({ch.name: ch for ch in self._edges.values()})
        return out


class DynamicNetwork:
    """Latency model + mailbox delivery for Raw's dynamic networks."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        mailbox_capacity: int = 64,
        costs: CostModel = CostModel.default(),
    ):
        self.sim = sim
        self.costs = costs
        self._mailboxes: Dict[int, Channel] = {}
        if sim is not None:
            for tile in range(NUM_TILES):
                self._mailboxes[tile] = sim.channel(
                    f"dn.mbox.t{tile}", capacity=mailbox_capacity
                )

    @staticmethod
    def latency(
        src: int,
        dst: int,
        words: int = 1,
        costs: CostModel = CostModel.default(),
    ) -> int:
        """End-to-end cycles for a ``words``-long message ``src -> dst``.

        Nearest neighbor single-word = 15 cycles; each extra hop adds the
        two-stage router delay; each extra word streams behind the head
        flit at one word per cycle.  Matches the thesis's quoted 15-30
        cycle nearest-neighbor ALU-to-ALU range for 1..16-word payloads.
        """
        if words < 1 or words > costs.dynamic_max_message_words:
            raise ValueError(
                f"dynamic message must be 1..{costs.dynamic_max_message_words} words"
            )
        hops = max(manhattan(src, dst), 1)
        return (
            costs.dynamic_base_cycles
            + (hops - 1) * costs.dynamic_per_hop_cycles
            + (words - 1)
        )

    def mailbox(self, tile: int) -> Channel:
        if self.sim is None:
            raise RuntimeError("DynamicNetwork built without a simulator")
        return self._mailboxes[tile]

    def send(self, src: int, dst: int, message, words: int = 1):
        """Process fragment delivering ``message`` after the modeled latency.

        Usage inside a tile program::

            yield from dnet.send(my_tile, other_tile, payload, words=3)
        """
        yield Timeout(self.latency(src, dst, words, costs=self.costs))
        yield Put(self.mailbox(dst), message)


def route_hops(src: int, dst: int):
    """Dimension-ordered (X then Y) hop sequence used by the dynamic net."""
    sx, sy = tile_xy(src)
    dx, dy = tile_xy(dst)
    hops = []
    x, y = sx, sy
    while x != dx:
        x += 1 if dx > x else -1
        hops.append((x, y))
    while y != dy:
        y += 1 if dy > y else -1
        hops.append((x, y))
    return hops
