"""Grid geometry and the router's port-to-tile mapping.

Tiles are numbered row-major on the 4x4 grid (thesis Fig 7-2)::

     0  1  2  3
     4  5  6  7
     8  9 10 11
    12 13 14 15

Each router port occupies a column of four functional tiles (Fig 4-1):
an Ingress Processor on a chip edge, a Lookup Processor next to its
off-chip routing-table memory, a Crossbar Processor in the center, and an
Egress Processor on an edge.  Fig 7-3's caption pins the ingress tiles to
4, 7, 8 and 11, which places the Rotating Crossbar on the four center
tiles 5, 6, 10, 9 -- a unit ring where consecutive ring positions are
grid neighbors, so every clockwise/counterclockwise transfer is a
single-hop static-network route.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

GRID_WIDTH = 4
GRID_HEIGHT = 4
NUM_TILES = GRID_WIDTH * GRID_HEIGHT
NUM_PORTS = 4


class Direction(Enum):
    """Static-switch crossbar directions (section 3.3)."""

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"
    PROC = "P"  #: into/out of the tile processor.

    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.PROC: Direction.PROC,
}

_DELTA = {
    Direction.NORTH: (0, -1),
    Direction.SOUTH: (0, 1),
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
}


def tile_xy(tile: int) -> Tuple[int, int]:
    """Grid coordinates ``(x, y)`` of a tile id (x = column, y = row)."""
    if not 0 <= tile < NUM_TILES:
        raise ValueError(f"tile id {tile} out of range")
    return tile % GRID_WIDTH, tile // GRID_WIDTH


def tile_id(x: int, y: int) -> int:
    """Tile id at grid coordinates, or raise if off-chip."""
    if not (0 <= x < GRID_WIDTH and 0 <= y < GRID_HEIGHT):
        raise ValueError(f"coordinates ({x}, {y}) are off-chip")
    return y * GRID_WIDTH + x


def neighbor(tile: int, direction: Direction) -> Optional[int]:
    """Neighboring tile id in ``direction``, or None at the chip edge."""
    x, y = tile_xy(tile)
    dx, dy = _DELTA[direction]
    nx, ny = x + dx, y + dy
    if 0 <= nx < GRID_WIDTH and 0 <= ny < GRID_HEIGHT:
        return tile_id(nx, ny)
    return None


def manhattan(a: int, b: int) -> int:
    """Hop distance between two tiles on the mesh."""
    ax, ay = tile_xy(a)
    bx, by = tile_xy(b)
    return abs(ax - bx) + abs(ay - by)


@dataclass(frozen=True)
class PortLayout:
    """The four tiles implementing one router port (Fig 4-1)."""

    port: int
    ingress: int
    lookup: int
    crossbar: int
    egress: int

    @property
    def tiles(self) -> Tuple[int, int, int, int]:
        return (self.ingress, self.lookup, self.crossbar, self.egress)


#: Port-to-tile mapping of Fig 7-2.  Ingress tiles 4/7/8/11 (chip edges,
#: confirmed by the Fig 7-3 caption), crossbar ring on the center tiles.
ROUTER_LAYOUT: List[PortLayout] = [
    PortLayout(port=0, ingress=4, lookup=0, crossbar=5, egress=1),
    PortLayout(port=1, ingress=7, lookup=3, crossbar=6, egress=2),
    PortLayout(port=2, ingress=11, lookup=15, crossbar=10, egress=14),
    PortLayout(port=3, ingress=8, lookup=12, crossbar=9, egress=13),
]

#: Crossbar tiles in clockwise ring order; ring index == port number.
CROSSBAR_RING: Tuple[int, ...] = tuple(p.crossbar for p in ROUTER_LAYOUT)
INGRESS_TILES: Tuple[int, ...] = tuple(p.ingress for p in ROUTER_LAYOUT)
EGRESS_TILES: Tuple[int, ...] = tuple(p.egress for p in ROUTER_LAYOUT)
LOOKUP_TILES: Tuple[int, ...] = tuple(p.lookup for p in ROUTER_LAYOUT)


def ring_neighbors_are_adjacent() -> bool:
    """Sanity property: consecutive crossbar tiles are grid neighbors."""
    n = len(CROSSBAR_RING)
    return all(
        manhattan(CROSSBAR_RING[i], CROSSBAR_RING[(i + 1) % n]) == 1
        for i in range(n)
    )


def port_of_tile(tile: int) -> Optional[Tuple[int, str]]:
    """Map a tile id back to ``(port, role)`` or None for unused tiles."""
    for layout in ROUTER_LAYOUT:
        for role in ("ingress", "lookup", "crossbar", "egress"):
            if getattr(layout, role) == tile:
                return layout.port, role
    return None
