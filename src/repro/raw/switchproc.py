"""Static-switch processor: executes route-instruction streams.

Each Raw tile has one six-stage switch processor that reconfigures the
tile's static crossbar every cycle: a single switch instruction can move
words on all five directions (N/S/E/W/Proc) simultaneously, and the whole
instruction stalls until every operand word is available (section 3.3).

:class:`RouteInstruction` captures one such configuration as a tuple of
``(source_channel, destination_channel)`` moves plus a repeat count;
:class:`SwitchProcessor` interprets a stream of them under the kernel.
The Rotating Crossbar's compile-time scheduler emits exactly these
streams (in pseudo-assembly and in executable form -- see
:mod:`repro.core.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, Optional, Tuple

from repro.sim.channel import Channel
from repro.sim.kernel import Get, Put, RouteBurst, Timeout


@dataclass(frozen=True)
class RouteInstruction:
    """One switch-crossbar configuration, repeated ``repeat`` cycles.

    All ``moves`` happen in the same cycle; the instruction stalls as a
    unit until every source word is present and every destination has
    room, which is the Raw static switch's all-or-nothing flow control.
    Two moves naming the same source channel express *fanout* (one read,
    several writes -- ``route $cWi->$csti, $cWi->$cEo`` on real Raw, the
    primitive behind the header exchange and fabric multicast).  An
    empty ``moves`` tuple is a switch ``nop`` (idles ``repeat`` cycles).
    """

    moves: Tuple[Tuple[Channel, Channel], ...]
    repeat: int = 1
    label: str = ""

    def __post_init__(self):
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        dests = [id(d) for _, d in self.moves]
        if len(dests) != len(set(dests)):
            raise ValueError("route instruction drives one destination twice")

    def sources(self) -> Tuple[Channel, ...]:
        """Distinct source channels, in first-appearance order."""
        seen = []
        for src, _ in self.moves:
            if not any(s is src for s in seen):
                seen.append(src)
        return tuple(seen)

    @property
    def words_moved(self) -> int:
        return len(self.moves) * self.repeat

    def burst(self) -> RouteBurst:
        """The kernel burst command for all ``repeat`` cycles of this
        instruction, built once and cached (instructions are immutable
        and re-executed every crossbar rotation)."""
        cmd = getattr(self, "_burst", None)
        if cmd is None:
            cmd = RouteBurst(self.moves, count=self.repeat)
            object.__setattr__(self, "_burst", cmd)
        return cmd


class SwitchProcessor:
    """Interpreter for a stream of :class:`RouteInstruction`.

    The instruction stream may be any iterable, including a generator that
    is fed by the tile processor at run time -- that is how the Rotating
    Crossbar's "load the chosen configuration into the switch program
    counter" step (section 6.5) is modeled.
    """

    def __init__(
        self,
        tile: int,
        name: Optional[str] = None,
        use_bursts: bool = True,
        burst_gate=None,
    ):
        self.tile = tile
        self.name = name or f"switch@t{tile}"
        self.words_routed = 0
        self.instructions_executed = 0
        #: When set, hand whole instructions to the kernel as
        #: :class:`RouteBurst` commands instead of interpreting them one
        #: Get/Put yield at a time.  Cycle-for-cycle identical (see
        #: tests/test_burst_equivalence.py); keep the flag for A/B runs.
        self.use_bursts = use_bursts
        #: Optional ``gate(span_cycles) -> bool`` consulted before each
        #: burst; False forces the word-at-a-time fallback for that
        #: instruction.  Fault injection uses it to keep channel state
        #: word-granular across fault boundaries (both paths are
        #: cycle-identical, so gating never changes results).
        self.burst_gate = burst_gate

    def execute(self, program: Iterable[RouteInstruction]) -> Generator:
        """Kernel process running ``program`` to completion."""
        for instr in program:
            yield from self.execute_one(instr)

    def execute_one(self, instr: RouteInstruction) -> Generator:
        if not instr.moves:
            self.instructions_executed += instr.repeat
            yield Timeout(instr.repeat)
            return
        if self.use_bursts and (
            self.burst_gate is None or self.burst_gate(instr.repeat)
        ):
            self.instructions_executed += instr.repeat
            yield instr.burst()
            self.words_routed += instr.words_moved
            return
        sources = instr.sources()
        for _ in range(instr.repeat):
            self.instructions_executed += 1
            # Read each distinct source once (fanout reuses the word).
            values = {}
            for src in sources:
                values[id(src)] = yield Get(src)
            for src, dst in instr.moves:
                yield Put(dst, values[id(src)])
            self.words_routed += len(instr.moves)
