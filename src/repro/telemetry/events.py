"""Structured event tracing: a ring-buffered log of typed, cycle-stamped
events.

Every instrumented site in the kernel, the channels, the router stages,
the token, and the fault injector emits through the module-level recorder
(:mod:`repro.telemetry.runtime`); with telemetry disabled the recorder is
``None`` and nothing here ever runs.  Events are small tuples -- no
objects allocated on the hot path beyond the tuple itself -- and the ring
overwrites the oldest entries once ``capacity`` is exceeded, so a
million-packet run costs bounded memory.  Total per-kind counts are kept
separately and never wrap.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple

# Event kinds: dense small integers (list indices in per-kind counters).
EV_PKT_ARRIVE = 0  #: packet arrived at an ingress port
EV_PKT_LOOKUP = 1  #: route lookup completed
EV_PKT_ENQUEUE = 2  #: first fragment entered the fabric input queue
EV_PKT_HOP = 3  #: a fragment was granted and crossed the fabric
EV_PKT_DEPART = 4  #: packet fully streamed to the output line
EV_PKT_DROP = 5  #: packet dropped (data = cause string)
EV_TOKEN_PASS = 6  #: rotating token advanced (data = new master)
EV_TOKEN_RESET = 7  #: token regenerated after loss (data = new master)
EV_XBAR_CONFIG = 8  #: crossbar reconfigured (data = (master, grants))
EV_FAULT_INJECT = 9  #: fault applied (data = fault kind)
EV_FAULT_RECOVER = 10  #: fault window closed / recovery completed
EV_LINK_DOWN = 11  #: a channel's link went down (data = restore cycle)
EV_LINK_UP = 12  #: a channel's link restored

KIND_NAMES = (
    "pkt.arrive",
    "pkt.lookup",
    "pkt.enqueue",
    "pkt.hop",
    "pkt.depart",
    "pkt.drop",
    "token.pass",
    "token.reset",
    "xbar.config",
    "fault.inject",
    "fault.recover",
    "link.down",
    "link.up",
)

N_KINDS = len(KIND_NAMES)


class Event(NamedTuple):
    """One recorded event; ``seq`` is the emission index *within its
    origin recorder* and ``origin`` identifies that recorder (0: the
    local/coordinator recorder, ``worker + 1`` for merged worker logs)."""

    seq: int
    cycle: int
    kind: int
    subject: str
    data: Any
    origin: int = 0

    @property
    def name(self) -> str:
        return KIND_NAMES[self.kind]


class EventLog:
    """Fixed-capacity ring of events plus total per-kind counts."""

    __slots__ = ("capacity", "_ring", "_emitted", "_extra", "kind_counts")

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Any] = [None] * capacity
        self._emitted = 0
        #: Events merged in from other recorders but not retained (their
        #: origins emitted them; the trimmed union dropped them).
        self._extra = 0
        #: Total events ever emitted per kind (never wraps with the ring).
        self.kind_counts: List[int] = [0] * N_KINDS

    # -- the hot path ---------------------------------------------------
    def emit(self, cycle: int, kind: int, subject: str = "", data: Any = None) -> None:
        i = self._emitted
        self._ring[i % self.capacity] = (i, cycle, kind, subject, data)
        self._emitted = i + 1
        self.kind_counts[kind] += 1

    # -- introspection --------------------------------------------------
    @property
    def emitted(self) -> int:
        """Total events ever emitted (including overwritten ones)."""
        return self._emitted + self._extra

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wrap-around or trimmed at merge."""
        return self._extra + max(0, self._emitted - self.capacity)

    def __len__(self) -> int:
        return min(self._emitted, self.capacity)

    def events(self) -> List[Event]:
        """Retained events, oldest first."""
        n = self._emitted
        if n <= self.capacity:
            raw = self._ring[:n]
        else:
            split = n % self.capacity
            raw = self._ring[split:] + self._ring[:split]
        return [Event(*entry) for entry in raw]

    def counts_by_name(self) -> Dict[str, int]:
        return {
            KIND_NAMES[k]: c for k, c in enumerate(self.kind_counts) if c
        }

    # -- distributed merge ----------------------------------------------
    def to_state(self, origin: int = 0) -> Dict[str, Any]:
        """Picklable log state; ``origin`` stamps every not-yet-stamped
        retained event (use ``worker + 1`` so 0 stays "local")."""
        entries = []
        for ev in self.events():
            entries.append(
                (ev.seq, ev.cycle, ev.kind, ev.subject, ev.data,
                 ev.origin or origin)
            )
        return {
            "emitted": self.emitted,
            "kind_counts": list(self.kind_counts),
            "entries": entries,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Union the retained events, ordered by ``(cycle, origin, seq)``,
        keeping the newest ``capacity`` of the union.  Trimming early
        never changes the final retained set (anything trimmed from a
        sub-union is below ``capacity`` newer events there, hence also in
        every super-union), so the merge is associative and commutative
        over distinct-origin states."""
        total = self.emitted + state["emitted"]
        for k, c in enumerate(state["kind_counts"]):
            self.kind_counts[k] += c
        union = [tuple(ev) for ev in self.events()]
        union.extend(tuple(e) for e in state["entries"])
        union.sort(key=lambda e: (e[1], e[5], e[0]))
        keep = union[-self.capacity:]
        self._ring = list(keep) + [None] * (self.capacity - len(keep))
        self._emitted = len(keep)
        self._extra = total - len(keep)
