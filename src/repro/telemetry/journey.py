"""Packet journeys: per-packet lifecycle derived from the event stream.

A journey is ingress arrival -> route lookup -> fabric entry -> per-hop
traversal -> egress departure.  The tracker keys in-flight packets by
``id(pkt)`` (object identity; packet ids are not globally unique across
ports) and assigns its own sequential journey ids.  Stage latencies feed
fixed-size log-bucketed histograms (:class:`~repro.telemetry.registry.
LogHistogram`) -- never per-packet Python lists at scale -- and a
deterministic reservoir of ``detail_limit`` completed journeys keeps full
mark lists so any of them can be drilled into as a
:class:`PacketJourney`.

Two extensions support the distributed telemetry plane:

* **Label dimensions** -- every completed journey also records its total
  latency under ``("port", "p<src>")`` and, when a port->class mapping
  has been installed (:meth:`JourneyTracker.set_port_classes`, threaded
  from ``TrafficSpec.classes``), under ``("class", <label>)``.
  Cardinality is bounded at :data:`MAX_DIM_LABELS` labels per dimension;
  overflow folds into the ``"~other"`` label.

* **Shared-key (deferred) mode** -- the space engine's journeys span
  partitions: the ingress partition sees the arrival, a different one
  the departure.  Under :meth:`share_keys`, keys are globally unique
  tags chosen by the caller, completion is *deferred* (``depart`` parks
  the entry instead of folding it into histograms), partial entries ship
  via :meth:`to_state`, fold field-wise in :meth:`merge_state`, and
  :meth:`finalize` turns the completed set into histograms/details on
  the coordinator.  The single-process path uses the same deferred
  machinery, so a P=1 run and a merged P=4 run produce identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush, heapreplace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import LogHistogram

STAGES = ("ingress", "fabric", "egress", "total")

#: Cap on concurrently tracked packets; fragments drained by dead-port
#: faults never reach egress, so without a cap the live map would leak.
LIVE_CAP = 8192

#: Cap on distinct labels per journey dimension; beyond it samples fold
#: into the ``"~other"`` overflow label so cardinality stays bounded.
MAX_DIM_LABELS = 64

OVERFLOW_LABEL = "~other"

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: the deterministic reservoir's hash."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    x = ((x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return (x ^ (x >> 33)) & _MASK64


class _Live:
    """Scalar per-packet state while the packet is in flight (and, in
    shared-key mode, after completion until :meth:`~JourneyTracker.
    finalize` folds it).  Missing marks are -1; ``outcome`` is ``None``
    until the packet departs or drops."""

    __slots__ = ("jid", "src", "dst", "size", "arrive", "lookup",
                 "enqueue", "hops", "last_hop", "depart", "outcome")

    def __init__(self, jid: int, src: int, cycle: int):
        self.jid = jid
        self.src = src
        self.dst = -1
        self.size = 0
        self.arrive = cycle
        self.lookup = -1
        self.enqueue = -1
        self.hops = 0
        self.last_hop = -1
        self.depart = -1
        self.outcome: Optional[str] = None

    def pack(self) -> Tuple:
        return (self.jid, self.src, self.dst, self.size, self.arrive,
                self.lookup, self.enqueue, self.hops, self.last_hop,
                self.depart, self.outcome)

    @classmethod
    def unpack(cls, t: Tuple) -> "_Live":
        lv = cls(t[0], t[1], t[4])
        (lv.dst, lv.size, lv.lookup, lv.enqueue, lv.hops,
         lv.last_hop, lv.depart, lv.outcome) = (
            t[2], t[3], t[5], t[6], t[7], t[8], t[9], t[10])
        return lv

    def fold(self, other: "_Live") -> None:
        """Field-wise fold of another partition's partial view of the
        same journey.  Each mark is set by exactly one partition, so
        "take the one that is set" plus sum/max folds is associative and
        commutative."""
        if self.arrive < 0 and other.arrive >= 0:
            self.arrive = other.arrive
            self.src = other.src
        if self.dst < 0 and other.dst >= 0:
            self.dst = other.dst
            self.size = other.size
        if self.lookup < 0:
            self.lookup = other.lookup
        if self.enqueue < 0:
            self.enqueue = other.enqueue
        self.hops += other.hops
        if other.last_hop > self.last_hop:
            self.last_hop = other.last_hop
        if self.outcome is None and other.outcome is not None:
            self.depart = other.depart
            self.outcome = other.outcome


@dataclass
class PacketJourney:
    """Drill-down view of one completed (or dropped) packet lifecycle."""

    jid: int
    src: int
    dst: int
    size_bytes: int
    arrive: int
    depart: int
    outcome: str  # "delivered" or the drop cause
    hops: int
    marks: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def latency(self) -> int:
        return self.depart - self.arrive

    def stage_latencies(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        by_name = dict(self.marks)
        enq = by_name.get("enqueue")
        if enq is not None:
            out["ingress"] = enq - self.arrive
            last_hop = by_name.get("last_hop")
            if last_hop is not None:
                out["fabric"] = last_hop - enq
                if self.outcome == "delivered":
                    out["egress"] = self.depart - last_hop
        out["total"] = self.latency
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jid": self.jid,
            "src": self.src,
            "dst": self.dst,
            "size_bytes": self.size_bytes,
            "arrive": self.arrive,
            "depart": self.depart,
            "outcome": self.outcome,
            "hops": self.hops,
            "marks": [[name, cycle] for name, cycle in self.marks],
            "stages": self.stage_latencies(),
        }


class JourneyTracker:
    """Builds journeys and stage histograms from instrumentation calls."""

    def __init__(self, detail_limit: int = 64):
        self._live: Dict[int, _Live] = {}
        self._next_jid = 0
        self.detail_limit = detail_limit
        #: Max-heap of ``(-hash, jid, journey)``: the ``detail_limit``
        #: completed journeys with the smallest ``_mix64(jid)``.  A
        #: hash-ranked reservoir instead of "first N" so drill-down
        #: samples span the whole run (no warm-up bias), stay
        #: deterministic for a given seed, and merge associatively
        #: (union + re-truncate) across workers.
        self._detail_heap: List[Tuple[int, int, PacketJourney]] = []
        self.completed = 0
        self.dropped = 0
        self.evicted = 0
        self.stage_hist: Dict[str, LogHistogram] = {
            s: LogHistogram() for s in STAGES
        }
        #: ``(dimension, label) -> total-latency histogram``.
        self.dim_hist: Dict[Tuple[str, str], LogHistogram] = {}
        self._port_classes: Tuple[str, ...] = ()
        #: Shared-key mode (see module docstring).
        self._shared = False
        #: Completed-but-not-finalized entries in shared-key mode.
        self._done: Dict[int, _Live] = {}
        #: In-flight count contributed by merged worker states.
        self._merged_in_flight = 0

    # -- configuration --------------------------------------------------
    def set_port_classes(self, labels: Sequence[str]) -> None:
        """Install the port -> traffic-class mapping (index = port)."""
        self._port_classes = tuple(labels)

    @property
    def port_classes(self) -> Tuple[str, ...]:
        return self._port_classes

    def share_keys(self) -> None:
        """Switch to shared-key (deferred) mode: keys are caller-chosen
        globally unique tags and completion folds at :meth:`finalize`."""
        self._shared = True

    # -- lifecycle marks (hot path; all O(1)) ---------------------------
    def arrive(self, key: int, src: int, cycle: int) -> None:
        if len(self._live) >= LIVE_CAP:
            # Evict the oldest entry; its packet will never complete.
            self._live.pop(next(iter(self._live)))
            self.evicted += 1
        jid = key if self._shared else self._next_jid
        self._live[key] = _Live(jid, src, cycle)
        self._next_jid += 1

    def lookup(self, key: int, dst: int, size: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is not None:
            lv.lookup = cycle
            lv.dst = dst
            lv.size = size

    def enqueue(self, key: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is not None and lv.enqueue < 0:
            lv.enqueue = cycle

    def hop(self, key: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is None:
            if not self._shared:
                return
            # Another partition saw the arrival; track a partial entry.
            lv = self._live[key] = _Live(key, -1, -1)
        lv.hops += 1
        if cycle > lv.last_hop:
            lv.last_hop = cycle

    def depart(self, key: int, cycle: int) -> None:
        lv = self._live.pop(key, None)
        if self._shared:
            if lv is None:
                lv = _Live(key, -1, -1)
            lv.depart = cycle
            lv.outcome = "delivered"
            self._done[key] = lv
            return
        if lv is None:
            return
        lv.depart = cycle
        lv.outcome = "delivered"
        self._complete(lv)

    def drop(self, key: int, cause: str, cycle: int) -> None:
        lv = self._live.pop(key, None)
        if self._shared:
            if lv is None:
                lv = _Live(key, -1, -1)
            lv.depart = cycle
            lv.outcome = cause
            self._done[key] = lv
            return
        if lv is None:
            return
        lv.depart = cycle
        lv.outcome = cause
        self._complete(lv)

    # -- completion -----------------------------------------------------
    def _complete(self, lv: _Live) -> None:
        """Fold one finished entry into counters/histograms/details."""
        if lv.outcome == "delivered":
            self.completed += 1
            hist = self.stage_hist
            if lv.enqueue >= 0:
                hist["ingress"].record(lv.enqueue - lv.arrive)
                if lv.last_hop >= 0:
                    hist["fabric"].record(lv.last_hop - lv.enqueue)
                    hist["egress"].record(lv.depart - lv.last_hop)
            hist["total"].record(lv.depart - lv.arrive)
            self._dim_record(lv.src, lv.depart - lv.arrive)
        else:
            self.dropped += 1
        # Only build the drill-down journey if the reservoir will take it.
        hsh = _mix64(lv.jid)
        heap = self._detail_heap
        if self.detail_limit > 0 and (
            len(heap) < self.detail_limit or -hsh > heap[0][0]
        ):
            self._offer_detail(hsh, self._finish(lv))

    def _dim_record(self, src: int, latency: int) -> None:
        self._dim("port", f"p{src}", latency)
        classes = self._port_classes
        if classes and 0 <= src < len(classes):
            self._dim("class", classes[src], latency)

    def _dim(self, dim: str, label: str, value: int) -> None:
        key = (dim, label)
        h = self.dim_hist.get(key)
        if h is None:
            if sum(1 for d, _l in self.dim_hist if d == dim) >= MAX_DIM_LABELS:
                key = (dim, OVERFLOW_LABEL)
                h = self.dim_hist.get(key)
            if h is None:
                h = self.dim_hist[key] = LogHistogram()
        h.record(value)

    def _offer_detail(self, hsh: int, journey: PacketJourney) -> None:
        heap = self._detail_heap
        if self.detail_limit <= 0:
            return
        if len(heap) < self.detail_limit:
            heappush(heap, (-hsh, journey.jid, journey))
        elif -hsh > heap[0][0]:
            heapreplace(heap, (-hsh, journey.jid, journey))

    def finalize(self) -> None:
        """Shared-key mode: fold every completed (merged) entry into
        counters/histograms/details.  Entries still missing their arrival
        mark (their partition's state was never merged) count as evicted;
        unfinished entries stay in flight.  Idempotent."""
        if not self._done:
            return
        for key in sorted(self._done):
            lv = self._done[key]
            if lv.arrive < 0:
                self.evicted += 1
                continue
            self._complete(lv)
        self._done.clear()

    # -- views ----------------------------------------------------------
    def _finish(self, lv: _Live) -> PacketJourney:
        marks: List[Tuple[str, int]] = [("arrive", lv.arrive)]
        if lv.lookup >= 0:
            marks.append(("lookup", lv.lookup))
        if lv.enqueue >= 0:
            marks.append(("enqueue", lv.enqueue))
        if lv.last_hop >= 0:
            marks.append(("last_hop", lv.last_hop))
        outcome = lv.outcome or "delivered"
        marks.append(
            ("depart" if outcome == "delivered" else "drop", lv.depart)
        )
        return PacketJourney(
            jid=lv.jid, src=lv.src, dst=lv.dst, size_bytes=lv.size,
            arrive=lv.arrive, depart=lv.depart, outcome=outcome,
            hops=lv.hops, marks=marks,
        )

    @property
    def detailed(self) -> List[PacketJourney]:
        """The reservoir's journeys, ordered by journey id."""
        return [j for _h, _jid, j in
                sorted(self._detail_heap, key=lambda t: t[1])]

    def journey(self, jid: int) -> Optional[PacketJourney]:
        for _h, j_jid, j in self._detail_heap:
            if j_jid == jid:
                return j
        return None

    @property
    def in_flight(self) -> int:
        return len(self._live) + len(self._done) + self._merged_in_flight

    def dim_labels(self, dim: str) -> List[str]:
        return sorted(l for d, l in self.dim_hist if d == dim)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "completed": self.completed,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "evicted": self.evicted,
            "stage_histograms": {
                s: h.to_dict() for s, h in self.stage_hist.items()
            },
            "journeys": [j.to_dict() for j in self.detailed],
        }
        if self.dim_hist:
            dims: Dict[str, Dict[str, Any]] = {}
            for (dim, label) in sorted(self.dim_hist):
                dims.setdefault(dim, {})[label] = (
                    self.dim_hist[(dim, label)].to_dict()
                )
            out["dimensions"] = dims
        return out

    # -- distributed merge ----------------------------------------------
    def to_state(self, worker: Optional[int] = None) -> Dict[str, Any]:
        """Picklable tracker state.  In local mode, detailed journeys
        ship with worker-namespaced jids (worker jid spaces overlap); in
        shared-key mode the raw partial entries ship instead so the
        coordinator can fold cross-partition journeys."""
        offset = 0 if worker is None else (worker + 1) << 40
        details = []
        for _h, _jid, j in sorted(self._detail_heap, key=lambda t: t[1]):
            d = j.to_dict()
            d.pop("stages", None)
            if not self._shared:
                d["jid"] += offset
            details.append(d)
        entries = []
        if self._shared:
            for store in (self._live, self._done):
                entries.extend(store[k].pack() for k in sorted(store))
        return {
            "shared": self._shared,
            "completed": self.completed,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "in_flight": (
                0 if self._shared
                else len(self._live) + self._merged_in_flight
            ),
            "stage_hist": {
                s: h.to_state() for s, h in self.stage_hist.items()
            },
            "dim_hist": [
                [d, l, h.to_state()] for (d, l), h in
                sorted(self.dim_hist.items())
            ],
            "detailed": details,
            "entries": entries,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a worker tracker's state in (associative, commutative in
        worker order over distinct-worker states)."""
        if state["shared"]:
            self._shared = True
        self.completed += state["completed"]
        self.dropped += state["dropped"]
        self.evicted += state["evicted"]
        self._merged_in_flight += state["in_flight"]
        for s, hs in state["stage_hist"].items():
            self.stage_hist[s].merge_state(hs)
        for dim, label, hs in state["dim_hist"]:
            key = (dim, label)
            h = self.dim_hist.get(key)
            if h is None:
                h = self.dim_hist[key] = LogHistogram()
            h.merge_state(hs)
        for d in state["detailed"]:
            j = PacketJourney(
                jid=d["jid"], src=d["src"], dst=d["dst"],
                size_bytes=d["size_bytes"], arrive=d["arrive"],
                depart=d["depart"], outcome=d["outcome"], hops=d["hops"],
                marks=[(name, cycle) for name, cycle in d["marks"]],
            )
            self._offer_detail(_mix64(j.jid), j)
        for packed in state["entries"]:
            incoming = _Live.unpack(packed)
            key = incoming.jid
            cur = self._done.pop(key, None)
            if cur is None:
                cur = self._live.pop(key, None)
            if cur is None:
                cur = incoming
            else:
                cur.fold(incoming)
            if cur.outcome is not None:
                self._done[key] = cur
            else:
                self._live[key] = cur
