"""Packet journeys: per-packet lifecycle derived from the event stream.

A journey is ingress arrival -> route lookup -> fabric entry -> per-hop
traversal -> egress departure.  The tracker keys in-flight packets by
``id(pkt)`` (object identity; packet ids are not globally unique across
ports) and assigns its own sequential journey ids.  Stage latencies feed
fixed-size log-bucketed histograms (:class:`~repro.telemetry.registry.
LogHistogram`) -- never per-packet Python lists at scale -- and the first
``detail_limit`` completed journeys keep their full mark lists so any of
them can be drilled into as a :class:`PacketJourney`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .registry import LogHistogram

STAGES = ("ingress", "fabric", "egress", "total")

#: Cap on concurrently tracked packets; fragments drained by dead-port
#: faults never reach egress, so without a cap the live map would leak.
LIVE_CAP = 8192


class _Live:
    """Scalar per-packet state while the packet is in flight."""

    __slots__ = ("jid", "src", "dst", "size", "arrive", "lookup",
                 "enqueue", "hops", "last_hop")

    def __init__(self, jid: int, src: int, cycle: int):
        self.jid = jid
        self.src = src
        self.dst = -1
        self.size = 0
        self.arrive = cycle
        self.lookup = -1
        self.enqueue = -1
        self.hops = 0
        self.last_hop = -1


@dataclass
class PacketJourney:
    """Drill-down view of one completed (or dropped) packet lifecycle."""

    jid: int
    src: int
    dst: int
    size_bytes: int
    arrive: int
    depart: int
    outcome: str  # "delivered" or the drop cause
    hops: int
    marks: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def latency(self) -> int:
        return self.depart - self.arrive

    def stage_latencies(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        by_name = dict(self.marks)
        enq = by_name.get("enqueue")
        if enq is not None:
            out["ingress"] = enq - self.arrive
            last_hop = by_name.get("last_hop")
            if last_hop is not None:
                out["fabric"] = last_hop - enq
                if self.outcome == "delivered":
                    out["egress"] = self.depart - last_hop
        out["total"] = self.latency
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jid": self.jid,
            "src": self.src,
            "dst": self.dst,
            "size_bytes": self.size_bytes,
            "arrive": self.arrive,
            "depart": self.depart,
            "outcome": self.outcome,
            "hops": self.hops,
            "marks": [[name, cycle] for name, cycle in self.marks],
            "stages": self.stage_latencies(),
        }


class JourneyTracker:
    """Builds journeys and stage histograms from instrumentation calls."""

    def __init__(self, detail_limit: int = 64):
        self._live: Dict[int, _Live] = {}
        self._next_jid = 0
        self.detail_limit = detail_limit
        self.detailed: List[PacketJourney] = []
        self.completed = 0
        self.dropped = 0
        self.evicted = 0
        self.stage_hist: Dict[str, LogHistogram] = {
            s: LogHistogram() for s in STAGES
        }

    # -- lifecycle marks (hot path; all O(1)) ---------------------------
    def arrive(self, key: int, src: int, cycle: int) -> None:
        if len(self._live) >= LIVE_CAP:
            # Evict the oldest entry; its packet will never complete.
            self._live.pop(next(iter(self._live)))
            self.evicted += 1
        self._live[key] = _Live(self._next_jid, src, cycle)
        self._next_jid += 1

    def lookup(self, key: int, dst: int, size: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is not None:
            lv.lookup = cycle
            lv.dst = dst
            lv.size = size

    def enqueue(self, key: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is not None and lv.enqueue < 0:
            lv.enqueue = cycle

    def hop(self, key: int, cycle: int) -> None:
        lv = self._live.get(key)
        if lv is not None:
            lv.hops += 1
            lv.last_hop = cycle

    def depart(self, key: int, cycle: int) -> None:
        lv = self._live.pop(key, None)
        if lv is None:
            return
        self.completed += 1
        hist = self.stage_hist
        if lv.enqueue >= 0:
            hist["ingress"].record(lv.enqueue - lv.arrive)
            if lv.last_hop >= 0:
                hist["fabric"].record(lv.last_hop - lv.enqueue)
                hist["egress"].record(cycle - lv.last_hop)
        hist["total"].record(cycle - lv.arrive)
        if len(self.detailed) < self.detail_limit:
            self.detailed.append(self._finish(lv, cycle, "delivered"))

    def drop(self, key: int, cause: str, cycle: int) -> None:
        lv = self._live.pop(key, None)
        if lv is None:
            return
        self.dropped += 1
        if len(self.detailed) < self.detail_limit:
            self.detailed.append(self._finish(lv, cycle, cause))

    # -- views ----------------------------------------------------------
    def _finish(self, lv: _Live, cycle: int, outcome: str) -> PacketJourney:
        marks: List[Tuple[str, int]] = [("arrive", lv.arrive)]
        if lv.lookup >= 0:
            marks.append(("lookup", lv.lookup))
        if lv.enqueue >= 0:
            marks.append(("enqueue", lv.enqueue))
        if lv.last_hop >= 0:
            marks.append(("last_hop", lv.last_hop))
        marks.append(("depart" if outcome == "delivered" else "drop", cycle))
        return PacketJourney(
            jid=lv.jid, src=lv.src, dst=lv.dst, size_bytes=lv.size,
            arrive=lv.arrive, depart=cycle, outcome=outcome,
            hops=lv.hops, marks=marks,
        )

    def journey(self, jid: int) -> Optional[PacketJourney]:
        for j in self.detailed:
            if j.jid == jid:
                return j
        return None

    @property
    def in_flight(self) -> int:
        return len(self._live)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "completed": self.completed,
            "dropped": self.dropped,
            "in_flight": self.in_flight,
            "evicted": self.evicted,
            "stage_histograms": {
                s: h.to_dict() for s, h in self.stage_hist.items()
            },
            "journeys": [j.to_dict() for j in self.detailed],
        }
