"""Kernel self-profiling: where does the *simulator* spend its work?

Collected by gated instrumentation inside ``sim/kernel.py``: per-command
dispatch counts (the burst vs word-at-a-time mix), calendar-wheel bucket
occupancy, and far-heap spill traffic.  Wall-clock events/sec is computed
by the caller (``traced.run_traced``) and reported to the terminal only —
it never enters exported JSON, which must be deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Kernel command kinds, indexed by the ``_kind`` tag dispatch uses.
CMD_NAMES = ("Timeout", "Put", "Get", "PutBurst", "GetBurst", "RouteBurst")

WORD_KINDS = ("Put", "Get")
BURST_KINDS = ("PutBurst", "GetBurst", "RouteBurst")


class KernelProfile:
    """Counters filled in by the kernel when telemetry is enabled."""

    __slots__ = ("cmd_counts", "bucket_drains", "bucket_events",
                 "bucket_peak", "wheel_peak", "far_spills")

    def __init__(self):
        self.cmd_counts: List[int] = [0] * len(CMD_NAMES)
        #: Calendar-wheel buckets drained / total events they held.
        self.bucket_drains = 0
        self.bucket_events = 0
        #: Largest single bucket and largest wheel population observed.
        self.bucket_peak = 0
        self.wheel_peak = 0
        #: Events that spilled to (and later merged back from) the far heap.
        self.far_spills = 0

    @property
    def mean_bucket_occupancy(self) -> float:
        return self.bucket_events / self.bucket_drains if self.bucket_drains else 0.0

    def burst_mix(self) -> Dict[str, int]:
        by_name = dict(zip(CMD_NAMES, self.cmd_counts))
        return {
            "word_ops": sum(by_name[k] for k in WORD_KINDS),
            "burst_ops": sum(by_name[k] for k in BURST_KINDS),
            "timeouts": by_name["Timeout"],
        }

    # -- distributed merge ----------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """Picklable profile state for shipping to a coordinator."""
        return {
            "cmd_counts": list(self.cmd_counts),
            "bucket_drains": self.bucket_drains,
            "bucket_events": self.bucket_events,
            "bucket_peak": self.bucket_peak,
            "wheel_peak": self.wheel_peak,
            "far_spills": self.far_spills,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another profile in: counts sum, peaks take the max
        (associative, commutative)."""
        for i, n in enumerate(state["cmd_counts"]):
            self.cmd_counts[i] += n
        self.bucket_drains += state["bucket_drains"]
        self.bucket_events += state["bucket_events"]
        self.far_spills += state["far_spills"]
        if state["bucket_peak"] > self.bucket_peak:
            self.bucket_peak = state["bucket_peak"]
        if state["wheel_peak"] > self.wheel_peak:
            self.wheel_peak = state["wheel_peak"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "commands": {
                name: n
                for name, n in zip(CMD_NAMES, self.cmd_counts)
                if n
            },
            "burst_mix": self.burst_mix(),
            "calendar": {
                "bucket_drains": self.bucket_drains,
                "bucket_events": self.bucket_events,
                "mean_bucket_occupancy": self.mean_bucket_occupancy,
                "bucket_peak": self.bucket_peak,
                "wheel_peak": self.wheel_peak,
                "far_spills": self.far_spills,
            },
        }
