"""``python -m repro trace``: run a workload with telemetry enabled and
export the capture.

Unlike ``repro run`` (paper tables) and ``repro bench`` (wall clock),
``repro trace`` is the diagnosis tool: it renders a Chrome-trace/Perfetto
JSON of the run, a terminal per-stage latency table, and a kernel
self-profile, so a bench regression can be traced to the stage or kernel
path that caused it.

``--check`` is the CI gate: schema-validate the export, prove it is
deterministic across two same-seed runs, prove disabled-mode results are
bit-identical to the traced run, require at least one complete packet
journey, and bound the disabled-mode wall-clock overhead against the
``repro bench`` results file.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.config import SimConfig
from repro.engines import RunResult, WorkloadSpec, run_config

from . import runtime
from .export import (
    canonical,
    chrome_trace,
    render_kernel_profile,
    render_stage_table,
    validate_chrome_trace,
)
from .journey import STAGES

#: Schema tag on the ``--stats-out`` stage-latency document.
TRACE_STATS_SCHEMA = "repro-trace-stats/1"


@dataclass(frozen=True)
class TraceSpec:
    """A traceable workload: engine + full and quick budgets.

    ``config_overrides`` are extra :class:`SimConfig` fields the spec
    needs (e.g. the space spec's square port count); the CLI's
    ``--engine`` / ``--partitions`` flags override on top of them.
    """

    description: str
    fidelity: str
    workload: WorkloadSpec
    quick_workload: WorkloadSpec
    config_overrides: Tuple[Tuple[str, Any], ...] = ()


#: Experiments `repro trace` knows how to run.  ``fig7_1_peak`` is the
#: acceptance workload: the thesis's peak-throughput point (1024-byte
#: permutation traffic on the phase-level router).
SPECS: Dict[str, TraceSpec] = {
    "fig7_1_peak": TraceSpec(
        description="Fig 7-1 peak point: 1024B permutation on the router",
        fidelity="router",
        workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                              packets=600),
        quick_workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                                    packets=150),
    ),
    "fig7_1_avg": TraceSpec(
        description="Fig 7-1 average point: 1024B uniform on the router",
        fidelity="router",
        workload=WorkloadSpec(pattern="uniform", packet_bytes=1024,
                              packets=600),
        quick_workload=WorkloadSpec(pattern="uniform", packet_bytes=1024,
                                    packets=150),
    ),
    "fig7_3": TraceSpec(
        description="Fig 7-3 regime: word-level permutation run",
        fidelity="wordlevel",
        workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                              cycles=30_000, warmup_cycles=0),
        quick_workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                                    cycles=12_000, warmup_cycles=0),
    ),
    "scaling": TraceSpec(
        description="Space-partitioned Clos (distributed telemetry merge)",
        fidelity="space",
        workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                              quanta=2000, warmup_quanta=200),
        quick_workload=WorkloadSpec(pattern="permutation", packet_bytes=1024,
                                    quanta=600, warmup_quanta=60),
        config_overrides=(("ports", 16),),
    ),
}

#: Default registry snapshot interval (cycles) for traced runs.
DEFAULT_SNAPSHOT_INTERVAL = 5000


def _spec_config(spec: TraceSpec, seed: int, engine: Optional[str],
                 partitions: Optional[int]) -> SimConfig:
    kwargs: Dict[str, Any] = dict(spec.config_overrides)
    kwargs["fidelity"] = engine or spec.fidelity
    if partitions is not None:
        kwargs["partitions"] = partitions
    return SimConfig(seed=seed, **kwargs)


def _spec_workload(spec: TraceSpec, quick: bool,
                   packets: Optional[int], engine: Optional[str]) -> WorkloadSpec:
    workload = spec.quick_workload if quick else spec.workload
    if packets is not None:
        if (engine or spec.fidelity) in ("wordlevel", "space"):
            raise ValueError(
                "--packets does not apply to cycle/quanta-budget engines"
            )
        workload = workload.replace(packets=packets)
    return workload


def run_traced(
    name: str,
    quick: bool = False,
    packets: Optional[int] = None,
    seed: int = 0,
    snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    engine: Optional[str] = None,
    partitions: Optional[int] = None,
) -> Tuple[RunResult, runtime.Telemetry, float]:
    """Run one spec with telemetry enabled; returns (result, tel, wall_s).

    Telemetry is enabled *before* the engine is built (engines capture
    the recorder at construction) and restored to its prior state after.
    ``engine`` / ``partitions`` override the spec's fidelity and worker
    count (the distributed plane: a space run with P > 1 merges every
    worker's recorder into the returned one).
    """
    spec = SPECS[name]
    workload = _spec_workload(spec, quick, packets, engine)
    config = _spec_config(spec, seed, engine, partitions)
    with runtime.capture(snapshot_interval=snapshot_interval) as tel:
        t0 = time.perf_counter()
        result = run_config(config, workload)
        wall = time.perf_counter() - t0
    return result, tel, wall


def run_plain(name: str, quick: bool = False,
              packets: Optional[int] = None, seed: int = 0,
              engine: Optional[str] = None,
              partitions: Optional[int] = None) -> RunResult:
    """Same workload with telemetry disabled (the bit-identity reference)."""
    spec = SPECS[name]
    workload = _spec_workload(spec, quick, packets, engine)
    config = _spec_config(spec, seed, engine, partitions)
    runtime.disable()
    return run_config(config, workload)


def _result_fingerprint(result: RunResult) -> Dict[str, Any]:
    """The fields that must be bit-identical with telemetry on or off."""
    return {
        "cycles": result.cycles,
        "delivered_packets": result.delivered_packets,
        "delivered_words": result.delivered_words,
        "gbps": result.gbps,
        "mpps": result.mpps,
        "per_port_packets": list(result.per_port_packets),
        "latency": dict(result.latency),
    }


def _check_overhead(bench_results: Optional[Path]) -> Tuple[bool, str]:
    """Disabled-mode overhead gate against the stored bench results.

    CI runs ``repro bench --quick`` earlier in the same job, so the
    stored ``kernel_bench.current`` quick-mode router timing is fresh
    and same-machine.  Re-time the router quick budget now (telemetry
    disabled) and require it within 5% plus an absolute noise floor.
    Skips (passes with a note) when no comparable reference exists.
    """
    from repro import bench

    path = bench_results if bench_results is not None else bench.DEFAULT_RESULTS_PATH
    data = bench.load_results(Path(path))
    kb = data.get("kernel_bench", {})
    ref = None
    for report in (kb.get("current"), kb.get("baseline", {}).get("quick")):
        if isinstance(report, dict) and report.get("mode") == "quick":
            for row in report.get("runs", []):
                if row.get("engine") == "router" and row.get("wall_s"):
                    ref = row["wall_s"]
                    break
        if ref is not None:
            break
    if ref is None:
        return True, ("overhead: skipped (no quick-mode router timing in "
                      f"{path}; run `repro bench --quick` first)")
    runtime.disable()
    row = bench.bench_engine("router", mode="quick", repeats=3)
    wall = row["wall_s"]
    limit = ref * 1.05 + 0.25  # 5% plus an absolute floor for timer noise
    detail = f"disabled-mode wall {wall:.3f}s vs reference {ref:.3f}s (limit {limit:.3f}s)"
    if wall > limit:
        return False, f"overhead: FAIL {detail}"
    return True, f"overhead: ok {detail}"


def _check(name: str, quick: bool, packets: Optional[int], seed: int,
           doc: Dict[str, Any], result: RunResult, tel: runtime.Telemetry,
           bench_results: Optional[Path],
           engine: Optional[str] = None,
           partitions: Optional[int] = None) -> int:
    failures = 0

    problems = validate_chrome_trace(doc)
    if problems:
        failures += 1
        print("schema: FAIL", file=sys.stderr)
        for p in problems[:20]:
            print(f"  {p}", file=sys.stderr)
    else:
        print(f"schema: ok ({len(doc['traceEvents'])} events)")

    result2, tel2, _ = run_traced(name, quick=quick, packets=packets, seed=seed,
                                  engine=engine, partitions=partitions)
    doc2 = chrome_trace(tel2, title=name,
                        ports=result2.config.ports if result2.config else 4)
    if canonical(doc) != canonical(doc2):
        failures += 1
        print("determinism: FAIL (same-seed runs exported different JSON)",
              file=sys.stderr)
    else:
        print("determinism: ok (two same-seed runs exported identical JSON)")

    plain = run_plain(name, quick=quick, packets=packets, seed=seed,
                      engine=engine, partitions=partitions)
    if _result_fingerprint(plain) != _result_fingerprint(result):
        failures += 1
        print("disabled-mode identity: FAIL (telemetry changed results)",
              file=sys.stderr)
    else:
        print("disabled-mode identity: ok (results bit-identical)")

    if tel.journeys.completed < 1 or not tel.journeys.detailed:
        failures += 1
        print("journeys: FAIL (no complete PacketJourney captured)",
              file=sys.stderr)
    else:
        print(f"journeys: ok ({tel.journeys.completed} complete, "
              f"{len(tel.journeys.detailed)} detailed)")

    ok, detail = _check_overhead(bench_results)
    print(detail, file=sys.stderr if not ok else sys.stdout)
    if not ok:
        failures += 1

    return 1 if failures else 0


def stage_stats(name: str, result: RunResult,
                tel: runtime.Telemetry) -> Dict[str, Any]:
    """The per-stage latency table as a schema-tagged JSON document
    (the ``--stats-out`` artifact; ``--baseline`` diffs two of these)."""
    stages = {}
    for s in STAGES:
        h = tel.journeys.stage_hist[s]
        stages[s] = {
            "count": h.count,
            "mean": h.mean,
            "p50": h.percentile(50),
            "p99": h.percentile(99),
            "max": h.max or 0,
        }
    return {
        "schema": TRACE_STATS_SCHEMA,
        "experiment": name,
        "gbps": result.gbps,
        "delivered_packets": result.delivered_packets,
        "cycles": result.cycles,
        "stages": stages,
    }


def diff_stage_stats(current: Dict[str, Any],
                     baseline: Dict[str, Any]) -> str:
    """Render a per-stage latency delta between two stage-stats docs,
    flagging the biggest relative mover."""
    for doc, label in ((current, "current"), (baseline, "baseline")):
        if doc.get("schema") != TRACE_STATS_SCHEMA:
            raise ValueError(
                f"{label} stats schema is {doc.get('schema')!r}, "
                f"expected {TRACE_STATS_SCHEMA!r}"
            )
    lines = [
        f"stage-latency diff vs baseline "
        f"({baseline.get('experiment', '?')}, "
        f"{baseline.get('delivered_packets', 0)} pkts)"
    ]
    biggest: Optional[Tuple[str, float]] = None
    for stage, cur in current.get("stages", {}).items():
        old = baseline.get("stages", {}).get(stage)
        if not old or not old.get("count") or not cur.get("count"):
            lines.append(f"  {stage:<9} (no overlap: missing samples)")
            continue
        delta = cur["mean"] - old["mean"]
        pct = 100.0 * delta / old["mean"] if old["mean"] else 0.0
        lines.append(
            f"  {stage:<9} mean {old['mean']:8.1f} -> {cur['mean']:8.1f} "
            f"cycles ({pct:+6.1f}%)   p99 {old['p99']:>6} -> {cur['p99']:>6}"
        )
        if stage != "total" and (biggest is None or abs(pct) > abs(biggest[1])):
            biggest = (stage, pct)
    if biggest is not None:
        direction = "slower" if biggest[1] > 0 else "faster"
        lines.append(
            f"  biggest mover: {biggest[0]} "
            f"({abs(biggest[1]):.1f}% {direction})"
        )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point behind ``python -m repro trace``."""
    name = args.experiment
    if name not in SPECS:
        print(f"unknown trace experiment {name!r}; "
              f"expected one of {tuple(SPECS)}", file=sys.stderr)
        return 2
    snapshot_interval = (
        args.snapshot_interval
        if args.snapshot_interval is not None
        else DEFAULT_SNAPSHOT_INTERVAL
    )
    engine = getattr(args, "engine", None)
    partitions = getattr(args, "partitions", None)
    result, tel, wall = run_traced(
        name, quick=args.quick, packets=args.packets, seed=args.seed,
        snapshot_interval=snapshot_interval,
        engine=engine, partitions=partitions,
    )
    ports = result.config.ports if result.config else 4
    doc = chrome_trace(tel, title=name, ports=ports)

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"wrote {out} (open at https://ui.perfetto.dev)")

    stats = stage_stats(name, result, tel)
    if getattr(args, "stats_out", None):
        stats_path = Path(args.stats_out)
        stats_path.parent.mkdir(parents=True, exist_ok=True)
        stats_path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
        print(f"wrote {stats_path} (schema {TRACE_STATS_SCHEMA})")

    print(f"{name}: {result.gbps:.3f} Gbps, "
          f"{result.delivered_packets} packets in {result.cycles} cycles")
    if tel.workers:
        print(f"merged {len(tel.workers)} worker recorders "
              f"(workers {', '.join(str(w) for w in sorted(tel.workers))})")
    print()
    print(render_stage_table(tel))

    if getattr(args, "baseline", None):
        try:
            baseline = json.loads(Path(args.baseline).read_text())
            diff = diff_stage_stats(stats, baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot diff against {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        print()
        print(diff)
    print()
    sim_events = result.extra.get("kernel_events")
    print(render_kernel_profile(tel, wall_s=wall, sim_events=sim_events))

    if args.summary:
        print()
        fp = tel.summary().get("fabric_fast_path")
        if fp:
            print(
                f"fabric fast path: cache {fp['cache_hits']} hits / "
                f"{fp['cache_misses']} misses "
                f"({fp['cache_hit_rate'] * 100:.1f}% hit rate), "
                f"{fp['ff_quanta']} quanta fast-forwarded"
            )
        print("event counts:")
        for kind, n in sorted(tel.events.counts_by_name().items()):
            print(f"  {kind:<16}{n:>10}")
        if tel.journeys.detailed:
            j = tel.journeys.detailed[0]
            print(f"journey j{j.jid}: port {j.src} -> {j.dst}, "
                  f"{j.size_bytes}B, {j.outcome} in {j.latency} cycles")
            for mark, cycle in j.marks:
                print(f"  {mark:<10}@ {cycle}")
        print("registry metrics: " + ", ".join(tel.registry.names()))

    if args.check:
        print()
        return _check(name, args.quick, args.packets, args.seed,
                      doc, result, tel,
                      Path(args.bench_results) if args.bench_results else None,
                      engine=engine, partitions=partitions)
    return 0
