"""The module-level recorder every instrumented site checks.

``RECORDER`` is ``None`` unless telemetry has been enabled, and every
hot-path site guards with a single truthiness check on a locally captured
reference::

    tel = self._tel            # captured once at construction
    ...
    if tel is not None:
        tel.events.emit(now, EV_PKT_HOP, subject)

so the disabled-mode cost is one ``is not None`` per site — results are
bit-identical because instrumentation never creates, reorders, or times
simulation events.

Enable telemetry *before* constructing engines/Simulators: they capture
the recorder reference at ``__init__`` time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from .events import EventLog
from .journey import JourneyTracker
from .profile import KernelProfile
from .registry import MetricsRegistry


class Telemetry:
    """Aggregate of the four telemetry components for one run."""

    def __init__(self, capacity: int = 65536, snapshot_interval: int = 0,
                 detail_limit: int = 64):
        self.events = EventLog(capacity=capacity)
        self.registry = MetricsRegistry(snapshot_interval=snapshot_interval)
        self.journeys = JourneyTracker(detail_limit=detail_limit)
        self.kernel = KernelProfile()

    # Convenience pass-throughs used by low-frequency sites.
    def count(self, name: str, delta: int = 1) -> None:
        self.registry.count(name, delta)

    def emit(self, cycle: int, kind: int, subject: str = "",
             data: Any = None) -> None:
        self.events.emit(cycle, kind, subject, data)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe rollup attached to sweep/chaos artifacts."""
        out = self._base_summary()
        hits = self.registry.read_gauge("fabric.alloc_cache.hits")
        misses = self.registry.read_gauge("fabric.alloc_cache.misses")
        ff = self.registry.read_gauge("fabric.fast_forward.quanta")
        if hits is not None or ff is not None:
            # The fabric fast path reported through its gauges (telemetry
            # forces the step loop, so ff_quanta is 0 here by design; the
            # allocation cache stays live and its hit rate is real).
            total = (hits or 0) + (misses or 0)
            out["fabric_fast_path"] = {
                "cache_hits": hits or 0,
                "cache_misses": misses or 0,
                "cache_hit_rate": (hits or 0) / total if total else 0.0,
                "ff_quanta": ff or 0,
            }
        windows = self.registry.read_gauge("space.windows")
        if windows is not None:
            # The space-partitioned engine's per-run counters (telemetry
            # forces its loud serial fallback, so workers/stalls describe
            # that in-process run; distributed runs attach the same shape
            # through RunResult.extra["space_shard"] instead).
            out["space_shard"] = {
                "windows": windows,
                "pipe_stall_s": self.registry.read_gauge("space.pipe_stall_s")
                or 0.0,
                "boundary_flits": self.registry.read_gauge(
                    "space.boundary_flits"
                )
                or 0,
                "partitions": self.registry.read_gauge("space.partitions")
                or 1,
                "serial_fallback": bool(
                    self.registry.read_gauge("space.serial_fallback")
                ),
            }
        return out

    def _base_summary(self) -> Dict[str, Any]:
        return {
            "events": {
                "emitted": self.events.emitted,
                "retained": len(self.events),
                "by_kind": self.events.counts_by_name(),
            },
            "metrics": self.registry.to_dict(),
            "journeys": {
                "completed": self.journeys.completed,
                "dropped": self.journeys.dropped,
                "in_flight": self.journeys.in_flight,
                "stage_histograms": {
                    s: h.to_dict()
                    for s, h in self.journeys.stage_hist.items()
                },
            },
            "kernel": self.kernel.to_dict(),
        }


#: The one global recorder; ``None`` means telemetry is off.
RECORDER: Optional[Telemetry] = None


def enable(capacity: int = 65536, snapshot_interval: int = 0,
           detail_limit: int = 64) -> Telemetry:
    """Install (and return) a fresh recorder."""
    global RECORDER
    RECORDER = Telemetry(capacity=capacity,
                         snapshot_interval=snapshot_interval,
                         detail_limit=detail_limit)
    return RECORDER


def disable() -> None:
    global RECORDER
    RECORDER = None


def get() -> Optional[Telemetry]:
    return RECORDER


@contextmanager
def capture(capacity: int = 65536, snapshot_interval: int = 0,
            detail_limit: int = 64):
    """Context manager: enable for the block, restore prior state after."""
    global RECORDER
    prev = RECORDER
    tel = enable(capacity=capacity, snapshot_interval=snapshot_interval,
                 detail_limit=detail_limit)
    try:
        yield tel
    finally:
        RECORDER = prev
