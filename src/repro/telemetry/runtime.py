"""The module-level recorder every instrumented site checks.

``RECORDER`` is ``None`` unless telemetry has been enabled, and every
hot-path site guards with a single truthiness check on a locally captured
reference::

    tel = self._tel            # captured once at construction
    ...
    if tel is not None:
        tel.events.emit(now, EV_PKT_HOP, subject)

so the disabled-mode cost is one ``is not None`` per site — results are
bit-identical because instrumentation never creates, reorders, or times
simulation events.

Enable telemetry *before* constructing engines/Simulators: they capture
the recorder reference at ``__init__`` time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from .events import EventLog
from .journey import JourneyTracker
from .profile import KernelProfile
from .registry import MetricsRegistry


class Telemetry:
    """Aggregate of the four telemetry components for one run.

    A ``Telemetry`` is also the unit of the *distributed* plane: each
    worker process records into its own local instance, ships
    :meth:`to_state` over the existing pipes, and the coordinator folds
    every state with :meth:`merge_state` -- associative and commutative
    in worker order -- into a view indistinguishable from a
    single-process run (plus per-worker provenance in ``workers``).
    """

    def __init__(self, capacity: int = 65536, snapshot_interval: int = 0,
                 detail_limit: int = 64):
        self.events = EventLog(capacity=capacity)
        self.registry = MetricsRegistry(snapshot_interval=snapshot_interval)
        self.journeys = JourneyTracker(detail_limit=detail_limit)
        self.kernel = KernelProfile()
        #: Provenance of merged worker states: worker id -> meta dict.
        self.workers: Dict[int, Dict[str, Any]] = {}

    # -- distributed merge ----------------------------------------------
    def config(self) -> Dict[str, int]:
        """The constructor arguments, for cloning into workers."""
        return {
            "capacity": self.events.capacity,
            "snapshot_interval": self.registry.snapshot_interval,
            "detail_limit": self.journeys.detail_limit,
        }

    def to_state(self, worker: Optional[int] = None,
                 meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Picklable recorder state; ``worker`` stamps provenance into
        events (origin), gauges (``w{n}.`` prefix), and snapshots."""
        return {
            "version": 1,
            "worker": worker,
            "meta": dict(meta or {}),
            "events": self.events.to_state(
                origin=0 if worker is None else worker + 1
            ),
            "registry": self.registry.to_state(worker=worker),
            "journeys": self.journeys.to_state(worker=worker),
            "kernel": self.kernel.to_state(),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold one worker's shipped state into this recorder."""
        self.events.merge_state(state["events"])
        self.registry.merge_state(state["registry"])
        self.journeys.merge_state(state["journeys"])
        self.kernel.merge_state(state["kernel"])
        worker = state.get("worker")
        if worker is not None:
            self.workers[worker] = dict(state.get("meta") or {})

    # Convenience pass-throughs used by low-frequency sites.
    def count(self, name: str, delta: int = 1) -> None:
        self.registry.count(name, delta)

    def emit(self, cycle: int, kind: int, subject: str = "",
             data: Any = None) -> None:
        self.events.emit(cycle, kind, subject, data)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe rollup attached to sweep/chaos artifacts."""
        out = self._base_summary()
        hits = self.registry.read_gauge("fabric.alloc_cache.hits")
        misses = self.registry.read_gauge("fabric.alloc_cache.misses")
        ff = self.registry.read_gauge("fabric.fast_forward.quanta")
        if hits is not None or ff is not None:
            # The fabric fast path reported through its gauges (telemetry
            # forces the step loop, so ff_quanta is 0 here by design; the
            # allocation cache stays live and its hit rate is real).
            total = (hits or 0) + (misses or 0)
            out["fabric_fast_path"] = {
                "cache_hits": hits or 0,
                "cache_misses": misses or 0,
                "cache_hit_rate": (hits or 0) / total if total else 0.0,
                "ff_quanta": ff or 0,
            }
        windows = self.registry.read_gauge("space.windows")
        if windows is not None:
            # The space-partitioned engine's per-run counters; distributed
            # runs fold worker recorders in and attach the same shape
            # through RunResult.extra["space_shard"] as well.
            out["space_shard"] = {
                "windows": windows,
                "pipe_stall_s": self.registry.read_gauge("space.pipe_stall_s")
                or 0.0,
                "boundary_flits": self.registry.read_gauge(
                    "space.boundary_flits"
                )
                or 0,
                "partitions": self.registry.read_gauge("space.partitions")
                or 1,
                "serial_fallback": bool(
                    self.registry.read_gauge("space.serial_fallback")
                ),
                "bytes_moved": self.registry.read_gauge("space.bytes_moved")
                or 0,
                "coalesced_rounds": self.registry.read_gauge(
                    "space.coalesced_rounds"
                )
                or 0,
            }
        return out

    def _base_summary(self) -> Dict[str, Any]:
        journeys: Dict[str, Any] = {
            "completed": self.journeys.completed,
            "dropped": self.journeys.dropped,
            "in_flight": self.journeys.in_flight,
            "stage_histograms": {
                s: h.to_dict()
                for s, h in self.journeys.stage_hist.items()
            },
        }
        if self.journeys.dim_hist:
            dims: Dict[str, Dict[str, Any]] = {}
            for (dim, label), h in sorted(self.journeys.dim_hist.items()):
                dims.setdefault(dim, {})[label] = h.to_dict()
            journeys["dimensions"] = dims
        out: Dict[str, Any] = {
            "events": {
                "emitted": self.events.emitted,
                "retained": len(self.events),
                "by_kind": self.events.counts_by_name(),
            },
            "metrics": self.registry.to_dict(),
            "journeys": journeys,
            "kernel": self.kernel.to_dict(),
        }
        if self.workers:
            out["workers"] = {
                str(w): meta for w, meta in sorted(self.workers.items())
            }
        return out


#: The one global recorder; ``None`` means telemetry is off.
RECORDER: Optional[Telemetry] = None


def enable(capacity: int = 65536, snapshot_interval: int = 0,
           detail_limit: int = 64) -> Telemetry:
    """Install (and return) a fresh recorder."""
    global RECORDER
    RECORDER = Telemetry(capacity=capacity,
                         snapshot_interval=snapshot_interval,
                         detail_limit=detail_limit)
    return RECORDER


def disable() -> None:
    global RECORDER
    RECORDER = None


def get() -> Optional[Telemetry]:
    return RECORDER


@contextmanager
def capture(capacity: int = 65536, snapshot_interval: int = 0,
            detail_limit: int = 64):
    """Context manager: enable for the block, restore prior state after."""
    global RECORDER
    prev = RECORDER
    tel = enable(capacity=capacity, snapshot_interval=snapshot_interval,
                 detail_limit=detail_limit)
    try:
        yield tel
    finally:
        RECORDER = prev
