"""Metrics registry: counters, gauges, and log-bucketed histograms in a
flat dotted namespace, with periodic snapshotting on a cycle interval.

The registry replaces ad-hoc tallies as the *queryable* surface: the
existing stat dataclasses (``RouterStats``, ``ResilienceMetrics``) keep
their public APIs, but register callable gauge views here so every number
is reachable by one flat name (``fabric.tokens_passed``,
``ingress.0.queue_depth``, ``kernel.events_dispatched``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: Number of log buckets; covers values up to 2**47 cycles.
HIST_BUCKETS = 48


class LogHistogram:
    """HDR-style fixed-size log-bucketed histogram of non-negative ints.

    Bucket ``i`` holds values whose bit length is ``i`` (bucket 0 holds
    value 0), i.e. bucket boundaries are powers of two.  Fixed-size
    arrays, never per-sample lists, so recording is O(1) and memory is
    constant regardless of sample count.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: List[int] = [0] * HIST_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.buckets[value.bit_length()] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket containing the p-th percentile,
        clamped to the observed max (so p50 never exceeds max)."""
        if not self.count:
            return 0
        target = p / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target and n:
                bound = 0 if i == 0 else (1 << i) - 1
                return bound if self.max is None else min(bound, self.max)
        return self.max or 0

    def nonzero_buckets(self) -> List[Dict[str, int]]:
        out = []
        for i, n in enumerate(self.buckets):
            if n:
                lo = 0 if i == 0 else 1 << (i - 1)
                hi = 0 if i == 0 else (1 << i) - 1
                out.append({"lo": lo, "hi": hi, "count": n})
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": self.nonzero_buckets(),
        }


class MetricsRegistry:
    """Flat-namespace counters/gauges/histograms + periodic snapshots."""

    def __init__(self, snapshot_interval: int = 0):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._hists: Dict[str, LogHistogram] = {}
        #: Cycle interval between snapshots; 0 disables periodic capture.
        self.snapshot_interval = snapshot_interval
        self.snapshots: List[Dict[str, Any]] = []
        self._next_snapshot = snapshot_interval if snapshot_interval else None

    # -- counters -------------------------------------------------------
    def count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a callable view; evaluated lazily at snapshot time."""
        self._gauges[name] = fn

    def set_gauge(self, name: str, value: Any) -> None:
        self._gauges[name] = lambda v=value: v

    def read_gauge(self, name: str) -> Any:
        fn = self._gauges.get(name)
        return fn() if fn is not None else None

    # -- histograms -----------------------------------------------------
    def histogram(self, name: str) -> LogHistogram:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = LogHistogram()
        return h

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).record(value)

    # -- snapshots ------------------------------------------------------
    def maybe_snapshot(self, cycle: int) -> None:
        """Capture a snapshot if ``cycle`` crossed the next boundary."""
        nxt = self._next_snapshot
        if nxt is None or cycle < nxt:
            return
        self.snapshot(cycle)
        interval = self.snapshot_interval
        # Catch up past boundaries without emitting duplicates.
        boundary = nxt + interval
        while boundary <= cycle:
            boundary += interval
        self._next_snapshot = boundary

    def snapshot(self, cycle: int) -> Dict[str, Any]:
        snap: Dict[str, Any] = {"cycle": cycle}
        values: Dict[str, Any] = dict(self._counters)
        for name, fn in self._gauges.items():
            try:
                values[name] = fn()
            except Exception:
                values[name] = None
        snap["values"] = values
        self.snapshots.append(snap)
        return snap

    # -- export ---------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._hists)
        )

    def to_dict(self) -> Dict[str, Any]:
        values: Dict[str, Any] = dict(self._counters)
        for name, fn in self._gauges.items():
            try:
                values[name] = fn()
            except Exception:
                values[name] = None
        return {
            "values": {k: values[k] for k in sorted(values)},
            "histograms": {
                k: self._hists[k].to_dict() for k in sorted(self._hists)
            },
            "snapshots": self.snapshots,
        }
