"""Metrics registry: counters, gauges, and log-bucketed histograms in a
flat dotted namespace, with periodic snapshotting on a cycle interval.

The registry replaces ad-hoc tallies as the *queryable* surface: the
existing stat dataclasses (``RouterStats``, ``ResilienceMetrics``) keep
their public APIs, but register callable gauge views here so every number
is reachable by one flat name (``fabric.tokens_passed``,
``ingress.0.queue_depth``, ``kernel.events_dispatched``).

Every component here is *mergeable*: :meth:`LogHistogram.to_state` /
:meth:`LogHistogram.merge_state` and the registry-level pair fold
worker-local recorders into one coordinator view (counters and
histograms sum, gauges are shipped by value under a ``w{worker}.``
prefix, snapshots interleave by cycle).  The merge is associative and
commutative in worker order, mirroring ``FabricStats.add_counters``.
Gauges registered *volatile* (wall-clock or otherwise nondeterministic)
are excluded from snapshots, ``to_dict`` and shipped state so exports
stay bit-deterministic; they remain readable via :meth:`read_gauge`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: Number of log buckets; covers values up to 2**47 cycles.
HIST_BUCKETS = 48


class LogHistogram:
    """HDR-style fixed-size log-bucketed histogram of non-negative ints.

    Bucket ``i`` holds values whose bit length is ``i`` (bucket 0 holds
    value 0), i.e. bucket boundaries are powers of two.  Fixed-size
    arrays, never per-sample lists, so recording is O(1) and memory is
    constant regardless of sample count.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: List[int] = [0] * HIST_BUCKETS
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.buckets[value.bit_length()] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Linear interpolation within the bucket containing the p-th
        percentile, clamped into ``[min, max]`` (the previous
        bucket-upper-bound answer overstated tails by up to 2x)."""
        if not self.count:
            return 0
        target = p / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= target:
                lo = 0 if i == 0 else 1 << (i - 1)
                hi = 0 if i == 0 else (1 << i) - 1
                frac = max(0.0, min(1.0, (target - seen) / n))
                value = lo + int((hi - lo) * frac)
                if self.min is not None and value < self.min:
                    value = self.min
                if self.max is not None and value > self.max:
                    value = self.max
                return value
            seen += n
        return self.max or 0

    def nonzero_buckets(self) -> List[Dict[str, int]]:
        out = []
        for i, n in enumerate(self.buckets):
            if n:
                lo = 0 if i == 0 else 1 << (i - 1)
                hi = 0 if i == 0 else (1 << i) - 1
                out.append({"lo": lo, "hi": hi, "count": n})
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": self.nonzero_buckets(),
        }

    # -- distributed merge ----------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """Picklable value capturing every accumulated sample."""
        return {
            "buckets": [[i, n] for i, n in enumerate(self.buckets) if n],
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's state in (associative, commutative)."""
        for i, n in state["buckets"]:
            self.buckets[i] += n
        self.count += state["count"]
        self.total += state["total"]
        smin, smax = state["min"], state["max"]
        if smin is not None and (self.min is None or smin < self.min):
            self.min = smin
        if smax is not None and (self.max is None or smax > self.max):
            self.max = smax

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LogHistogram":
        h = cls()
        h.merge_state(state)
        return h


class MetricsRegistry:
    """Flat-namespace counters/gauges/histograms + periodic snapshots."""

    def __init__(self, snapshot_interval: int = 0):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._hists: Dict[str, LogHistogram] = {}
        #: Gauge names whose values are nondeterministic (wall-clock);
        #: excluded from snapshots, ``to_dict`` and shipped state.
        self._volatile: set = set()
        #: Cycle interval between snapshots; 0 disables periodic capture.
        self.snapshot_interval = snapshot_interval
        self.snapshots: List[Dict[str, Any]] = []
        self._next_snapshot = snapshot_interval if snapshot_interval else None

    # -- counters -------------------------------------------------------
    def count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- gauges ---------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], Any],
              volatile: bool = False) -> None:
        """Register a callable view; evaluated lazily at snapshot time."""
        self._gauges[name] = fn
        if volatile:
            self._volatile.add(name)
        else:
            self._volatile.discard(name)

    def set_gauge(self, name: str, value: Any, volatile: bool = False) -> None:
        self._gauges[name] = lambda v=value: v
        if volatile:
            self._volatile.add(name)
        else:
            self._volatile.discard(name)

    def read_gauge(self, name: str) -> Any:
        fn = self._gauges.get(name)
        return fn() if fn is not None else None

    # -- histograms -----------------------------------------------------
    def histogram(self, name: str) -> LogHistogram:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = LogHistogram()
        return h

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).record(value)

    # -- snapshots ------------------------------------------------------
    def maybe_snapshot(self, cycle: int) -> None:
        """Capture a snapshot if ``cycle`` crossed the next boundary."""
        nxt = self._next_snapshot
        if nxt is None or cycle < nxt:
            return
        self.snapshot(cycle)
        interval = self.snapshot_interval
        # Catch up past boundaries without emitting duplicates.
        boundary = nxt + interval
        while boundary <= cycle:
            boundary += interval
        self._next_snapshot = boundary

    def snapshot(self, cycle: int) -> Dict[str, Any]:
        snap: Dict[str, Any] = {"cycle": cycle}
        snap["values"] = self._values()
        self.snapshots.append(snap)
        return snap

    def _values(self) -> Dict[str, Any]:
        """Counters plus non-volatile gauge readings."""
        values: Dict[str, Any] = dict(self._counters)
        for name, fn in self._gauges.items():
            if name in self._volatile:
                continue
            try:
                values[name] = fn()
            except Exception:
                values[name] = None
        return values

    # -- export ---------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._hists)
        )

    def to_dict(self) -> Dict[str, Any]:
        values = self._values()
        return {
            "values": {k: values[k] for k in sorted(values)},
            "histograms": {
                k: self._hists[k].to_dict() for k in sorted(self._hists)
            },
            "snapshots": self.snapshots,
        }

    # -- distributed merge ----------------------------------------------
    def to_state(self, worker: Optional[int] = None) -> Dict[str, Any]:
        """Picklable registry state for shipping to a coordinator.

        ``worker`` stamps provenance: gauges are renamed under a
        ``w{worker}.`` prefix (worker gauges are per-process views, not
        summable quantities) and snapshots gain a ``worker`` key so the
        trace exporter can lay them out as per-worker tracks.  Counters
        and histograms ship unprefixed -- they sum across workers.
        """
        prefix = "" if worker is None else f"w{worker}."
        gauges: Dict[str, Any] = {}
        for name, fn in self._gauges.items():
            if name in self._volatile:
                continue
            try:
                gauges[prefix + name] = fn()
            except Exception:
                gauges[prefix + name] = None
        snaps = [dict(s) for s in self.snapshots]
        if worker is not None:
            for s in snaps:
                s.setdefault("worker", worker)
        return {
            "counters": dict(self._counters),
            "gauges": gauges,
            "hists": {k: h.to_state() for k, h in self._hists.items()},
            "snapshots": snaps,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a shipped state in: counters/histograms sum, gauges are
        installed by value, snapshots interleave by ``(cycle, worker)``.
        Associative and commutative over states with distinct workers."""
        for name, delta in state["counters"].items():
            self.count(name, delta)
        for name, value in state["gauges"].items():
            self.set_gauge(name, value)
        for name, hs in state["hists"].items():
            self.histogram(name).merge_state(hs)
        if state["snapshots"]:
            self.snapshots.extend(dict(s) for s in state["snapshots"])
            self.snapshots.sort(
                key=lambda s: (s["cycle"], s.get("worker", -1))
            )
