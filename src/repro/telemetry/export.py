"""Exporters: Chrome-trace/Perfetto JSON and terminal tables.

The Chrome trace format (``chrome://tracing`` / https://ui.perfetto.dev)
is a JSON object with a ``traceEvents`` list.  We map one simulated cycle
to one microsecond of trace time, model router ports and the fabric as
tracks (process/thread metadata events), render packet journeys as async
spans (``b``/``e`` pairs keyed by journey id) with per-stage complete
(``X``) slices, and low-frequency events (crossbar reconfigurations,
token passes, faults, drops) as instants.

Exported JSON never contains wall-clock-derived values: two runs with the
same seed must serialize byte-identically (the golden exporter test and
``repro trace --check`` both rely on this).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .events import (
    EV_FAULT_INJECT,
    EV_FAULT_RECOVER,
    EV_LINK_DOWN,
    EV_LINK_UP,
    EV_PKT_DROP,
    EV_TOKEN_PASS,
    EV_TOKEN_RESET,
    EV_XBAR_CONFIG,
    KIND_NAMES,
)
from .journey import STAGES
from .runtime import Telemetry

TRACE_SCHEMA = "repro-chrome-trace/1"

PID_ROUTER = 1
TID_FABRIC = 100
TID_FAULTS = 101
#: Worker ``w``'s merged telemetry renders as process ``1000 + w`` so
#: distributed captures show one track group per worker.
PID_WORKER_BASE = 1000

#: Event kinds rendered as instant marks on the fabric/fault tracks.
_INSTANT_KINDS = {
    EV_XBAR_CONFIG: TID_FABRIC,
    EV_TOKEN_PASS: TID_FABRIC,
    EV_TOKEN_RESET: TID_FABRIC,
    EV_FAULT_INJECT: TID_FAULTS,
    EV_FAULT_RECOVER: TID_FAULTS,
    EV_LINK_DOWN: TID_FAULTS,
    EV_LINK_UP: TID_FAULTS,
    EV_PKT_DROP: TID_FAULTS,
}

#: Cap instant events in the export so huge runs stay loadable.
MAX_INSTANTS = 20000


def _meta(pid: int, tid: Optional[int], key: str, name: str) -> Dict[str, Any]:
    ev: Dict[str, Any] = {
        "ph": "M", "pid": pid, "name": key, "args": {"name": name},
    }
    if tid is not None:
        ev["tid"] = tid
    return ev


def chrome_trace(tel: Telemetry, title: str = "repro",
                 ports: int = 4) -> Dict[str, Any]:
    """Build a Chrome-trace document from a completed telemetry capture."""
    events: List[Dict[str, Any]] = []
    events.append(_meta(PID_ROUTER, None, "process_name", f"router:{title}"))
    for p in range(ports):
        events.append(_meta(PID_ROUTER, p, "thread_name", f"port {p}"))
    events.append(_meta(PID_ROUTER, TID_FABRIC, "thread_name", "fabric"))
    events.append(_meta(PID_ROUTER, TID_FAULTS, "thread_name", "faults/drops"))

    # One extra process track per merged worker recorder; its tagged
    # snapshots render as counters on that track.
    snap_workers = {
        s["worker"] for s in tel.registry.snapshots
        if s.get("worker") is not None
    }
    for w in sorted(set(tel.workers) | snap_workers):
        meta = tel.workers.get(w, {})
        label = f"worker {w}"
        if meta:
            label += " (" + ", ".join(
                f"{k}={v}" for k, v in sorted(meta.items())
            ) + ")"
        events.append(_meta(PID_WORKER_BASE + w, None, "process_name", label))

    body: List[Dict[str, Any]] = []

    # Journeys: async span per packet plus per-stage complete slices.
    for j in tel.journeys.detailed:
        tid = j.src if 0 <= j.src < ports else 0
        name = f"pkt j{j.jid} {j.src}->{j.dst}"
        args = {
            "jid": j.jid, "src": j.src, "dst": j.dst,
            "size_bytes": j.size_bytes, "outcome": j.outcome,
            "hops": j.hops,
        }
        body.append({
            "ph": "b", "cat": "journey", "id": j.jid, "name": name,
            "pid": PID_ROUTER, "tid": tid, "ts": j.arrive, "args": args,
        })
        body.append({
            "ph": "e", "cat": "journey", "id": j.jid, "name": name,
            "pid": PID_ROUTER, "tid": tid, "ts": max(j.depart, j.arrive),
        })
        marks = dict(j.marks)
        bounds = [("ingress", j.arrive, marks.get("enqueue")),
                  ("fabric", marks.get("enqueue"), marks.get("last_hop")),
                  ("egress", marks.get("last_hop"),
                   j.depart if j.outcome == "delivered" else None)]
        for stage, start, end in bounds:
            if start is None or end is None or end < start:
                continue
            body.append({
                "ph": "X", "cat": "stage", "name": stage,
                "pid": PID_ROUTER, "tid": tid,
                "ts": start, "dur": end - start, "args": {"jid": j.jid},
            })

    # Low-frequency instants from the event ring.
    instants = 0
    for ev in tel.events.events():
        tid = _INSTANT_KINDS.get(ev.kind)
        if tid is None:
            continue
        if instants >= MAX_INSTANTS:
            break
        instants += 1
        args: Dict[str, Any] = {}
        if ev.subject:
            args["subject"] = ev.subject
        if ev.data is not None:
            args["data"] = ev.data
        if ev.origin:
            args["worker"] = ev.origin - 1
        body.append({
            "ph": "i", "cat": "event", "name": KIND_NAMES[ev.kind],
            "pid": PID_ROUTER, "tid": tid, "ts": ev.cycle, "s": "t",
            "args": args,
        })

    # Registry snapshots as counter tracks (numeric values only);
    # worker-tagged snapshots land on that worker's process track.
    for snap in tel.registry.snapshots:
        w = snap.get("worker")
        pid = PID_ROUTER if w is None else PID_WORKER_BASE + w
        for name, value in sorted(snap["values"].items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            body.append({
                "ph": "C", "cat": "metric", "name": name,
                "pid": pid, "ts": snap["cycle"],
                "args": {"value": value},
            })

    body.sort(key=lambda e: (e["ts"], e["ph"] != "b"))
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "title": title,
            "cycle_unit": "1 cycle == 1us trace time",
            "stage_histograms": {
                s: tel.journeys.stage_hist[s].to_dict() for s in STAGES
            },
            "kernel_profile": tel.kernel.to_dict(),
            "metrics": tel.registry.to_dict(),
            **(
                {
                    "dimensions": {
                        f"{d}:{l}": h.to_dict()
                        for (d, l), h in sorted(tel.journeys.dim_hist.items())
                    },
                    "workers": {
                        str(w): dict(m)
                        for w, m in sorted(tel.workers.items())
                    },
                }
                if tel.workers or tel.journeys.dim_hist
                else {}
            ),
        },
    }


def canonical(doc: Dict[str, Any]) -> str:
    """Canonical serialization used for determinism comparisons."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Return a list of schema problems; empty list means valid."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    last_ts: Optional[float] = None
    open_spans: Dict[Any, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph is None:
            problems.append(f"event {i} missing 'ph'")
            continue
        if "pid" not in ev or "name" not in ev:
            problems.append(f"event {i} ({ph}) missing pid/name")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"event {i} ({ph}) missing numeric 'ts'")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i}: ts {ts} not monotonic (prev {last_ts})"
            )
        last_ts = ts
        if ph == "X" and "dur" not in ev:
            problems.append(f"event {i}: X event missing 'dur'")
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"))
            if key[1] is None:
                problems.append(f"event {i}: async event missing 'id'")
                continue
            if ph == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                n = open_spans.get(key, 0)
                if n <= 0:
                    problems.append(f"event {i}: 'e' without matching 'b' {key}")
                else:
                    open_spans[key] = n - 1
    for key, n in open_spans.items():
        if n:
            problems.append(f"async span {key} left open ({n} unmatched 'b')")
    return problems


# -- terminal rendering -------------------------------------------------

def render_stage_table(tel: Telemetry) -> str:
    """Per-stage latency table (cycles) from the journey histograms."""
    lines = [
        "stage latency (cycles)",
        f"{'stage':<9}{'count':>8}{'mean':>10}{'p50':>8}{'p99':>8}{'max':>8}",
    ]
    for stage in STAGES:
        h = tel.journeys.stage_hist[stage]
        lines.append(
            f"{stage:<9}{h.count:>8}{h.mean:>10.1f}"
            f"{h.percentile(50):>8}{h.percentile(99):>8}"
            f"{(h.max or 0):>8}"
        )
    jt = tel.journeys
    lines.append(
        f"journeys: {jt.completed} delivered, {jt.dropped} dropped, "
        f"{jt.in_flight} in flight"
    )
    return "\n".join(lines)


def render_dim_table(tel: Telemetry, dim: str) -> str:
    """Per-label journey-latency table for one dimension (``"port"`` or
    ``"class"``); empty string when the dimension has no samples."""
    rows = [
        (label, tel.journeys.dim_hist[(dim, label)])
        for label in tel.journeys.dim_labels(dim)
    ]
    if not rows:
        return ""
    lines = [
        f"{dim} journey latency (cycles)",
        f"{dim:<9}{'count':>8}{'mean':>10}{'p50':>8}{'p99':>8}{'max':>8}",
    ]
    for label, h in rows:
        lines.append(
            f"{label:<9}{h.count:>8}{h.mean:>10.1f}"
            f"{h.percentile(50):>8}{h.percentile(99):>8}"
            f"{(h.max or 0):>8}"
        )
    return "\n".join(lines)


def render_kernel_profile(tel: Telemetry, wall_s: Optional[float] = None,
                          sim_events: Optional[int] = None) -> str:
    """Kernel self-profile table; wall-clock figures stay terminal-only."""
    prof = tel.kernel
    mix = prof.burst_mix()
    lines = ["kernel self-profile"]
    if wall_s is not None and sim_events is not None and wall_s > 0:
        lines.append(
            f"  dispatch rate     : {sim_events / wall_s:>12,.0f} events/s"
            f"  ({sim_events:,} events in {wall_s:.3f}s)"
        )
    total_ops = mix["word_ops"] + mix["burst_ops"]
    if total_ops:
        pct = 100.0 * mix["burst_ops"] / total_ops
        lines.append(
            f"  channel op mix    : {mix['word_ops']:,} word / "
            f"{mix['burst_ops']:,} burst ({pct:.1f}% burst)"
        )
    lines.append(f"  timeouts          : {mix['timeouts']:,}")
    lines.append(
        f"  calendar buckets  : {prof.bucket_drains:,} drains, "
        f"mean occupancy {prof.mean_bucket_occupancy:.2f}, "
        f"peak bucket {prof.bucket_peak}, peak wheel {prof.wheel_peak}"
    )
    lines.append(f"  far-heap spills   : {prof.far_spills:,}")
    return "\n".join(lines)
