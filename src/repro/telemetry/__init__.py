"""Unified telemetry layer: event tracing, packet journeys, metrics
registry, and kernel self-profiling.

Disabled by default; ``runtime.enable()`` (or the ``repro trace`` CLI /
``--telemetry`` flags) installs a module-level recorder that every
instrumented site guards with one truthiness check.  See DESIGN.md §9.
"""

from .events import EventLog, KIND_NAMES
from .export import canonical, chrome_trace, validate_chrome_trace
from .journey import JourneyTracker, PacketJourney
from .profile import KernelProfile
from .registry import LogHistogram, MetricsRegistry
from .runtime import Telemetry, capture, disable, enable, get

__all__ = [
    "EventLog",
    "KIND_NAMES",
    "JourneyTracker",
    "PacketJourney",
    "KernelProfile",
    "LogHistogram",
    "MetricsRegistry",
    "Telemetry",
    "capture",
    "disable",
    "enable",
    "get",
    "chrome_trace",
    "canonical",
    "validate_chrome_trace",
]
