"""``python -m repro top``: a live terminal view of a running capture.

``repro trace`` renders a capture after the run; ``repro top`` watches
one *while it executes*.  The experiment runs in a background thread
with telemetry enabled and the foreground loop re-renders a table every
``--interval`` seconds: per-stage journey latency (p50/p99), per-port
and per-class latency dimensions, and -- for distributed space runs --
one row per worker built from the live telemetry states the workers
stream back between token-window rounds.

Two sources feed the table:

* **Local engines** (router/fabric/wordlevel, or space with one
  partition) record into the process-global recorder, which the render
  loop reads directly -- histograms and counters are plain ints, so a
  concurrent read is safe and at worst one sample stale.
* **Distributed space runs** stream whole worker states over the
  command pipes (:class:`~repro.parallel.space_shard.SpaceWorkerPool`'s
  ``on_snapshot``).  The collector keeps the latest state per worker
  and each frame folds them into a scratch
  :class:`~repro.telemetry.runtime.Telemetry` -- the same associative
  merge the end-of-run path uses, so the live view and the final table
  agree by construction.

``--frames N`` and ``--once`` exist for scripting/CI: a bounded number
of refreshes, or no live rendering at all (one final table, no ANSI).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.engines import run_config

from . import runtime
from .export import render_dim_table, render_stage_table

#: ANSI: clear screen, cursor home (the classic ``top`` refresh).
CLEAR = "\x1b[2J\x1b[H"


class SnapCollector:
    """Keeps the latest streamed telemetry state per worker.

    Each worker's snap *replaces* its previous one (states are
    cumulative, not deltas), so folding the latest set yields a
    consistent point-in-time view of the whole fleet.
    """

    def __init__(self):
        self._states: Dict[int, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    def __call__(self, part_id: int, state: Dict[str, Any]) -> None:
        with self._lock:
            self._states[part_id] = state

    @property
    def seen(self) -> int:
        with self._lock:
            return len(self._states)

    def merged(self) -> Optional[runtime.Telemetry]:
        """Fold the latest per-worker states into a scratch recorder."""
        with self._lock:
            states = [self._states[w] for w in sorted(self._states)]
        if not states:
            return None
        tel = runtime.Telemetry()
        for state in states:
            tel.merge_state(state)
        tel.journeys.finalize()
        return tel


def render_worker_table(tel: runtime.Telemetry) -> str:
    """One row per merged worker: progress meta plus its shipped
    ``w{n}.``-prefixed gauges (delivered words/packets, blocked)."""
    if not tel.workers:
        return ""
    lines = [
        "workers",
        f"{'worker':<8}{'meta':<34}{'pkts':>10}{'words':>12}{'blocked':>9}",
    ]
    for w in sorted(tel.workers):
        meta = tel.workers[w]
        desc = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        pkts = tel.registry.read_gauge(f"w{w}.space.delivered_packets")
        words = tel.registry.read_gauge(f"w{w}.space.delivered_words")
        blocked = tel.registry.read_gauge(f"w{w}.space.blocked_events")
        lines.append(
            f"{w:<8}{desc[:33]:<34}"
            f"{pkts if pkts is not None else '-':>10}"
            f"{words if words is not None else '-':>12}"
            f"{blocked if blocked is not None else '-':>9}"
        )
    return "\n".join(lines)


def render_top(tel: runtime.Telemetry, title: str, elapsed: float,
               final: bool = False) -> str:
    """The full ``repro top`` frame for one recorder."""
    j = tel.journeys
    state = "final" if final else "live"
    lines: List[str] = [
        f"repro top -- {title} [{state}, {elapsed:.1f}s] "
        f"{j.completed} delivered / {j.dropped} dropped / "
        f"{j.in_flight} in flight",
        "",
        render_stage_table(tel),
    ]
    for dim in ("class", "port"):
        table = render_dim_table(tel, dim)
        if table:
            lines.append("")
            lines.append(table)
    workers = render_worker_table(tel)
    if workers:
        lines.append("")
        lines.append(workers)
    return "\n".join(lines)


def main(args) -> int:
    """Entry point behind ``python -m repro top``."""
    from .traced import (
        DEFAULT_SNAPSHOT_INTERVAL,
        SPECS,
        _spec_config,
        _spec_workload,
    )

    name = args.experiment
    if name not in SPECS:
        print(f"unknown experiment {name!r}; expected one of {tuple(SPECS)}",
              file=sys.stderr)
        return 2
    spec = SPECS[name]
    engine = getattr(args, "engine", None)
    partitions = getattr(args, "partitions", None)
    try:
        config = _spec_config(spec, args.seed, engine, partitions)
        workload = _spec_workload(spec, args.quick, None, engine)
    except (TypeError, ValueError) as exc:
        print(f"cannot configure {name}: {exc}", file=sys.stderr)
        return 2

    collector = SnapCollector()
    box: Dict[str, Any] = {}

    def _run() -> None:
        with runtime.capture(
            snapshot_interval=DEFAULT_SNAPSHOT_INTERVAL
        ) as tel:
            box["tel"] = tel
            try:
                if config.fidelity == "space":
                    from repro.engines import SpaceEngine

                    eng = SpaceEngine(config)
                    eng.on_snapshot = collector
                    box["result"] = eng.run(workload)
                else:
                    box["result"] = run_config(config, workload)
            except BaseException as exc:  # rendered by the foreground loop
                box["error"] = exc

    worker = threading.Thread(target=_run, daemon=True, name="repro-top-run")
    t0 = time.perf_counter()
    worker.start()
    frames = 0
    max_frames = getattr(args, "frames", 0) or 0
    live = not getattr(args, "once", False)
    try:
        while worker.is_alive():
            worker.join(timeout=max(0.05, args.interval))
            if not live or (max_frames and frames >= max_frames):
                continue
            tel = collector.merged() or box.get("tel")
            if tel is None:
                continue
            frames += 1
            sys.stdout.write(
                CLEAR + render_top(tel, name, time.perf_counter() - t0) + "\n"
            )
            sys.stdout.flush()
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130
    elapsed = time.perf_counter() - t0
    if "error" in box:
        print(f"run failed: {box['error']}", file=sys.stderr)
        return 1
    tel = box.get("tel")
    if tel is None:  # pragma: no cover - thread never started the capture
        print("no telemetry captured", file=sys.stderr)
        return 1
    out = render_top(tel, name, elapsed, final=True)
    sys.stdout.write((CLEAR if live and frames else "") + out + "\n")
    result = box.get("result")
    if result is not None:
        print(f"\n{name}: {result.gbps:.3f} Gbps, "
              f"{result.delivered_packets} packets in {result.cycles} cycles")
    return 0
