"""Resilience measurement: MTTR, goodput under faults, drop taxonomy.

Every engine that runs a :class:`~repro.faults.plan.FaultPlan` records
into one :class:`ResilienceMetrics`: which faults were injected (and
which missed, e.g. a corruption aimed at an empty channel), when each
recovery completed, and why packets died.  The headline numbers:

* **MTTR** -- mean cycles from fault injection to restored service
  (token regenerated, link back up, degraded routing converged);
* **goodput ratio** -- delivered/offered, the FlexCross-style "how much
  of the traffic survived" measure;
* **drop taxonomy** -- drops by cause (``corrupt``, ``dead_port``,
  ``line``, ...), so a chaos run's losses are attributable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class RecoveryRecord:
    """One fault's detection/recovery timeline, in cycles."""

    kind: str
    target: str
    injected_at: int
    recovered_at: Optional[int] = None

    @property
    def recovery_cycles(self) -> Optional[int]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": self.target,
            "injected_at": self.injected_at,
            "recovered_at": self.recovered_at,
            "recovery_cycles": self.recovery_cycles,
        }


@dataclass
class ResilienceMetrics:
    """Aggregated fault/recovery/drop accounting for one run."""

    recoveries: List[RecoveryRecord] = field(default_factory=list)
    drops: Dict[str, int] = field(default_factory=dict)
    faults_injected: int = 0
    faults_missed: int = 0  #: events that found nothing to corrupt/affect
    offered_words: int = 0
    delivered_words: int = 0

    # -- recording ------------------------------------------------------
    def record_fault(
        self, cycle: int, kind: str, target: str, applied: bool = True
    ) -> RecoveryRecord:
        """Note an injection; returns the open recovery record."""
        if applied:
            self.faults_injected += 1
        else:
            self.faults_missed += 1
        rec = RecoveryRecord(kind=kind, target=target, injected_at=cycle)
        self.recoveries.append(rec)
        return rec

    def record_recovery(self, rec: RecoveryRecord, cycle: int) -> None:
        rec.recovered_at = cycle

    def close_open(self, kind: str, target: str, cycle: int) -> None:
        """Close the oldest still-open recovery matching kind/target."""
        for rec in self.recoveries:
            if rec.recovered_at is None and rec.kind == kind and rec.target == target:
                rec.recovered_at = cycle
                return

    def record_drop(self, cause: str, count: int = 1) -> None:
        self.drops[cause] = self.drops.get(cause, 0) + count

    # -- headline numbers ----------------------------------------------
    @property
    def mttr_cycles(self) -> Optional[float]:
        """Mean time to recovery over completed recoveries, or None."""
        done = [r.recovery_cycles for r in self.recoveries if r.recovery_cycles is not None]
        if not done:
            return None
        return sum(done) / len(done)

    @property
    def max_recovery_cycles(self) -> Optional[int]:
        done = [r.recovery_cycles for r in self.recoveries if r.recovery_cycles is not None]
        return max(done) if done else None

    @property
    def unrecovered(self) -> int:
        """Faults never detected/recovered by the end of a run.  Every
        kind has a closing event (even ``port_down`` closes when routing
        reconverges), so a nonzero value flags a recovery bug."""
        return sum(1 for r in self.recoveries if r.recovered_at is None)

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    @property
    def goodput_ratio(self) -> Optional[float]:
        """Delivered/offered words, when the engine tracked offered load."""
        if self.offered_words <= 0:
            return None
        return self.delivered_words / self.offered_words

    def register_views(self, registry, prefix: str = "resilience") -> None:
        """Expose the headline numbers as live gauges in a telemetry
        :class:`~repro.telemetry.registry.MetricsRegistry` (callable
        views over this dataclass; the public API is unchanged)."""
        for name, fn in {
            f"{prefix}.faults_injected": lambda: self.faults_injected,
            f"{prefix}.faults_missed": lambda: self.faults_missed,
            f"{prefix}.unrecovered": lambda: self.unrecovered,
            f"{prefix}.total_drops": lambda: self.total_drops,
            f"{prefix}.mttr_cycles": lambda: self.mttr_cycles,
            f"{prefix}.goodput_ratio": lambda: self.goodput_ratio,
        }.items():
            registry.gauge(name, fn)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults_injected": self.faults_injected,
            "faults_missed": self.faults_missed,
            "mttr_cycles": self.mttr_cycles,
            "max_recovery_cycles": self.max_recovery_cycles,
            "unrecovered": self.unrecovered,
            "drops": dict(self.drops),
            "total_drops": self.total_drops,
            "offered_words": self.offered_words,
            "delivered_words": self.delivered_words,
            "goodput_ratio": self.goodput_ratio,
            "recoveries": [r.to_dict() for r in self.recoveries],
        }
