"""Per-tile utilization from kernel traces (thesis Fig 7-3).

Fig 7-3 plots, per tile and per cycle, whether the tile processor is
computing or "blocked on transmit, receive, or cache miss" (gray).
:func:`summarize_trace` reduces a :class:`~repro.sim.Trace` to busy /
blocked / idle fractions per tile, and :func:`state_matrix` rasterizes
it for the ASCII timeline renderer in :mod:`repro.viz.timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.sim.kernel import BLOCKED_STATES, BUSY
from repro.sim.trace import Trace

#: Raster cell codes.
IDLE_CODE = 0
BUSY_CODE = 1
BLOCKED_CODE = 2


@dataclass
class UtilizationSummary:
    """Busy/blocked/idle fractions of one trace key over a window."""

    key: str
    window: int
    busy: int
    blocked: int

    @property
    def idle(self) -> int:
        return max(0, self.window - self.busy - self.blocked)

    @property
    def busy_frac(self) -> float:
        return self.busy / self.window if self.window else 0.0

    @property
    def blocked_frac(self) -> float:
        return self.blocked / self.window if self.window else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of cycles doing useful work (the Fig 7-3 quantity)."""
        return self.busy_frac


def summarize_trace(
    trace: Trace, start: int = 0, stop: Optional[int] = None
) -> Dict[str, UtilizationSummary]:
    """Per-key busy/blocked cycle counts over ``[start, stop)``."""
    if stop is None:
        stop = trace.horizon()
    if stop <= start:
        raise ValueError("empty window")
    out: Dict[str, UtilizationSummary] = {}
    for key in trace.keys():
        busy = blocked = 0
        for iv in trace.intervals(key):
            lo = max(iv.start, start)
            hi = min(iv.end, stop)
            if hi <= lo:
                continue
            if iv.state == BUSY:
                busy += hi - lo
            elif iv.state in BLOCKED_STATES:
                blocked += hi - lo
        out[key] = UtilizationSummary(
            key=key, window=stop - start, busy=busy, blocked=blocked
        )
    return out


def state_matrix(
    trace: Trace,
    keys: Sequence[str],
    start: int,
    stop: int,
) -> np.ndarray:
    """Rasterize: rows = keys, columns = cycles, values = cell codes."""
    if stop <= start:
        raise ValueError("empty window")
    mat = np.zeros((len(keys), stop - start), dtype=np.uint8)
    for row, key in enumerate(keys):
        for iv in trace.intervals(key):
            lo = max(iv.start, start) - start
            hi = min(iv.end, stop) - start
            if hi <= lo:
                continue
            code = BUSY_CODE if iv.state == BUSY else (
                BLOCKED_CODE if iv.state in BLOCKED_STATES else IDLE_CODE
            )
            mat[row, lo:hi] = code
    return mat
