"""Per-tile utilization from kernel traces (thesis Fig 7-3).

Fig 7-3 plots, per tile and per cycle, whether the tile processor is
computing or "blocked on transmit, receive, or cache miss" (gray).
:func:`summarize_trace` reduces a :class:`~repro.sim.Trace` to busy /
blocked / idle fractions per tile, and :func:`state_matrix` rasterizes
it for the ASCII timeline renderer in :mod:`repro.viz.timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.sim.kernel import BLOCKED_STATES, BUSY, DOWN, STALLED
from repro.sim.trace import Trace

#: Raster cell codes.
IDLE_CODE = 0
BUSY_CODE = 1
BLOCKED_CODE = 2
DOWN_CODE = 3
STALLED_CODE = 4

_FAULT_CODES = {DOWN: DOWN_CODE, STALLED: STALLED_CODE}


@dataclass
class UtilizationSummary:
    """Busy/blocked/idle fractions of one trace key over a window."""

    key: str
    window: int
    busy: int
    blocked: int
    #: Cycles inside an injected fault window (link down / stalled tile).
    faulted: int = 0

    @property
    def idle(self) -> int:
        return max(0, self.window - self.busy - self.blocked - self.faulted)

    @property
    def busy_frac(self) -> float:
        return self.busy / self.window if self.window else 0.0

    @property
    def blocked_frac(self) -> float:
        return self.blocked / self.window if self.window else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of cycles doing useful work (the Fig 7-3 quantity)."""
        return self.busy_frac


def summarize_trace(
    trace: Trace, start: int = 0, stop: Optional[int] = None
) -> Dict[str, UtilizationSummary]:
    """Per-key busy/blocked cycle counts over ``[start, stop)``."""
    if stop is None:
        stop = trace.horizon()
    if stop <= start:
        raise ValueError("empty window")
    out: Dict[str, UtilizationSummary] = {}
    for key in trace.keys():
        busy = blocked = faulted = 0
        for iv in trace.intervals(key):
            lo = max(iv.start, start)
            hi = min(iv.end, stop)
            if hi <= lo:
                continue
            if iv.state == BUSY:
                busy += hi - lo
            elif iv.state in BLOCKED_STATES:
                blocked += hi - lo
            elif iv.state in _FAULT_CODES:
                faulted += hi - lo
        out[key] = UtilizationSummary(
            key=key, window=stop - start, busy=busy, blocked=blocked,
            faulted=faulted,
        )
    return out


def state_matrix(
    trace: Trace,
    keys: Sequence[str],
    start: int,
    stop: int,
) -> np.ndarray:
    """Rasterize: rows = keys, columns = cycles, values = cell codes."""
    if stop <= start:
        raise ValueError("empty window")
    mat = np.zeros((len(keys), stop - start), dtype=np.uint8)
    for row, key in enumerate(keys):
        for iv in trace.intervals(key):
            lo = max(iv.start, start) - start
            hi = min(iv.end, stop) - start
            if hi <= lo:
                continue
            if iv.state == BUSY:
                code = BUSY_CODE
            elif iv.state in BLOCKED_STATES:
                code = BLOCKED_CODE
            else:
                code = _FAULT_CODES.get(iv.state, IDLE_CODE)
            mat[row, lo:hi] = code
    return mat
