"""Packet latency statistics."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.raw import costs


class LatencyStats:
    """Collects per-packet cycle latencies; reports percentiles."""

    def __init__(self):
        self._samples: List[int] = []

    def record(self, arrival_cycle: int, departure_cycle: int) -> None:
        if departure_cycle < arrival_cycle:
            raise ValueError("departure before arrival")
        self._samples.append(departure_cycle - arrival_cycle)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        return not self._samples

    def cycles(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=np.int64)

    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else float("nan")

    def percentile(self, q: float) -> float:
        if not self._samples:
            return float("nan")
        return float(np.percentile(self._samples, q))

    def summary(self, clock_hz: float = costs.CLOCK_HZ) -> Dict[str, float]:
        """Mean/median/p99 in cycles and microseconds."""
        if not self._samples:
            return {}
        arr = self.cycles()
        out = {
            "count": float(arr.size),
            "mean_cycles": float(arr.mean()),
            "p50_cycles": float(np.percentile(arr, 50)),
            "p99_cycles": float(np.percentile(arr, 99)),
            "max_cycles": float(arr.max()),
        }
        out["mean_us"] = out["mean_cycles"] / clock_hz * 1e6
        out["p99_us"] = out["p99_cycles"] / clock_hz * 1e6
        return out
