"""Throughput measurement over a cycle window."""

from __future__ import annotations

from typing import Optional

from repro.raw import costs


class ThroughputMeter:
    """Counts delivered bits/packets inside ``[warmup, stop)`` cycles.

    Sinks call :meth:`record` for every delivered packet; the meter
    ignores deliveries outside the measurement window so pipeline
    fill/drain does not bias the rate.
    """

    def __init__(self, warmup_cycles: int = 0, stop_cycle: Optional[int] = None):
        if warmup_cycles < 0:
            raise ValueError("warmup must be >= 0")
        self.warmup = warmup_cycles
        self.stop = stop_cycle
        self.bits = 0
        self.packets = 0
        self.first_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None
        self.total_seen = 0

    def record(self, cycle: int, nbytes: int) -> None:
        self.total_seen += 1
        if cycle < self.warmup:
            return
        if self.stop is not None and cycle >= self.stop:
            return
        if self.first_cycle is None:
            self.first_cycle = cycle
        self.last_cycle = cycle
        self.bits += nbytes * 8
        self.packets += 1

    # ------------------------------------------------------------------
    def window_cycles(self, end_cycle: Optional[int] = None) -> int:
        """Measurement span: warmup to ``end_cycle`` (or stop, or last)."""
        end = end_cycle
        if end is None:
            end = self.stop if self.stop is not None else self.last_cycle
        if end is None:
            return 0
        return max(0, end - self.warmup)

    def gbps(self, end_cycle: Optional[int] = None, clock_hz: float = costs.CLOCK_HZ) -> float:
        cycles = self.window_cycles(end_cycle)
        if cycles == 0:
            return 0.0
        return costs.gbps(self.bits, cycles, clock_hz)

    def mpps(self, end_cycle: Optional[int] = None, clock_hz: float = costs.CLOCK_HZ) -> float:
        cycles = self.window_cycles(end_cycle)
        if cycles == 0:
            return 0.0
        return costs.mpps(self.packets, cycles, clock_hz)
