"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

try:  # scipy is an optional (dev) dependency
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Sample mean and half-width of its confidence interval.

    Uses Student's t when scipy is available, else the normal
    approximation (fine for the >=30-sample runs the harness produces).
    """
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        raise ValueError("no samples")
    if x.size == 1:
        return float(x[0]), 0.0
    mean = float(x.mean())
    sem = float(x.std(ddof=1) / np.sqrt(x.size))
    if _scipy_stats is not None:
        crit = float(_scipy_stats.t.ppf((1 + confidence) / 2, df=x.size - 1))
    else:
        crit = 1.959963984540054 if confidence == 0.95 else 2.5758293035489004
    return mean, crit * sem


def batch_means(samples: Sequence[float], num_batches: int = 10) -> List[float]:
    """Batch-means reduction for autocorrelated simulation output."""
    x = np.asarray(samples, dtype=float)
    if num_batches < 2:
        raise ValueError("need at least two batches")
    if x.size < num_batches:
        raise ValueError("fewer samples than batches")
    usable = (x.size // num_batches) * num_batches
    return [float(b.mean()) for b in np.split(x[:usable], num_batches)]
