"""Measurement: throughput meters, latency stats, tile utilization,
and resilience (MTTR / goodput under faults / drop taxonomy)."""

from repro.metrics.throughput import ThroughputMeter
from repro.metrics.latency import LatencyStats
from repro.metrics.utilization import UtilizationSummary, summarize_trace
from repro.metrics.stats import mean_ci, batch_means
from repro.metrics.resilience import RecoveryRecord, ResilienceMetrics

__all__ = [
    "ThroughputMeter",
    "LatencyStats",
    "UtilizationSummary",
    "summarize_trace",
    "mean_ci",
    "batch_means",
    "RecoveryRecord",
    "ResilienceMetrics",
]
