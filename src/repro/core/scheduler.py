"""The three-pass compile-time scheduler (thesis section 6.4).

Pass 1 -- *reservation walk*: starting from the master tile and moving
downstream, fill in reservations for the inter-crossbar and
crossbar-to-output static-network connections.  (This is exactly the
:class:`~repro.core.allocator.Allocator` rule; the walk order is the
token priority order.)

Pass 2 -- *minimization*: project every reachable global reservation
onto per-tile local configurations (:mod:`repro.core.config_space`) and
deduplicate, so the switch code for the whole space fits each tile's
8,192-word instruction memory.

Pass 3 -- *codegen*: convert each local configuration into Raw switch
pseudo-assembly -- a software-pipelined prologue of ``expansion`` cycles
(downstream tiles see the quantum's words late), a steady-state routing
loop, and a drain epilogue -- and, for the word-level simulator, into
executable :class:`~repro.raw.switchproc.RouteInstruction` streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocator import Allocation, Allocator, Request
from repro.core.config_space import (
    ConfigurationSpace,
    LocalConfig,
    MinimizationResult,
)
from repro.core.ring import RingGeometry
from repro.raw import costs
from repro.raw.layout import (
    CROSSBAR_RING,
    Direction,
    ROUTER_LAYOUT,
    tile_xy,
)

#: Raw switch port mnemonics by physical direction.
_PORT_IN = {
    Direction.NORTH: "$cNi",
    Direction.SOUTH: "$cSi",
    Direction.EAST: "$cEi",
    Direction.WEST: "$cWi",
    Direction.PROC: "$csti",
}
_PORT_OUT = {
    Direction.NORTH: "$cNo",
    Direction.SOUTH: "$cSo",
    Direction.EAST: "$cEo",
    Direction.WEST: "$cWo",
    Direction.PROC: "$csto",
}


def _direction_between(src_tile: int, dst_tile: int) -> Direction:
    """Physical direction from ``src_tile`` toward adjacent ``dst_tile``."""
    sx, sy = tile_xy(src_tile)
    dx, dy = tile_xy(dst_tile)
    if (abs(sx - dx), abs(sy - dy)) not in ((0, 1), (1, 0)):
        raise ValueError(f"tiles {src_tile} and {dst_tile} are not adjacent")
    if dx > sx:
        return Direction.EAST
    if dx < sx:
        return Direction.WEST
    if dy > sy:
        return Direction.SOUTH
    return Direction.NORTH


@dataclass(frozen=True)
class TilePortMap:
    """Physical switch directions of one crossbar tile's logical ports."""

    ring_index: int
    tile: int
    ingress_dir: Direction  #: where 'in' words arrive from
    egress_dir: Direction  #: where 'out' words leave to
    cw_dir: Direction  #: toward the clockwise-next crossbar tile
    ccw_dir: Direction  #: toward the counterclockwise-next tile

    def client_port(self, client: str) -> str:
        """Switch input-port mnemonic for a Table 6.1 client name."""
        if client == "in":
            return _PORT_IN[self.ingress_dir]
        if client == "cwprev":
            return _PORT_IN[self.ccw_dir]  # cw words arrive from the ccw side
        if client == "ccwprev":
            return _PORT_IN[self.cw_dir]
        raise ValueError(f"unknown client {client!r}")

    def server_port(self, server: str) -> str:
        """Switch output-port mnemonic for a Table 6.1 server name."""
        if server == "out":
            return _PORT_OUT[self.egress_dir]
        if server == "cwnext":
            return _PORT_OUT[self.cw_dir]
        if server == "ccwnext":
            return _PORT_OUT[self.ccw_dir]
        raise ValueError(f"unknown server {server!r}")


def default_port_maps() -> List[TilePortMap]:
    """Port maps for the prototype's center-ring placement (Fig 7-2)."""
    maps = []
    n = len(CROSSBAR_RING)
    for r, tile in enumerate(CROSSBAR_RING):
        layout = ROUTER_LAYOUT[r]
        maps.append(
            TilePortMap(
                ring_index=r,
                tile=tile,
                ingress_dir=_direction_between(tile, layout.ingress),
                egress_dir=_direction_between(tile, layout.egress),
                cw_dir=_direction_between(tile, CROSSBAR_RING[(r + 1) % n]),
                ccw_dir=_direction_between(tile, CROSSBAR_RING[(r - 1) % n]),
            )
        )
    return maps


@dataclass
class CompiledSchedule:
    """Everything the run-time system needs, produced at 'compile time'.

    * ``minimization`` -- the deduplicated local-configuration set.
    * ``jump_table`` -- (headers, token) -> per-tile local config ids;
      this is the table the Crossbar Processors index after the header
      exchange ("computes the address into the jump table of
      configurations", section 6.5).
    * ``allocations`` -- the full allocation per global configuration
      (the simulators use it to move fragments).
    """

    ring: RingGeometry
    minimization: MinimizationResult
    jump_table: Dict[Tuple[Tuple[Request, ...], int], Tuple[int, ...]]
    allocations: Dict[Tuple[Tuple[Request, ...], int], Allocation]

    def lookup(
        self, headers: Sequence[Request], token: int
    ) -> Tuple[Tuple[int, ...], Allocation]:
        key = (tuple(headers), token)
        return self.jump_table[key], self.allocations[key]

    def config(self, config_id: int) -> LocalConfig:
        return self.minimization.local_configs[config_id]

    # -- pass 3: codegen ------------------------------------------------
    def assembly_for(
        self,
        config_id: int,
        port_map: TilePortMap,
        quantum_words: int = costs.MAX_QUANTUM_WORDS,
    ) -> List[str]:
        """Raw-like switch assembly for one local config on one tile.

        The listing is software-pipelined: ``expansion`` prologue cycles
        route only the upstream-fed servers that already have data (none
        on cycle 0 except 'in'-fed ones), then a steady-state loop, then
        a drain.  Emitted purely for inspection/verification -- the
        instruction *count* is what the IMEM-fit claim rests on.
        """
        cfg = self.config(config_id)
        pm = port_map
        moves_by_server = [
            (server, src)
            for server, src in (
                ("out", cfg.out_src),
                ("cwnext", cfg.cwnext_src),
                ("ccwnext", cfg.ccwnext_src),
            )
            if src is not None
        ]
        lines = [
            f"cfg{config_id}:  ; out<-{cfg.out_src} cw<-{cfg.cwnext_src} "
            f"ccw<-{cfg.ccwnext_src} exp={cfg.expansion} tile=t{pm.tile}"
        ]
        if not moves_by_server:
            lines.append(f"  nop  ; x{quantum_words} idle quantum")
            lines.append("  j $swPC  ; return to dispatch")
            return lines
        # Prologue: on cycle k (< expansion) only flows whose data has
        # already reached this tile can be routed.
        for k in range(cfg.expansion):
            active = [
                f"route {pm.client_port(src)}->{pm.server_port(server)}"
                for server, src in moves_by_server
                if src == "in"  # locally sourced words exist from cycle 0
            ]
            lines.append(
                "  " + (", ".join(active) if active else "nop") + f"  ; fill {k}"
            )
        steady = ", ".join(
            f"route {pm.client_port(src)}->{pm.server_port(server)}"
            for server, src in moves_by_server
        )
        lines.append(f"  {steady}  ; x{quantum_words - cfg.expansion} steady")
        # Drain: upstream-fed servers keep routing for ``expansion`` more
        # cycles after the local source finished.
        for k in range(cfg.expansion):
            active = [
                f"route {pm.client_port(src)}->{pm.server_port(server)}"
                for server, src in moves_by_server
                if src != "in"
            ]
            lines.append(
                "  " + (", ".join(active) if active else "nop") + f"  ; drain {k}"
            )
        lines.append("  j $swPC  ; return to dispatch")
        return lines

    def imem_words_per_tile(self) -> int:
        """Static switch-code size: dispatch + all config bodies.

        Each assembly line is one 64-bit switch instruction; the dispatch
        table needs one jump per configuration.
        """
        pm = default_port_maps()[0]
        total = self.minimization.minimized_size  # dispatch jump table
        for cid in range(self.minimization.minimized_size):
            total += len(self.assembly_for(cid, pm)) - 1  # minus label line
        return total

    def fits_imem(self, imem_words: int = costs.SWITCH_MEM_WORDS) -> bool:
        return self.imem_words_per_tile() <= imem_words

    def full_listing(self, quantum_words: int = costs.MAX_QUANTUM_WORDS) -> str:
        pm = default_port_maps()[0]
        chunks = []
        for cid in range(self.minimization.minimized_size):
            chunks.append("\n".join(self.assembly_for(cid, pm, quantum_words)))
        return "\n\n".join(chunks)


class CompileTimeScheduler:
    """Builds a :class:`CompiledSchedule` for a ring."""

    def __init__(self, ring: RingGeometry, allocator: Optional[Allocator] = None):
        self.ring = ring
        self.allocator = allocator or Allocator(ring)
        self.space = ConfigurationSpace(ring, self.allocator)

    def reserve(self, headers: Sequence[Request], token: int) -> Allocation:
        """Pass 1 only: the reservation walk for one global configuration."""
        return self.allocator.allocate(headers, token)

    def compile(self) -> CompiledSchedule:
        """Run all three passes over the whole configuration space."""
        minimization = self.space.minimize()
        jump_table: Dict[Tuple[Tuple[Request, ...], int], Tuple[int, ...]] = {}
        allocations: Dict[Tuple[Tuple[Request, ...], int], Allocation] = {}
        for gc in self.space.enumerate_global():
            alloc = self.allocator.allocate(gc.headers, gc.token)
            locals_ = self.space.local_configs_for(alloc)
            key = (gc.headers, gc.token)
            jump_table[key] = tuple(minimization.config_id(c) for c in locals_)
            allocations[key] = alloc
        return CompiledSchedule(
            ring=self.ring,
            minimization=minimization,
            jump_table=jump_table,
            allocations=allocations,
        )
