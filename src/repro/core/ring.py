"""Crossbar ring geometry.

The Rotating Crossbar arranges the N Crossbar Processors in a ring with
full-duplex single-hop links between neighbors (on the 4x4 Raw prototype
the ring is the four center tiles; see :data:`repro.raw.layout.CROSSBAR_RING`).
Every input->output transfer is a path around the ring, clockwise or
counterclockwise, plus the dedicated 'in' link from the Ingress Processor
and 'out' link to the Egress Processor.  Because links are full duplex,
the clockwise and counterclockwise occupancies of a ring segment are
independent resources -- the property Fig 5-1's worked example exploits.

Everything is parameterized by N so the scalability experiments
(section 8.5) can grow the ring beyond the prototype's four ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

CW = "cw"
CCW = "ccw"


@dataclass(frozen=True, order=True)
class Link:
    """A directed, per-quantum-exclusive fabric resource.

    ``kind``:
      * ``"cw"``  -- ring segment from tile ``index`` to ``index+1 mod N``
      * ``"ccw"`` -- ring segment from tile ``index`` to ``index-1 mod N``
      * ``"out"`` -- crossbar tile ``index`` to its Egress Processor
      * ``"in"``  -- Ingress Processor to crossbar tile ``index``
    ``network`` selects which of Raw's static networks carries it (the
    router uses network 1 only; the second-network ablation uses both).
    """

    kind: str
    index: int
    network: int = 1

    def __str__(self) -> str:
        return f"{self.kind}{self.index}@sn{self.network}"


@dataclass(frozen=True)
class Path:
    """A granted route from input ``src`` to output ``dst``."""

    src: int
    dst: int
    direction: str  #: CW, CCW, or "direct" when src == dst
    links: Tuple[Link, ...]  #: ring segments only (excludes in/out)
    network: int = 1

    @property
    def hops(self) -> int:
        """Ring hops traversed == the path's expansion number source."""
        return len(self.links)


class RingGeometry:
    """Path and resource arithmetic for an N-tile crossbar ring."""

    def __init__(self, num_ports: int = 4):
        if num_ports < 2:
            raise ValueError("a crossbar ring needs at least 2 ports")
        self.n = num_ports

    # ------------------------------------------------------------------
    def cw_distance(self, src: int, dst: int) -> int:
        return (dst - src) % self.n

    def ccw_distance(self, src: int, dst: int) -> int:
        return (src - dst) % self.n

    def distance(self, src: int, dst: int, direction: str) -> int:
        if direction == CW:
            return self.cw_distance(src, dst)
        if direction == CCW:
            return self.ccw_distance(src, dst)
        raise ValueError(f"unknown direction {direction!r}")

    # ------------------------------------------------------------------
    def path(self, src: int, dst: int, direction: str, network: int = 1) -> Path:
        """The ring path from ``src`` to ``dst`` in ``direction``."""
        self._check_port(src)
        self._check_port(dst)
        if src == dst:
            return Path(src, dst, "direct", (), network)
        links: List[Link] = []
        node = src
        if direction == CW:
            while node != dst:
                links.append(Link(CW, node, network))
                node = (node + 1) % self.n
        elif direction == CCW:
            while node != dst:
                links.append(Link(CCW, node, network))
                node = (node - 1) % self.n
        else:
            raise ValueError(f"unknown direction {direction!r}")
        return Path(src, dst, direction, tuple(links), network)

    def candidate_paths(self, src: int, dst: int, networks: int = 1) -> List[Path]:
        """Paths to try, in the allocator's preference order.

        Shorter direction first, clockwise on ties (Fig 5-1's example is
        all ties and resolves clockwise-first); network 1 before network
        2.  Preferring the short direction matters: always-clockwise
        would route 3-hop long ways around and block permutations that
        the switch can in fact serve conflict-free.  For ``src == dst``
        there is a single direct path.
        """
        if src == dst:
            return [self.path(src, dst, CW, network=1)]
        if self.ccw_distance(src, dst) < self.cw_distance(src, dst):
            directions = (CCW, CW)
        else:
            directions = (CW, CCW)
        out: List[Path] = []
        for network in range(1, networks + 1):
            for direction in directions:
                out.append(self.path(src, dst, direction, network))
        return out

    # ------------------------------------------------------------------
    def ring_tiles_on_path(self, p: Path) -> List[int]:
        """All crossbar tiles a path touches, source through destination."""
        tiles = [p.src]
        node = p.src
        for _ in p.links:
            node = (node + 1) % self.n if p.direction == CW else (node - 1) % self.n
            tiles.append(node)
        return tiles

    def expansion(self, p: Path, tile: int) -> int:
        """Relative distance of ``tile`` from the path's data source.

        This is the "expansion number" of thesis section 6.2: a tile
        ``k`` ring-hops downstream sees the quantum's words ``k`` cycles
        late, and its switch code must be software-pipelined accordingly.
        """
        tiles = self.ring_tiles_on_path(p)
        try:
            return tiles.index(tile)
        except ValueError:
            raise ValueError(f"tile {tile} is not on path {p}") from None

    def all_links(self, networks: int = 1) -> List[Link]:
        out = []
        for network in range(1, networks + 1):
            for kind in (CW, CCW):
                out.extend(Link(kind, i, network) for i in range(self.n))
        out.extend(Link("out", i) for i in range(self.n))
        out.extend(Link("in", i) for i in range(self.n))
        return out

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n:
            raise ValueError(f"port {port} out of range for {self.n}-port ring")
