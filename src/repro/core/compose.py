"""Composing 4-port Rotating Crossbars into a bigger fabric (section 8.5).

The thesis's scaling proposal: "one solution is simply to build a larger
router out of multiple of these small 4-port routers, or at least out of
multiple 4-port crossbars."  This module does exactly that: a
three-stage Clos fabric whose every switching element is the paper's
4-port Rotating Crossbar (token, clockwise-first ring paths and all),
giving a 16-port router from twelve 4x4 crossbar chips.

Why it matters: a single N-port ring is bisection-limited -- antipodal
permutations cap near the 4-port aggregate no matter how large N grows
(measured in :mod:`repro.experiments.scaling`).  The Clos composition
restores full-bandwidth scaling for exactly those patterns, with
adaptive middle-stage selection (a blocked head-of-line fragment retries
through a different middle crossbar next quantum).

Timing: stages advance in lockstep routing quanta priced by the same
phase model; a fragment crosses three crossbars, so the pipeline is
three quanta deep but each stage sustains its full rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocator
from repro.core.fabricsim import FabricStats, PortSource
from repro.core.phases import DEFAULT_TIMING, PhaseTiming, idle_quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken


@dataclass
class _Frag:
    dest: int  #: global output port
    words: int
    is_last: bool
    retry: int = 0  #: middle-stage reselection counter


class _Crossbar:
    """One 4x4 Rotating Crossbar element with per-input FIFOs."""

    def __init__(self, size: int):
        self.size = size
        self.ring = RingGeometry(size)
        self.allocator = Allocator(self.ring)
        self.token = RotatingToken(size)
        self.queues: List[Deque[Tuple[_Frag, int]]] = [deque() for _ in range(size)]
        # (fragment, local destination leg)

    def step(self) -> Tuple[List[Tuple[int, _Frag]], int]:
        """One quantum: returns ([(local output, fragment)], body cycles)."""
        requests = tuple(
            self.queues[i][0][1] if self.queues[i] else None for i in range(self.size)
        )
        if all(r is None for r in requests):
            self.token.advance()
            return [], 0
        alloc = self.allocator.allocate(requests, self.token.master)
        moved: List[Tuple[int, _Frag]] = []
        body = 0
        for grant in alloc.grants.values():
            frag, leg = self.queues[grant.src].popleft()
            body = max(body, frag.words + grant.expansion)
            moved.append((leg, frag))
        self.token.advance()
        return moved, body

    def occupancy(self, port: int) -> int:
        return len(self.queues[port])


class ClosFabric:
    """A (k*k)-port router from 3k k-port Rotating Crossbars.

    ``k = 4`` (the prototype's crossbar) gives 16 ports from 12 chips.
    Global input ``g`` enters input crossbar ``g // k`` on leg ``g % k``;
    middle crossbar ``m`` connects input crossbar ``i``'s leg ``m`` to
    output crossbar ``o``'s middle leg; output crossbar ``o`` serves
    global outputs ``o*k .. o*k+k-1``.
    """

    def __init__(
        self,
        k: int = 4,
        timing: PhaseTiming = DEFAULT_TIMING,
        max_quantum_words: Optional[int] = None,
        stage_queue_frags: int = 8,
        costs: CostModel = CostModel.default(),
    ):
        if k < 2:
            raise ValueError("crossbar size must be >= 2")
        self.k = k
        self.num_ports = k * k
        self.timing = timing
        self.costs = costs
        self.max_quantum_words = (
            costs.max_quantum_words if max_quantum_words is None else max_quantum_words
        )
        self.stage_queue_frags = stage_queue_frags
        self.ingress = [_Crossbar(k) for _ in range(k)]
        self.middle = [_Crossbar(k) for _ in range(k)]
        self.egress = [_Crossbar(k) for _ in range(k)]

    # ------------------------------------------------------------------
    def _admit(self, port: int, source: PortSource) -> None:
        """Refill a global input's crossbar FIFO from the source."""
        xbar = self.ingress[port // self.k]
        leg = port % self.k
        if xbar.queues[leg]:
            return
        pkt = source(port)
        if pkt is None:
            return
        dest, words = pkt
        if not 0 <= dest < self.num_ports:
            raise ValueError(f"destination {dest} out of range")
        remaining = words
        index = 0
        count = (words + self.max_quantum_words - 1) // self.max_quantum_words
        while remaining > 0:
            q = min(remaining, self.max_quantum_words)
            remaining -= q
            frag = _Frag(dest=dest, words=q, is_last=index == count - 1)
            # Middle selection: spread by destination, rotate on retry.
            middle = (dest + frag.retry) % self.k
            xbar.queues[leg].append((frag, middle))
            index += 1

    def _reselect_blocked(self) -> None:
        """Adaptive routing: a head-of-line fragment stuck at an input
        crossbar retries via the next middle crossbar."""
        for xbar in self.ingress:
            for leg in range(self.k):
                if xbar.queues[leg]:
                    frag, middle = xbar.queues[leg][0]
                    frag.retry += 1
                    xbar.queues[leg][0] = (frag, (frag.dest + frag.retry) % self.k)

    # ------------------------------------------------------------------
    def run(
        self,
        source: PortSource,
        quanta: int,
        warmup_quanta: int = 0,
    ) -> FabricStats:
        stats = FabricStats(num_ports=self.num_ports, costs=self.costs)
        for q in range(quanta + warmup_quanta):
            measuring = q >= warmup_quanta
            for port in range(self.num_ports):
                self._admit(port, source)

            bodies = []
            # Stage 3 first so stage queues drain before refilling
            # (store-and-forward between stages, one quantum apart).
            deliveries: List[Tuple[int, _Frag]] = []
            for o, xbar in enumerate(self.egress):
                moved, body = xbar.step()
                bodies.append(body)
                for leg, frag in moved:
                    deliveries.append((o * self.k + leg, frag))
            # Stage 2: middles feed egress crossbars.
            for m, xbar in enumerate(self.middle):
                moved, body = xbar.step()
                bodies.append(body)
                for out_xbar, frag in moved:
                    eg = self.egress[out_xbar]
                    leg = frag.dest % self.k
                    if eg.occupancy(m) < self.stage_queue_frags:
                        eg.queues[m].append((frag, leg))
                    else:  # back-pressure: requeue at the middle head
                        xbar.queues[out_xbar].appendleft((frag, out_xbar))
            # Stage 1: ingress crossbars feed middles.
            any_blocked = False
            for i, xbar in enumerate(self.ingress):
                pre = [len(qq) for qq in xbar.queues]
                moved, body = xbar.step()
                bodies.append(body)
                for middle_idx, frag in moved:
                    mid = self.middle[middle_idx]
                    out_xbar = frag.dest // self.k
                    if mid.occupancy(i) < self.stage_queue_frags:
                        mid.queues[i].append((frag, out_xbar))
                    else:
                        xbar.queues[middle_idx].appendleft((frag, middle_idx))
                post = [len(qq) for qq in xbar.queues]
                if pre == post and any(pre):
                    any_blocked = True
            if any_blocked:
                self._reselect_blocked()

            duration = (
                self.timing.control_total + max(bodies)
                if any(bodies)
                else idle_quantum_cycles(self.timing)
            )
            if measuring:
                stats.quanta += 1
                stats.cycles += duration
                for port, frag in deliveries:
                    stats.delivered_words += frag.words
                    stats.per_port_words[port] += frag.words
                    if frag.is_last:
                        stats.delivered_packets += 1
                        stats.per_port_packets[port] += 1
        return stats


def clos_vs_single_ring(
    num_ports: int = 16,
    words: int = 256,
    quanta: int = 2000,
    shift: Optional[int] = None,
) -> Tuple[float, float]:
    """(single-ring Gbps, Clos Gbps) under a shift permutation.

    The headline comparison of the composition experiment: antipodal
    shift on one big ring vs. the same traffic through composed 4-port
    crossbars.
    """
    from repro.core.fabricsim import FabricSimulator, saturated_permutation

    if shift is None:
        shift = num_ports // 2
    ring = RingGeometry(num_ports)
    single = FabricSimulator(ring=ring, allocator=Allocator(ring), token=RotatingToken(num_ports))
    ring_stats = single.run(
        saturated_permutation(words, shift=shift, n=num_ports),
        quanta=quanta,
        warmup_quanta=quanta // 10,
    )
    k = int(round(num_ports ** 0.5))
    if k * k != num_ports:
        raise ValueError("Clos composition needs a square port count")
    clos = ClosFabric(k=k)
    clos_stats = clos.run(
        saturated_permutation(words, shift=shift, n=num_ports),
        quanta=quanta,
        warmup_quanta=quanta // 10,
    )
    return ring_stats.gbps, clos_stats.gbps
