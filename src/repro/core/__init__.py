"""The paper's contribution: the Rotating Crossbar and its scheduler.

* :mod:`repro.core.ring` -- crossbar ring geometry: clockwise /
  counterclockwise paths, link resources, expansion numbers.
* :mod:`repro.core.token` -- the rotating token (plus the weighted
  variant that implements QoS, thesis sections 5.4/8.7).
* :mod:`repro.core.allocator` -- the per-quantum allocation rule: in
  token order, connect each requesting Ingress Processor to its Egress
  Processor over free directed ring links, clockwise first.
* :mod:`repro.core.config_space` -- the configuration space of thesis
  chapter 6: the naive |Hdr|^4 x |Token| = 2,500 enumeration and the
  client/server minimization down to a few dozen local configurations.
* :mod:`repro.core.scheduler` -- the three-pass compile-time scheduler
  (reservation walk, minimization, codegen to Raw-like switch assembly).
* :mod:`repro.core.phases` -- the per-quantum phase timing of Fig 6-2.
* :mod:`repro.core.deadlock` -- wait-for-graph checker proving emitted
  schedules cannot deadlock the static network (section 5.5).
* :mod:`repro.core.fairness` -- starvation bounds and fairness metrics
  (section 5.4).
* :mod:`repro.core.multicast` / :mod:`repro.core.compute` -- the
  future-work extensions (sections 8.6 and 8.3) implemented.
"""

from repro.core.ring import RingGeometry, Path, Link, CW, CCW
from repro.core.token import RotatingToken, WeightedToken
from repro.core.allocator import Allocator, Allocation, Grant, Request
from repro.core.config_space import (
    ConfigurationSpace,
    LocalConfig,
    GlobalConfig,
    EMPTY,
)
from repro.core.scheduler import CompileTimeScheduler, CompiledSchedule
from repro.core.phases import PhaseTiming, quantum_cycles
from repro.core.deadlock import check_allocation_deadlock_free, wait_for_graph
from repro.core.fairness import FairnessReport, analyze_service, jains_index
from repro.core.fabricsim import (
    FabricSimulator,
    FabricStats,
    saturated_permutation,
    saturated_uniform,
    saturated_hotspot,
)
from repro.core.multicast import (
    MulticastAllocator,
    MulticastAllocation,
    MulticastGrant,
    MulticastRequest,
)
from repro.core.asmparse import parse_listing, make_resolver, AsmParseError
from repro.core.compose import ClosFabric, clos_vs_single_ring
from repro.core.compute import (
    StreamTransform,
    Identity,
    XorCipher,
    ByteSwap,
    RunningChecksum,
)

__all__ = [
    "RingGeometry",
    "Path",
    "Link",
    "CW",
    "CCW",
    "RotatingToken",
    "WeightedToken",
    "Allocator",
    "Allocation",
    "Grant",
    "Request",
    "ConfigurationSpace",
    "LocalConfig",
    "GlobalConfig",
    "EMPTY",
    "CompileTimeScheduler",
    "CompiledSchedule",
    "PhaseTiming",
    "quantum_cycles",
    "check_allocation_deadlock_free",
    "wait_for_graph",
    "FairnessReport",
    "analyze_service",
    "jains_index",
    "FabricSimulator",
    "FabricStats",
    "saturated_permutation",
    "saturated_uniform",
    "saturated_hotspot",
    "MulticastAllocator",
    "MulticastAllocation",
    "MulticastGrant",
    "MulticastRequest",
    "ClosFabric",
    "clos_vs_single_ring",
    "parse_listing",
    "make_resolver",
    "AsmParseError",
    "StreamTransform",
    "Identity",
    "XorCipher",
    "ByteSwap",
    "RunningChecksum",
]
