"""Static-network deadlock analysis (thesis section 5.5).

A static-network deadlock arises when the data flow between Crossbar
Processors forms a loop and the (single-word-buffered) links wait on each
other circularly.  The standard tool is Dally's channel-dependency graph:
nodes are directed links; there is an edge ``Li -> Lj`` whenever some
flow occupies ``Li`` and next needs ``Lj``.  The configuration is
deadlock-free iff the graph is acyclic.

The Rotating Crossbar only ever emits link-disjoint (conflict-free)
allocations whose flows are simple forward paths, so its dependency graph
is a union of disjoint simple paths -- trivially acyclic; the property
tests sweep the whole configuration space to confirm it.  The module also
checks *arbitrary* flow sets, which is how the tests demonstrate that a
naive non-token schedule (e.g. all inputs forwarding a full ring turn in
the same direction) does contain a cycle.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.core.allocator import Allocation
from repro.core.ring import Link, RingGeometry


def wait_for_graph(
    flows: Iterable[Sequence[Hashable]],
) -> Dict[Hashable, Set[Hashable]]:
    """Channel-dependency graph from flows given as link sequences."""
    graph: Dict[Hashable, Set[Hashable]] = {}
    for flow in flows:
        for a, b in zip(flow, flow[1:]):
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
    return graph


def find_cycle(graph: Dict[Hashable, Set[Hashable]]) -> List[Hashable]:
    """A cycle in the graph as a node list, or [] when acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: List[Hashable] = []

    def dfs(node) -> List[Hashable]:
        color[node] = GRAY
        stack.append(node)
        for succ in graph.get(node, ()):
            if color[succ] == GRAY:
                return stack[stack.index(succ) :] + [succ]
            if color[succ] == WHITE:
                cycle = dfs(succ)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return []

    for node in list(graph):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return cycle
    return []


def allocation_flows(alloc: Allocation) -> List[Tuple[Link, ...]]:
    """Each grant's full resource sequence: in-link, ring links, out-link."""
    flows = []
    for grant in alloc.grants.values():
        flow = (
            (Link("in", grant.src),)
            + grant.path.links
            + (Link("out", grant.dst),)
        )
        flows.append(flow)
    return flows


def check_allocation_deadlock_free(alloc: Allocation) -> bool:
    """True when the allocation's dependency graph is acyclic AND its
    resources are conflict-free (the two halves of section 5.5)."""
    if not alloc.is_conflict_free():
        return False
    graph = wait_for_graph(allocation_flows(alloc))
    return not find_cycle(graph)


def naive_ring_flows(ring: RingGeometry, direction: str = "cw") -> List[Tuple[Link, ...]]:
    """The classic deadlocking pattern the token scheme avoids: every
    input simultaneously forwarding all the way around the ring in the
    same direction (each flow i -> i-1 going the long way).  With
    single-word link buffers the dependency graph is one big cycle."""
    flows = []
    for src in range(ring.n):
        dst = (src - 1) % ring.n if direction == "cw" else (src + 1) % ring.n
        path = ring.path(src, dst, direction)
        flows.append(
            (Link("in", src),) + path.links + (Link("out", dst),)
        )
    return flows
