"""The rotating token: fairness by construction.

The token "denotes the ultimate right of a Crossbar Processor to connect
its respective Ingress Processor to any of the Egress Processors"
(section 5.1).  It is not passed as a message -- each Crossbar Processor
keeps a synchronous local counter and all counters advance in lockstep at
quantum boundaries; :class:`RotatingToken` is that counter.

:class:`WeightedToken` is the weighted-round-robin variant the thesis
proposes for QoS (sections 5.4 and 8.7): port ``i`` holds mastership for
``weights[i]`` consecutive quanta per rotation, shifting bandwidth shares
under contention without touching the allocation rule.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.telemetry import runtime as _telemetry


class RotatingToken:
    """Plain token: mastership rotates one port per quantum."""

    def __init__(self, num_ports: int, start: int = 0):
        if num_ports < 1:
            raise ValueError("need at least one port")
        if not 0 <= start < num_ports:
            raise ValueError("start port out of range")
        self.n = num_ports
        self._master = start
        self.rotations = 0

    @property
    def master(self) -> int:
        return self._master

    def advance(self) -> int:
        """Move mastership to the next downstream port; returns new master."""
        self._master = (self._master + 1) % self.n
        self.rotations += 1
        tel = _telemetry.RECORDER
        if tel is not None:
            tel.registry.count("fabric.tokens_passed")
        return self._master

    def reset(self, start: int = 0) -> None:
        """Re-issue the token at ``start`` (the token-loss recovery:
        after regeneration every counter restarts in lockstep)."""
        if not 0 <= start < self.n:
            raise ValueError("start port out of range")
        self._master = start
        tel = _telemetry.RECORDER
        if tel is not None:
            tel.registry.count("fabric.token_resets")

    def priority_order(self) -> List[int]:
        """Ports in decreasing priority for the current quantum."""
        return [(self._master + k) % self.n for k in range(self.n)]

    def max_wait_quanta(self) -> int:
        """Worst-case quanta before a backlogged port is master again."""
        return self.n - 1


class WeightedToken(RotatingToken):
    """Weighted rotation: port ``i`` is master ``weights[i]`` quanta per cycle."""

    def __init__(self, weights: Sequence[int], start: int = 0):
        weights = list(weights)
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 1 for w in weights):
            raise ValueError("all weights must be >= 1 (use 1 for best effort)")
        super().__init__(len(weights), start=start)
        self.weights = weights
        self._remaining = weights[start]

    def advance(self) -> int:
        self._remaining -= 1
        if self._remaining <= 0:
            self._master = (self._master + 1) % self.n
            self._remaining = self.weights[self._master]
            self.rotations += 1
            tel = _telemetry.RECORDER
            if tel is not None:
                tel.registry.count("fabric.tokens_passed")
        return self._master

    def reset(self, start: int = 0) -> None:
        super().reset(start)
        self._remaining = self.weights[start]

    def max_wait_quanta(self) -> int:
        """Worst-case quanta before a port regains mastership."""
        return sum(self.weights) - min(self.weights)

    def share(self, port: int) -> float:
        """Nominal mastership share of ``port``."""
        return self.weights[port] / sum(self.weights)
