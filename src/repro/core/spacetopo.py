"""Space-partitionable fabric topology: chips, boundary channels, windows.

:mod:`repro.core.compose` composes 4-port Rotating Crossbars into one
Clos fabric, but its step loop reads remote state inside a quantum
(same-quantum occupancy back-pressure, a global blocked reduction), so
it can only run in one process.  This module rebuilds the composition as
an explicitly *distributable* graph:

* a :class:`ChipNode` is one k-port Rotating Crossbar (allocator, token,
  per-input-leg FIFOs) making **local-only** decisions;
* a :class:`Channel` is a directed point-to-point link between chip legs
  with a fixed ``latency`` measured in routing quanta -- a fragment sent
  at quantum ``t`` becomes visible to the receiving chip at ``t +
  latency``, never earlier;
* a :class:`SpaceTopology` is the wiring: nodes, channels, and the
  external input/output port maps.

Because every cross-chip dependency flows through a fixed-latency
channel, a set of chips can advance ``L`` quanta (``L`` = the minimum
latency of any channel entering the set) using only fragments that were
sent before the window began.  That is the classic conservative
lookahead of distributed switch simulators (firesim's token-queue
switches use exactly this window), and it is what
:mod:`repro.parallel.space_shard` exploits: workers own disjoint node
sets and exchange one *window* of channel traffic per round instead of
synchronizing every quantum.

:class:`PartitionSim` is the single stepper both execution modes share:
the serial reference runs one instance owning every node, the
distributed run gives each worker an instance owning its partition plus
:meth:`~PartitionSim.inject` / :meth:`~PartitionSim.drain_outgoing` for
the boundary traffic.  Bit-identity between the two is therefore
structural -- same chip code, same per-channel FIFO order, same quantum
arithmetic -- and is property-tested across partition counts in
``tests/test_space_shard.py``.

Fragments are plain tuples ``(dest, words, is_last)`` so boundary
batches pickle cheaply over multiprocessing pipes.  Under an active
telemetry recorder a fourth element rides along -- a globally unique
journey tag minted at external admission (``admission_seq * num_ports +
port``, identical regardless of partitioning) -- so packet journeys
survive partition crossings: each partition records the marks it
witnesses into its local :class:`~repro.telemetry.journey.JourneyTracker`
(shared-key mode) and the coordinator folds the partial entries.  The
step code only ever indexes ``frag[0..2]``, so the extra element cannot
change simulation behavior, and with telemetry off fragments stay
3-tuples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocator
from repro.core.phases import DEFAULT_TIMING, PhaseTiming, idle_quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.telemetry import runtime as _telemetry

#: A fragment crossing the space fabric: (global dest port, words, is_last)
#: plus an optional trailing journey tag when telemetry is recording.
SpaceFrag = Tuple[int, int, bool]


@dataclass(frozen=True)
class Channel:
    """A directed chip-to-chip link with fixed latency in quanta.

    ``latency >= 1`` is what makes the topology partitionable: a window
    of ``min latency`` quanta can be simulated without seeing the
    sender's current quantum.
    """

    cid: int
    src_node: int
    src_leg: int
    dst_node: int
    dst_leg: int
    latency: int

    def __post_init__(self):
        if self.latency < 1:
            raise ValueError("channel latency must be >= 1 quantum")


class SpaceTopology:
    """The partitionable fabric graph.

    ``k`` is the chip port count (each node is a k-port Rotating
    Crossbar ring); ``num_ports`` the external port count.  ``ext_in``
    maps a global input port to its (node, leg); ``ext_out`` maps an
    egress (node, leg) to its global output port.  :meth:`route` is the
    chip-local forwarding decision: which output leg a fragment for
    ``dest`` takes at ``node``.
    """

    def __init__(
        self,
        geometry: str,
        k: int,
        num_nodes: int,
        num_ports: int,
        channels: List[Channel],
        ext_in: Dict[int, Tuple[int, int]],
        ext_out: Dict[Tuple[int, int], int],
    ):
        self.geometry = geometry
        self.k = k
        self.num_nodes = num_nodes
        self.num_ports = num_ports
        self.channels = channels
        self.ext_in = ext_in
        self.ext_out = ext_out
        #: (node, leg) -> outgoing channel; each leg has at most one.
        self.out_channel: Dict[Tuple[int, int], Channel] = {}
        for ch in channels:
            key = (ch.src_node, ch.src_leg)
            if key in self.out_channel:
                raise ValueError(f"duplicate out-channel at {key}")
            self.out_channel[key] = ch

    # -- forwarding -----------------------------------------------------
    def route(self, node: int, dest: int) -> int:
        """The output leg a fragment for global port ``dest`` takes at
        ``node`` (clos: spread by dest over middles, then by egress
        chip, then the local output leg; torus: shortest way around the
        ring, ties broken toward +, then the local output leg)."""
        k = self.k
        if self.geometry == "torus":
            ext = k - 2
            d = dest // ext
            if d == node:
                return 2 + dest % ext
            delta = (d - node) % self.num_nodes
            return 0 if delta <= self.num_nodes - delta else 1
        if node < k:  # ingress chip -> middle index
            return dest % k
        if node < 2 * k:  # middle chip -> egress chip index
            return dest // k
        return dest % k  # egress chip -> local output leg

    @property
    def preferred_partitions(self) -> int:
        """The topology's natural worker count before the CPU clamp: the
        middle-stage chip count for a Clos (each stage block then holds
        whole chips), every chip for a torus."""
        return self.k if self.geometry == "clos" else self.num_nodes

    # -- partitioning ---------------------------------------------------
    def partition(self, parts: int) -> List[List[int]]:
        """Contiguous, balanced node blocks (first blocks get the
        remainder, mirroring :mod:`repro.parallel.fabric_shard`'s slice
        sizing).  ``parts`` is clamped to ``num_nodes``."""
        parts = max(1, min(parts, self.num_nodes))
        base, rem = divmod(self.num_nodes, parts)
        blocks: List[List[int]] = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < rem else 0)
            blocks.append(list(range(start, start + size)))
            start += size
        return blocks

    def boundary_channels(self, blocks: List[List[int]]) -> List[Channel]:
        """Channels whose endpoints live in different blocks."""
        owner = self.node_owner(blocks)
        return [
            ch for ch in self.channels
            if owner[ch.src_node] != owner[ch.dst_node]
        ]

    def node_owner(self, blocks: List[List[int]]) -> Dict[int, int]:
        owner: Dict[int, int] = {}
        for part, nodes in enumerate(blocks):
            for nid in nodes:
                owner[nid] = part
        if len(owner) != self.num_nodes:
            raise ValueError("partition does not cover every node exactly once")
        return owner

    def window(self, blocks: List[List[int]]) -> int:
        """The safe lookahead: min latency over inter-partition channels
        (the whole horizon when nothing crosses a boundary)."""
        boundary = self.boundary_channels(blocks)
        if not boundary:
            return 1 << 30
        return min(ch.latency for ch in boundary)


def clos_topology(k: int, latency: int = 1) -> SpaceTopology:
    """A three-stage Clos of 3k k-port crossbar chips (k*k ports).

    Node ids: ingress ``0..k-1``, middle ``k..2k-1``, egress
    ``2k..3k-1``.  Global input ``g`` enters ingress chip ``g // k`` on
    leg ``g % k``; ingress chip ``i`` leg ``m`` feeds middle chip ``m``
    leg ``i``; middle chip ``m`` leg ``o`` feeds egress chip ``o`` leg
    ``m``; egress chip ``o`` leg ``l`` is global output ``o*k + l``.
    Every inter-chip channel carries the same ``latency``.
    """
    if k < 2:
        raise ValueError("crossbar chips need at least 2 ports")
    channels: List[Channel] = []
    for i in range(k):
        for m in range(k):
            channels.append(Channel(
                cid=len(channels), src_node=i, src_leg=m,
                dst_node=k + m, dst_leg=i, latency=latency,
            ))
    for m in range(k):
        for o in range(k):
            channels.append(Channel(
                cid=len(channels), src_node=k + m, src_leg=o,
                dst_node=2 * k + o, dst_leg=m, latency=latency,
            ))
    ext_in = {g: (g // k, g % k) for g in range(k * k)}
    ext_out = {(2 * k + o, l): o * k + l for o in range(k) for l in range(k)}
    return SpaceTopology(
        geometry="clos", k=k, num_nodes=3 * k, num_ports=k * k,
        channels=channels, ext_in=ext_in, ext_out=ext_out,
    )


def torus_topology(k: int, latency: int = 1) -> SpaceTopology:
    """A 1-D bidirectional torus (ring) of ``k`` k-port crossbar chips.

    Node ids ``0..k-1`` around the ring.  Each chip spends leg ``0`` on
    its ``+1`` neighbor and leg ``1`` on its ``-1`` neighbor; legs
    ``2..k-1`` are external, so the fabric exposes ``k * (k - 2)``
    ports, global port ``g`` mapping to chip ``g // (k-2)`` leg
    ``2 + g % (k-2)`` for both input and output.  Channel ``2c`` runs
    ``c -> c+1`` (src leg 0 into dst leg 1), channel ``2c + 1`` runs
    ``c -> c-1`` (src leg 1 into dst leg 0); every channel carries the
    same ``latency``.  Unlike the feed-forward Clos, the partition graph
    is cyclic, so torus runs need the worker pool (the in-process
    toposort helper refuses them).
    """
    if k < 3:
        raise ValueError("a torus chip needs >= 3 ports (2 ring + 1 external)")
    channels: List[Channel] = []
    for c in range(k):
        channels.append(Channel(
            cid=len(channels), src_node=c, src_leg=0,
            dst_node=(c + 1) % k, dst_leg=1, latency=latency,
        ))
        channels.append(Channel(
            cid=len(channels), src_node=c, src_leg=1,
            dst_node=(c - 1) % k, dst_leg=0, latency=latency,
        ))
    ext = k - 2
    ext_in = {g: (g // ext, 2 + g % ext) for g in range(k * ext)}
    ext_out = {(c, 2 + l): c * ext + l for c in range(k) for l in range(ext)}
    return SpaceTopology(
        geometry="torus", k=k, num_nodes=k, num_ports=k * ext,
        channels=channels, ext_in=ext_in, ext_out=ext_out,
    )


#: Geometry name -> (ports for chip size k, topology builder).
GEOMETRIES = {
    "clos": (lambda k: k * k, clos_topology),
    "torus": (lambda k: k * (k - 2), torus_topology),
}


def geometry_ports(geometry: str, k: int) -> int:
    """External port count of ``geometry`` at chip size ``k`` without
    building the topology."""
    try:
        ports_of, _ = GEOMETRIES[geometry]
    except KeyError:
        raise ValueError(
            f"unknown space geometry {geometry!r}; expected one of "
            f"{tuple(GEOMETRIES)}"
        ) from None
    return ports_of(k)


def build_topology(geometry: str, k: int, latency: int = 1) -> SpaceTopology:
    try:
        _, builder = GEOMETRIES[geometry]
    except KeyError:
        raise ValueError(
            f"unknown space geometry {geometry!r}; expected one of "
            f"{tuple(GEOMETRIES)}"
        ) from None
    return builder(k, latency=latency)


def link_fault_windows(
    plan, num_channels: int
) -> Dict[int, List[Tuple[int, int]]]:
    """Normalize a fault plan into per-channel down-windows.

    The space fabric realizes exactly one fault kind: ``link_down`` on a
    ``"link:<cid>"`` target, with ``cycle``/``duration`` read in
    *quanta*.  A downed channel holds traffic: any fragment whose
    arrival quantum lands inside ``[cycle, cycle + duration)`` is
    deferred to the window's end.  Deferral is monotone (earlier
    arrivals never land after later ones), so per-channel FIFO order --
    the property bit-identity rests on -- survives.  Returns
    ``{cid: [(start, end), ...]}`` with overlaps merged; raises
    ``ValueError`` on any event the space fabric cannot realize.
    """
    windows: Dict[int, List[Tuple[int, int]]] = {}
    if not plan:
        return windows
    for ev in plan.events:
        if ev.kind != "link_down":
            raise ValueError(
                f"space fabric cannot realize fault kind {ev.kind!r}; "
                "only link_down on link:<cid> targets is supported"
            )
        if not ev.target.startswith("link:"):
            raise ValueError(
                f"space link faults need a link:<cid> target, got "
                f"{ev.target!r}"
            )
        try:
            cid = int(ev.target[5:])
        except ValueError:
            raise ValueError(
                f"space link faults need a link:<cid> target, got "
                f"{ev.target!r}"
            ) from None
        if not 0 <= cid < num_channels:
            raise ValueError(
                f"fault target channel {cid} out of range "
                f"(topology has {num_channels} channels)"
            )
        windows.setdefault(cid, []).append((ev.cycle, ev.end))
    for cid, ws in windows.items():
        ws.sort()
        merged = [ws[0]]
        for s, e in ws[1:]:
            if s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        windows[cid] = merged
    return windows


class ChipNode:
    """One k-port Rotating Crossbar chip with per-input-leg FIFOs.

    Queue entries are ``(frag, out_leg)`` -- the forwarding decision is
    made once at enqueue time, exactly like
    :class:`repro.core.compose._Crossbar`.
    """

    __slots__ = ("nid", "k", "allocator", "token", "queues")

    def __init__(self, nid: int, k: int, cache_size: int = 0):
        self.nid = nid
        self.k = k
        ring = RingGeometry(k)
        self.allocator = Allocator(ring, cache_size=cache_size)
        self.token = RotatingToken(k)
        self.queues: List[Deque[Tuple[SpaceFrag, int]]] = [
            deque() for _ in range(k)
        ]

    def step(self) -> Tuple[List[Tuple[int, SpaceFrag]], int, int]:
        """One quantum: ([(out leg, frag)], body cycles, blocked count)."""
        queues = self.queues
        requests = tuple(
            queues[leg][0][1] if queues[leg] else None
            for leg in range(self.k)
        )
        if all(r is None for r in requests):
            self.token.advance()
            return [], 0, 0
        alloc = self.allocator.allocate(requests, self.token.master)
        moved: List[Tuple[int, SpaceFrag]] = []
        body = 0
        for grant in alloc.grants.values():
            frag, leg = queues[grant.src].popleft()
            b = frag[1] + grant.expansion
            if b > body:
                body = b
            moved.append((leg, frag))
        self.token.advance()
        return moved, body, len(alloc.blocked)


@dataclass
class PartStats:
    """One partition's accumulated counters: everything local plus the
    per-quantum body maxima that :func:`merge_part_stats` folds into the
    global clock.  Plain lists/ints, so worker results pickle cheaply.
    """

    num_ports: int
    delivered_words: int = 0
    delivered_packets: int = 0
    per_port_words: List[int] = field(default_factory=list)
    per_port_packets: List[int] = field(default_factory=list)
    blocked_events: int = 0
    #: max (words + expansion) over the partition's chips, one entry per
    #: *measured* quantum (0 = every owned chip idled that quantum).
    body_max: List[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.per_port_words:
            self.per_port_words = [0] * self.num_ports
        if not self.per_port_packets:
            self.per_port_packets = [0] * self.num_ports


class PartitionSim:
    """Advance one partition (a node subset plus its internal channels)
    quantum by quantum.

    Boundary traffic flows through :meth:`inject` (fragments received
    from other partitions) and :attr:`outgoing` / :meth:`drain_outgoing`
    (fragments this partition sent over boundary channels).  A serial
    run is simply a :class:`PartitionSim` owning every node -- no
    boundary traffic exists and the same code path executes.
    """

    def __init__(
        self,
        topo: SpaceTopology,
        node_ids: Iterable[int],
        costs: CostModel = CostModel.default(),
        cache_size: int = 0,
        max_quantum_words: Optional[int] = None,
        fault_plan=None,
    ):
        self.topo = topo
        self.costs = costs
        #: cid -> merged (start, end) down-windows; arrivals landing in
        #: a window defer to its end (identical on both halves of a cut
        #: boundary because the plan travels inside the spec).
        self._fault_windows = link_fault_windows(
            fault_plan, len(topo.channels)
        )
        self.owned = sorted(node_ids)
        own = set(self.owned)
        self.max_quantum_words = (
            costs.max_quantum_words
            if max_quantum_words is None
            else max_quantum_words
        )
        if self.max_quantum_words < 1:
            raise ValueError("max_quantum_words must be >= 1")
        self.nodes: Dict[int, ChipNode] = {
            nid: ChipNode(nid, topo.k, cache_size=cache_size)
            for nid in self.owned
        }
        #: Per-channel arrival FIFO of (arrival quantum, frag) for every
        #: channel terminating in this partition (internal or boundary).
        self.arrivals: Dict[int, Deque[Tuple[int, SpaceFrag]]] = {
            ch.cid: deque() for ch in topo.channels if ch.dst_node in own
        }
        self._in_cids = sorted(self.arrivals)
        #: Owned source legs: leg -> channel, split by whether the far
        #: end is also owned (internal) or not (boundary).
        self._channel_of: Dict[Tuple[int, int], Channel] = {}
        self._is_boundary: Dict[int, bool] = {}
        for ch in topo.channels:
            if ch.src_node in own:
                self._channel_of[(ch.src_node, ch.src_leg)] = ch
                self._is_boundary[ch.cid] = ch.dst_node not in own
        #: External inputs this partition drives, in global-port order.
        self._ext_in = sorted(
            (g, nid, leg) for g, (nid, leg) in topo.ext_in.items()
            if nid in own
        )
        self.outgoing: List[Tuple[int, int, SpaceFrag]] = []
        self.stats = PartStats(num_ports=topo.num_ports)
        #: Captured at construction like the other engines; shared-key
        #: journey mode because a journey's marks span partitions.
        self._tel = _telemetry.RECORDER
        if self._tel is not None:
            self._tel.journeys.share_keys()
        #: Per-external-port admission counter: the journey tag is
        #: ``seq * num_ports + port``, deterministic and identical for
        #: any partitioning (each port is admitted by exactly one
        #: partition, in the same order as the serial reference).
        self._adm_seq: Dict[int, int] = {}

    # -- boundary protocol ---------------------------------------------
    def _arrival(self, ch: Channel, send_quantum: int) -> int:
        """When a fragment sent at ``send_quantum`` becomes visible:
        ``latency`` quanta later, pushed to the end of any down-window
        it lands in (monotone, so per-channel FIFO order holds)."""
        arrival = send_quantum + ch.latency
        windows = self._fault_windows.get(ch.cid)
        if windows:
            for start, end in windows:
                if start <= arrival < end:
                    return end
                if arrival < start:
                    break
        return arrival

    def inject(self, cid: int, send_quantum: int, frag: SpaceFrag) -> None:
        """Deliver a boundary fragment: visible ``latency`` quanta after
        its send quantum (the receiver-side half of the token window)."""
        ch = self.topo.channels[cid]
        self.arrivals[cid].append((self._arrival(ch, send_quantum), frag))

    def drain_outgoing(self) -> List[Tuple[int, int, SpaceFrag]]:
        """(cid, send quantum, frag) sends since the last drain."""
        out = self.outgoing
        self.outgoing = []
        return out

    # -- the stepper ----------------------------------------------------
    def advance(self, source, q_start: int, count: int, warmup: int) -> None:
        """Simulate quanta ``[q_start, q_start + count)``; quanta ``>=
        warmup`` accumulate into :attr:`stats`.

        ``source`` follows the fabric ``PortSource`` protocol and must
        make per-port-independent draws (counter-based models): each
        partition polls only its own external ports, and the draws must
        match what a single process polling all ports would have seen.
        """
        topo = self.topo
        route = topo.route
        ext_out = topo.ext_out
        mqw = self.max_quantum_words
        stats = self.stats
        tel = self._tel
        for q in range(q_start, q_start + count):
            measuring = q >= warmup
            # 1. Channel deliveries due this quantum, in channel order
            #    (each leg has one feeding channel, so per-leg FIFO
            #    order is the channel's send order).
            for cid in self._in_cids:
                fifo = self.arrivals[cid]
                if not fifo or fifo[0][0] > q:
                    continue
                ch = topo.channels[cid]
                node = self.nodes[ch.dst_node]
                queue = node.queues[ch.dst_leg]
                while fifo and fifo[0][0] <= q:
                    _, frag = fifo.popleft()
                    queue.append((frag, route(ch.dst_node, frag[0])))
            # 2. External admissions (one packet when the leg idles).
            for g, nid, leg in self._ext_in:
                queue = self.nodes[nid].queues[leg]
                if queue:
                    continue
                pkt = source(g)
                if pkt is None:
                    continue
                dest, words = pkt
                if not 0 <= dest < topo.num_ports:
                    raise ValueError(f"destination {dest} out of range")
                if words < 1:
                    raise ValueError("packet must have at least one word")
                out_leg = route(nid, dest)
                if tel is not None:
                    seq = self._adm_seq.get(g, 0)
                    self._adm_seq[g] = seq + 1
                    tag = seq * topo.num_ports + g
                    jt = tel.journeys
                    jt.arrive(tag, g, q)
                    jt.lookup(
                        tag, dest, words * (self.costs.word_bits // 8), q
                    )
                    jt.enqueue(tag, q)
                    remaining = words
                    while remaining > 0:
                        w = min(remaining, mqw)
                        remaining -= w
                        queue.append(((dest, w, remaining == 0, tag), out_leg))
                    continue
                remaining = words
                while remaining > 0:
                    w = min(remaining, mqw)
                    remaining -= w
                    queue.append(((dest, w, remaining == 0), out_leg))
            # 3. Step every owned chip; grants fan out to channels,
            #    boundary batches, or external delivery.
            body = 0
            blocked = 0
            for nid in self.owned:
                moved, chip_body, chip_blocked = self.nodes[nid].step()
                if chip_body > body:
                    body = chip_body
                blocked += chip_blocked
                for leg, frag in moved:
                    if tel is not None and len(frag) > 3:
                        tel.journeys.hop(frag[3], q)
                    port = ext_out.get((nid, leg))
                    if port is not None:
                        if measuring:
                            stats.delivered_words += frag[1]
                            stats.per_port_words[port] += frag[1]
                            if frag[2]:
                                stats.delivered_packets += 1
                                stats.per_port_packets[port] += 1
                        if tel is not None and len(frag) > 3 and frag[2]:
                            tel.journeys.depart(frag[3], q)
                        continue
                    ch = self._channel_of[(nid, leg)]
                    if self._is_boundary[ch.cid]:
                        self.outgoing.append((ch.cid, q, frag))
                    else:
                        self.arrivals[ch.cid].append(
                            (self._arrival(ch, q), frag)
                        )
            if measuring:
                stats.body_max.append(body)
                stats.blocked_events += blocked


def merge_part_stats(
    parts: List[PartStats],
    num_ports: int,
    costs: CostModel,
    timing: Optional[PhaseTiming] = None,
) -> "FabricStats":
    """Fold partition counters into one :class:`FabricStats`.

    Local counters sum; the global quantum durations come from the
    element-wise max of the per-quantum body maxima (a quantum's length
    is set by its longest transfer anywhere in the fabric, and ``max``
    is associative, so any partition grouping merges identically).
    """
    from repro.core.fabricsim import FabricStats

    if not parts:
        raise ValueError("nothing to merge")
    if timing is None:
        timing = (
            DEFAULT_TIMING
            if costs.quantum_ctl_overhead == DEFAULT_TIMING.control_total
            else PhaseTiming.for_model(costs)
        )
    lengths = {len(p.body_max) for p in parts}
    if len(lengths) != 1:
        raise ValueError(
            "partitions measured different quantum counts: "
            f"{sorted(lengths)}"
        )
    quanta = lengths.pop()
    stats = FabricStats(num_ports=num_ports, costs=costs)
    stats.quanta = quanta
    body = [0] * quanta
    for p in parts:
        if p.num_ports != num_ports:
            raise ValueError("cannot merge stats with different port counts")
        stats.delivered_words += p.delivered_words
        stats.delivered_packets += p.delivered_packets
        stats.blocked_events += p.blocked_events
        for i, v in enumerate(p.per_port_words):
            stats.per_port_words[i] += v
        for i, v in enumerate(p.per_port_packets):
            stats.per_port_packets[i] += v
        for i, b in enumerate(p.body_max):
            if b > body[i]:
                body[i] = b
    ctl = timing.control_total
    idle = idle_quantum_cycles(timing)
    for b in body:
        if b:
            stats.cycles += ctl + b
        else:
            stats.idle_quanta += 1
            stats.cycles += idle
    return stats


def part_payload(stats: PartStats) -> Dict[str, Any]:
    """The picklable worker-result form of :class:`PartStats`."""
    return {
        "num_ports": stats.num_ports,
        "delivered_words": stats.delivered_words,
        "delivered_packets": stats.delivered_packets,
        "per_port_words": list(stats.per_port_words),
        "per_port_packets": list(stats.per_port_packets),
        "blocked_events": stats.blocked_events,
        "body_max": list(stats.body_max),
    }


def payload_to_stats(payload: Dict[str, Any]) -> PartStats:
    return PartStats(**payload)
