"""The Rotating Crossbar allocation rule (thesis sections 5.1-5.2).

Once per routing quantum, every Crossbar Processor knows all four packet
headers (exchanged around the ring) and the token position; each then
*independently* evaluates the same deterministic rule and therefore
arrives at the same global configuration -- that is what makes the
scheduling distributed without any control messages beyond the header
exchange.  :class:`Allocator` is that rule:

1. Visit inputs in token order (master first, then downstream).
2. An input with an empty queue, or whose requested output is already
   claimed this quantum, does not transmit.
3. Otherwise reserve a ring path: clockwise first, counterclockwise if
   any clockwise segment is taken (and network 2 last, when enabled).

The master can never be denied (its claims are first), which yields the
starvation bound of section 5.4; granted paths are link-disjoint by
construction, which yields deadlock freedom (section 5.5) -- both are
checked property-style in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.ring import Link, Path, RingGeometry


#: An input's per-quantum request: the destination output port, or None
#: when its input queue is empty.
Request = Optional[int]


@dataclass(frozen=True)
class Grant:
    """One input's granted transfer for the quantum."""

    src: int
    dst: int
    path: Path

    @property
    def expansion(self) -> int:
        """Ring hops between source and destination crossbar tiles."""
        return self.path.hops


@dataclass
class Allocation:
    """The global crossbar configuration for one quantum."""

    token: int
    requests: Tuple[Request, ...]
    grants: Dict[int, Grant] = field(default_factory=dict)
    blocked: Set[int] = field(default_factory=set)  #: requested but denied
    used_links: Set[Link] = field(default_factory=set)

    @property
    def num_granted(self) -> int:
        return len(self.grants)

    @property
    def max_expansion(self) -> int:
        return max((g.expansion for g in self.grants.values()), default=0)

    def granted_outputs(self) -> Set[int]:
        return {g.dst for g in self.grants.values()}

    def is_conflict_free(self) -> bool:
        """Outputs unique and ring links disjoint across grants."""
        outputs = [g.dst for g in self.grants.values()]
        if len(outputs) != len(set(outputs)):
            return False
        seen: Set[Link] = set()
        for g in self.grants.values():
            for link in g.path.links:
                if link in seen:
                    return False
                seen.add(link)
        return True


class Allocator:
    """Deterministic per-quantum allocation over a ring geometry.

    Parameters
    ----------
    ring:
        The crossbar ring (N ports).
    networks:
        1 (the router's configuration; section 5.3 shows it suffices) or
        2 (the section-8.1 ablation enabling Raw's second static network).
    """

    def __init__(self, ring: RingGeometry, networks: int = 1):
        if networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        self.ring = ring
        self.networks = networks

    @classmethod
    def from_config(cls, config) -> "Allocator":
        """Build from a :class:`repro.config.SimConfig` (ports + networks)."""
        return cls(RingGeometry(config.ports), networks=config.networks)

    def allocate(self, requests: Sequence[Request], token: int) -> Allocation:
        """Compute the quantum's configuration.

        ``requests[i]`` is input ``i``'s head-of-line destination or None.
        Deterministic: every crossbar tile evaluating this with the same
        inputs produces the identical allocation.
        """
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        alloc = Allocation(token=token, requests=tuple(requests))
        claimed_outputs: Set[int] = set()
        used: Set[Link] = alloc.used_links
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            if not 0 <= dst < n:
                raise ValueError(f"request {dst} out of range at input {src}")
            if dst in claimed_outputs:
                alloc.blocked.add(src)
                continue
            granted_path = None
            for path in self.ring.candidate_paths(src, dst, self.networks):
                if not any(link in used for link in path.links):
                    granted_path = path
                    break
            if granted_path is None:
                alloc.blocked.add(src)
                continue
            claimed_outputs.add(dst)
            used.update(granted_path.links)
            used.add(Link("out", dst))
            used.add(Link("in", src))
            alloc.grants[src] = Grant(src=src, dst=dst, path=granted_path)
        return alloc

    # ------------------------------------------------------------------
    def master_always_granted(self, requests: Sequence[Request], token: int) -> bool:
        """Sanity predicate used by the fairness tests: a requesting
        master is granted in every reachable state."""
        alloc = self.allocate(requests, token)
        return requests[token] is None or token in alloc.grants
