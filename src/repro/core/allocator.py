"""The Rotating Crossbar allocation rule (thesis sections 5.1-5.2).

Once per routing quantum, every Crossbar Processor knows all four packet
headers (exchanged around the ring) and the token position; each then
*independently* evaluates the same deterministic rule and therefore
arrives at the same global configuration -- that is what makes the
scheduling distributed without any control messages beyond the header
exchange.  :class:`Allocator` is that rule:

1. Visit inputs in token order (master first, then downstream).
2. An input with an empty queue, or whose requested output is already
   claimed this quantum, does not transmit.
3. Otherwise reserve a ring path: clockwise first, counterclockwise if
   any clockwise segment is taken (and network 2 last, when enabled).

The master can never be denied (its claims are first), which yields the
starvation bound of section 5.4; granted paths are link-disjoint by
construction, which yields deadlock freedom (section 5.5) -- both are
checked property-style in the tests.

Fast path (thesis section 6 at runtime)
---------------------------------------
The thesis's chapter-6 trick is collapsing the 5^4 x 4 configuration
space into ~32 reusable switch programs computed once, offline.  The
runtime mirror here has two tiers, both behind :meth:`Allocator.enable_cache`:

* the **compiled tables** (:class:`CompiledAllocator`) precompute, per
  (src, dst), the candidate paths' link sets as integer bitmasks plus
  shared frozen :class:`Grant` objects, so evaluating the rule never
  rebuilds :class:`~repro.core.ring.Path`/``Link`` objects;
* an **LRU cache** on ``allocate(requests, token)`` keyed by the exact
  ``(requests, token)`` tuple, with hit/miss counters, for workloads
  whose request state recurs (every deterministic saturated pattern).

Both tiers are bit-identical to the uncached rule (property-tested in
``tests/test_fabric_fastpath.py``): cached :class:`Allocation` objects
are shared and must be treated as read-only by callers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ring import Link, Path, RingGeometry


#: An input's per-quantum request: the destination output port, or None
#: when its input queue is empty.
Request = Optional[int]


@dataclass(frozen=True)
class Grant:
    """One input's granted transfer for the quantum."""

    src: int
    dst: int
    path: Path

    @property
    def expansion(self) -> int:
        """Ring hops between source and destination crossbar tiles."""
        return self.path.hops


@dataclass
class Allocation:
    """The global crossbar configuration for one quantum."""

    token: int
    requests: Tuple[Request, ...]
    grants: Dict[int, Grant] = field(default_factory=dict)
    blocked: Set[int] = field(default_factory=set)  #: requested but denied
    used_links: Set[Link] = field(default_factory=set)

    @property
    def num_granted(self) -> int:
        return len(self.grants)

    @property
    def max_expansion(self) -> int:
        return max((g.expansion for g in self.grants.values()), default=0)

    def granted_outputs(self) -> Set[int]:
        return {g.dst for g in self.grants.values()}

    def is_conflict_free(self) -> bool:
        """Outputs unique and ring links disjoint across grants."""
        outputs = [g.dst for g in self.grants.values()]
        if len(outputs) != len(set(outputs)):
            return False
        seen: Set[Link] = set()
        for g in self.grants.values():
            for link in g.path.links:
                if link in seen:
                    return False
                seen.add(link)
        return True


class Allocator:
    """Deterministic per-quantum allocation over a ring geometry.

    Parameters
    ----------
    ring:
        The crossbar ring (N ports).
    networks:
        1 (the router's configuration; section 5.3 shows it suffices) or
        2 (the section-8.1 ablation enabling Raw's second static network).
    """

    def __init__(self, ring: RingGeometry, networks: int = 1,
                 cache_size: int = 0):
        if networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        self.ring = ring
        self.networks = networks
        self._compiled: Optional["CompiledAllocator"] = None
        self._cache: Optional[OrderedDict] = None
        self._cache_size = 0
        self.cache_hits = 0
        self.cache_misses = 0
        if cache_size:
            self.enable_cache(cache_size)

    @classmethod
    def from_config(cls, config) -> "Allocator":
        """Build from a :class:`repro.config.SimConfig` (ports + networks)."""
        return cls(
            RingGeometry(config.ports),
            networks=config.networks,
            cache_size=getattr(config, "alloc_cache", 0),
        )

    # ------------------------------------------------------------------
    # Fast path: compiled tables + LRU memoization.
    # ------------------------------------------------------------------
    def enable_cache(self, maxsize: int = 4096) -> "Allocator":
        """Turn on the allocation fast path; returns self for chaining.

        Bit-identical to the uncached rule.  Cached allocations are
        shared objects: callers must not mutate them."""
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self._cache = OrderedDict()
        self._cache_size = maxsize
        self._compiled = self.compiled()
        return self

    def disable_cache(self) -> None:
        self._cache = None
        self._cache_size = 0

    @property
    def cache_enabled(self) -> bool:
        return self._cache is not None

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters (the telemetry registry surfaces these)."""
        total = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hits / total if total else 0.0,
            "size": len(self._cache) if self._cache is not None else 0,
            "maxsize": self._cache_size,
        }

    def compiled(self) -> "CompiledAllocator":
        """The precomputed-table evaluator (built once, then shared)."""
        if self._compiled is None:
            self._compiled = CompiledAllocator(self.ring, self.networks)
        return self._compiled

    def allocate(self, requests: Sequence[Request], token: int) -> Allocation:
        """Compute the quantum's configuration.

        ``requests[i]`` is input ``i``'s head-of-line destination or None.
        Deterministic: every crossbar tile evaluating this with the same
        inputs produces the identical allocation.
        """
        cache = self._cache
        if cache is not None:
            key = (tuple(requests), token)
            hit = cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                cache.move_to_end(key)
                return hit
            self.cache_misses += 1
            alloc = self._compiled.allocate(requests, token)
            cache[key] = alloc
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
            return alloc
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        alloc = Allocation(token=token, requests=tuple(requests))
        claimed_outputs: Set[int] = set()
        used: Set[Link] = alloc.used_links
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            if not 0 <= dst < n:
                raise ValueError(f"request {dst} out of range at input {src}")
            if dst in claimed_outputs:
                alloc.blocked.add(src)
                continue
            granted_path = None
            for path in self.ring.candidate_paths(src, dst, self.networks):
                if not any(link in used for link in path.links):
                    granted_path = path
                    break
            if granted_path is None:
                alloc.blocked.add(src)
                continue
            claimed_outputs.add(dst)
            used.update(granted_path.links)
            used.add(Link("out", dst))
            used.add(Link("in", src))
            alloc.grants[src] = Grant(src=src, dst=dst, path=granted_path)
        return alloc

    # ------------------------------------------------------------------
    def master_always_granted(self, requests: Sequence[Request], token: int) -> bool:
        """Sanity predicate used by the fairness tests: a requesting
        master is granted in every reachable state."""
        alloc = self.allocate(requests, token)
        return requests[token] is None or token in alloc.grants


class CompiledAllocator:
    """The allocation rule over precomputed per-(src, dst) tables.

    This is thesis section 6 applied at runtime: the candidate paths,
    their link sets (as integer bitmasks over the ring's directed
    segments), and the frozen :class:`Grant` objects are all computed
    once per geometry, so evaluating a quantum touches no
    ``Path``/``Link`` construction at all.  :meth:`allocate` builds the
    same :class:`Allocation` the plain rule builds (equality-tested
    property-style); :meth:`grants` is the stripped form the sharding
    pilot uses when only the queue evolution matters.
    """

    def __init__(self, ring: RingGeometry, networks: int = 1):
        if networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        self.ring = ring
        self.networks = networks
        n = ring.n
        #: [src][dst] -> tuple of (link_mask, hops, Path, Grant, links);
        #: candidates in the exact preference order of the plain rule.
        self.table: List[List[Tuple[Tuple[int, int, Path, Grant, Tuple[Link, ...]], ...]]] = []
        #: [src][dst] -> (Link("out", dst), Link("in", src)) shared pair.
        self.io_links: List[List[Tuple[Link, Link]]] = []
        for src in range(n):
            row = []
            io_row = []
            for dst in range(n):
                entries = []
                for path in ring.candidate_paths(src, dst, networks):
                    mask = 0
                    for link in path.links:
                        base = (link.network - 1) * 2 * n
                        bit = base + (link.index if link.kind == "cw" else n + link.index)
                        mask |= 1 << bit
                    entries.append(
                        (mask, path.hops, path, Grant(src=src, dst=dst, path=path),
                         path.links)
                    )
                row.append(tuple(entries))
                io_row.append((Link("out", dst), Link("in", src)))
            self.table.append(row)
            self.io_links.append(io_row)

    def allocate(self, requests: Sequence[Request], token: int) -> Allocation:
        """Bit-identical :class:`Allocation` via the compiled tables."""
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        alloc = Allocation(token=token, requests=tuple(requests))
        table = self.table
        used_links = alloc.used_links
        used_mask = 0
        claimed = 0  # bitmask of claimed outputs
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            if not 0 <= dst < n:
                raise ValueError(f"request {dst} out of range at input {src}")
            if claimed >> dst & 1:
                alloc.blocked.add(src)
                continue
            for mask, _hops, _path, grant, links in table[src][dst]:
                if not mask & used_mask:
                    break
            else:
                alloc.blocked.add(src)
                continue
            claimed |= 1 << dst
            used_mask |= mask
            used_links.update(links)
            out_link, in_link = self.io_links[src][dst]
            used_links.add(out_link)
            used_links.add(in_link)
            alloc.grants[src] = grant
        return alloc

    def grants(self, requests: Sequence[Request], token: int) -> Tuple[Tuple[int, int, int], ...]:
        """The granted (src, dst, hops) triples, skipping the Allocation.

        Exactly the grants (and grant order is token order, like the
        plain rule's insertion order) of :meth:`allocate` -- the pilot
        stepper needs only which queues pop and the expansion numbers.
        """
        n = self.ring.n
        table = self.table
        used_mask = 0
        claimed = 0
        out = []
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            for mask, hops, _path, _grant, _links in table[src][dst]:
                if claimed >> dst & 1:
                    break
                if not mask & used_mask:
                    claimed |= 1 << dst
                    used_mask |= mask
                    out.append((src, dst, hops))
                    break
        return tuple(out)
