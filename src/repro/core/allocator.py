"""The Rotating Crossbar allocation rule (thesis sections 5.1-5.2).

Once per routing quantum, every Crossbar Processor knows all four packet
headers (exchanged around the ring) and the token position; each then
*independently* evaluates the same deterministic rule and therefore
arrives at the same global configuration -- that is what makes the
scheduling distributed without any control messages beyond the header
exchange.  :class:`Allocator` is that rule:

1. Visit inputs in token order (master first, then downstream).
2. An input with an empty queue, or whose requested output is already
   claimed this quantum, does not transmit.
3. Otherwise reserve a ring path: clockwise first, counterclockwise if
   any clockwise segment is taken (and network 2 last, when enabled).

The master can never be denied (its claims are first), which yields the
starvation bound of section 5.4; granted paths are link-disjoint by
construction, which yields deadlock freedom (section 5.5) -- both are
checked property-style in the tests.

Fast path (thesis section 6 at runtime)
---------------------------------------
The thesis's chapter-6 trick is collapsing the 5^4 x 4 configuration
space into ~32 reusable switch programs computed once, offline.  The
runtime mirror here has two tiers, both behind :meth:`Allocator.enable_cache`:

* the **compiled tables** (:class:`CompiledAllocator`) precompute, per
  (src, dst), the candidate paths' link sets as integer bitmasks plus
  shared frozen :class:`Grant` objects, so evaluating the rule never
  rebuilds :class:`~repro.core.ring.Path`/``Link`` objects;
* an **LRU cache** on ``allocate(requests, token)`` keyed by the exact
  ``(requests, token)`` tuple, with hit/miss counters, for workloads
  whose request state recurs (every deterministic saturated pattern).

Both tiers are bit-identical to the uncached rule (property-tested in
``tests/test_fabric_fastpath.py``): cached :class:`Allocation` objects
are shared and must be treated as read-only by callers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ring import Link, Path, RingGeometry


#: An input's per-quantum request: the destination output port, or None
#: when its input queue is empty.
Request = Optional[int]


@dataclass(frozen=True)
class Grant:
    """One input's granted transfer for the quantum."""

    src: int
    dst: int
    path: Path

    @property
    def expansion(self) -> int:
        """Ring hops between source and destination crossbar tiles."""
        return self.path.hops


@dataclass
class Allocation:
    """The global crossbar configuration for one quantum."""

    token: int
    requests: Tuple[Request, ...]
    grants: Dict[int, Grant] = field(default_factory=dict)
    blocked: Set[int] = field(default_factory=set)  #: requested but denied
    used_links: Set[Link] = field(default_factory=set)

    @property
    def num_granted(self) -> int:
        return len(self.grants)

    @property
    def max_expansion(self) -> int:
        return max((g.expansion for g in self.grants.values()), default=0)

    def granted_outputs(self) -> Set[int]:
        return {g.dst for g in self.grants.values()}

    def is_conflict_free(self) -> bool:
        """Outputs unique and ring links disjoint across grants."""
        outputs = [g.dst for g in self.grants.values()]
        if len(outputs) != len(set(outputs)):
            return False
        seen: Set[Link] = set()
        for g in self.grants.values():
            for link in g.path.links:
                if link in seen:
                    return False
                seen.add(link)
        return True


class Allocator:
    """Deterministic per-quantum allocation over a ring geometry.

    Parameters
    ----------
    ring:
        The crossbar ring (N ports).
    networks:
        1 (the router's configuration; section 5.3 shows it suffices) or
        2 (the section-8.1 ablation enabling Raw's second static network).
    """

    def __init__(self, ring: RingGeometry, networks: int = 1,
                 cache_size: int = 0):
        if networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        self.ring = ring
        self.networks = networks
        self._compiled: Optional["CompiledAllocator"] = None
        self._cache: Optional[OrderedDict] = None
        self._cache_size = 0
        self.cache_hits = 0
        self.cache_misses = 0
        if cache_size:
            self.enable_cache(cache_size)

    @classmethod
    def from_config(cls, config) -> "Allocator":
        """Build from a :class:`repro.config.SimConfig` (ports + networks)."""
        return cls(
            RingGeometry(config.ports),
            networks=config.networks,
            cache_size=getattr(config, "alloc_cache", 0),
        )

    # ------------------------------------------------------------------
    # Fast path: compiled tables + LRU memoization.
    # ------------------------------------------------------------------
    def enable_cache(self, maxsize: int = 4096) -> "Allocator":
        """Turn on the allocation fast path; returns self for chaining.

        Bit-identical to the uncached rule.  Cached allocations are
        shared objects: callers must not mutate them."""
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self._cache = OrderedDict()
        self._cache_size = maxsize
        self._compiled = self.compiled()
        return self

    def disable_cache(self) -> None:
        self._cache = None
        self._cache_size = 0

    @property
    def cache_enabled(self) -> bool:
        return self._cache is not None

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters (the telemetry registry surfaces these)."""
        total = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hits / total if total else 0.0,
            "size": len(self._cache) if self._cache is not None else 0,
            "maxsize": self._cache_size,
        }

    def compiled(self) -> "CompiledAllocator":
        """The precomputed-table evaluator (built once, then shared)."""
        if self._compiled is None:
            self._compiled = CompiledAllocator(self.ring, self.networks)
        return self._compiled

    def allocate(self, requests: Sequence[Request], token: int) -> Allocation:
        """Compute the quantum's configuration.

        ``requests[i]`` is input ``i``'s head-of-line destination or None.
        Deterministic: every crossbar tile evaluating this with the same
        inputs produces the identical allocation.
        """
        cache = self._cache
        if cache is not None:
            key = (tuple(requests), token)
            hit = cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                cache.move_to_end(key)
                return hit
            self.cache_misses += 1
            alloc = self._compiled.allocate(requests, token)
            cache[key] = alloc
            if len(cache) > self._cache_size:
                cache.popitem(last=False)
            return alloc
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        alloc = Allocation(token=token, requests=tuple(requests))
        claimed_outputs: Set[int] = set()
        used: Set[Link] = alloc.used_links
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            if not 0 <= dst < n:
                raise ValueError(f"request {dst} out of range at input {src}")
            if dst in claimed_outputs:
                alloc.blocked.add(src)
                continue
            granted_path = None
            for path in self.ring.candidate_paths(src, dst, self.networks):
                if not any(link in used for link in path.links):
                    granted_path = path
                    break
            if granted_path is None:
                alloc.blocked.add(src)
                continue
            claimed_outputs.add(dst)
            used.update(granted_path.links)
            used.add(Link("out", dst))
            used.add(Link("in", src))
            alloc.grants[src] = Grant(src=src, dst=dst, path=granted_path)
        return alloc

    # ------------------------------------------------------------------
    def master_always_granted(self, requests: Sequence[Request], token: int) -> bool:
        """Sanity predicate used by the fairness tests: a requesting
        master is granted in every reachable state."""
        alloc = self.allocate(requests, token)
        return requests[token] is None or token in alloc.grants


class CompiledAllocator:
    """The allocation rule over precomputed per-(src, dst) tables.

    This is thesis section 6 applied at runtime: the candidate paths,
    their link sets (as integer bitmasks over the ring's directed
    segments), and the frozen :class:`Grant` objects are all computed
    once per geometry, so evaluating a quantum touches no
    ``Path``/``Link`` construction at all.  :meth:`allocate` builds the
    same :class:`Allocation` the plain rule builds (equality-tested
    property-style); :meth:`grants` is the stripped form the sharding
    pilot uses when only the queue evolution matters.
    """

    def __init__(self, ring: RingGeometry, networks: int = 1):
        if networks not in (1, 2):
            raise ValueError("Raw has one or two static networks")
        self.ring = ring
        self.networks = networks
        self._tensors = None  #: lazily built by :meth:`lookup_tensors`
        n = ring.n
        #: [src][dst] -> tuple of (link_mask, hops, Path, Grant, links);
        #: candidates in the exact preference order of the plain rule.
        self.table: List[List[Tuple[Tuple[int, int, Path, Grant, Tuple[Link, ...]], ...]]] = []
        #: [src][dst] -> (Link("out", dst), Link("in", src)) shared pair.
        self.io_links: List[List[Tuple[Link, Link]]] = []
        for src in range(n):
            row = []
            io_row = []
            for dst in range(n):
                entries = []
                for path in ring.candidate_paths(src, dst, networks):
                    mask = 0
                    for link in path.links:
                        base = (link.network - 1) * 2 * n
                        bit = base + (link.index if link.kind == "cw" else n + link.index)
                        mask |= 1 << bit
                    entries.append(
                        (mask, path.hops, path, Grant(src=src, dst=dst, path=path),
                         path.links)
                    )
                row.append(tuple(entries))
                io_row.append((Link("out", dst), Link("in", src)))
            self.table.append(row)
            self.io_links.append(io_row)

    def allocate(self, requests: Sequence[Request], token: int) -> Allocation:
        """Bit-identical :class:`Allocation` via the compiled tables."""
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        alloc = Allocation(token=token, requests=tuple(requests))
        table = self.table
        used_links = alloc.used_links
        used_mask = 0
        claimed = 0  # bitmask of claimed outputs
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            if not 0 <= dst < n:
                raise ValueError(f"request {dst} out of range at input {src}")
            if claimed >> dst & 1:
                alloc.blocked.add(src)
                continue
            for mask, _hops, _path, grant, links in table[src][dst]:
                if not mask & used_mask:
                    break
            else:
                alloc.blocked.add(src)
                continue
            claimed |= 1 << dst
            used_mask |= mask
            used_links.update(links)
            out_link, in_link = self.io_links[src][dst]
            used_links.add(out_link)
            used_links.add(in_link)
            alloc.grants[src] = grant
        return alloc

    def grants(self, requests: Sequence[Request], token: int) -> Tuple[Tuple[int, int, int], ...]:
        """The granted (src, dst, hops) triples, skipping the Allocation.

        Exactly the grants (and grant order is token order, like the
        plain rule's insertion order) of :meth:`allocate` -- the pilot
        stepper needs only which queues pop and the expansion numbers.
        """
        n = self.ring.n
        table = self.table
        used_mask = 0
        claimed = 0
        out = []
        for offset in range(n):
            src = (token + offset) % n
            dst = requests[src]
            if dst is None:
                continue
            for mask, hops, _path, _grant, _links in table[src][dst]:
                if claimed >> dst & 1:
                    break
                if not mask & used_mask:
                    claimed |= 1 << dst
                    used_mask |= mask
                    out.append((src, dst, hops))
                    break
        return tuple(out)

    # ------------------------------------------------------------------
    # Batch path: the many-worlds engine's vectorized allocation.
    # ------------------------------------------------------------------
    def lookup_tensors(self):
        """Shared numpy lookup tensors for the batch allocation rule.

        Returns ``(mask, hops, valid)``, each of shape ``[n, n, C]``
        where ``C`` is the maximum candidate count over all (src, dst)
        pairs: ``mask[s, d, c]`` is candidate ``c``'s link bitmask (the
        same bit layout :meth:`allocate` uses, as ``uint64``),
        ``hops[s, d, c]`` its ring expansion, and ``valid[s, d, c]``
        False for padding slots past the pair's real candidates.  Built
        once per geometry and cached; every world of a batch run shares
        the same tensors, which is what makes the per-quantum step an
        array program instead of ``n_worlds`` table walks.

        Raises ``ValueError`` when the link-bit layout does not fit a
        ``uint64`` lane (``networks * 2 * n > 64``) -- callers treat
        that as "fall back to the scalar engine".
        """
        if self._tensors is None:
            import numpy as np

            n = self.ring.n
            bits = self.networks * 2 * n
            if bits > 64:
                raise ValueError(
                    f"link bitmask needs {bits} bits (networks="
                    f"{self.networks}, n={n}); the uint64 batch path "
                    "tops out at 64"
                )
            cmax = max(
                len(self.table[s][d]) for s in range(n) for d in range(n)
            )
            mask_t = np.zeros((n, n, cmax), dtype=np.uint64)
            hops_t = np.zeros((n, n, cmax), dtype=np.int64)
            valid_t = np.zeros((n, n, cmax), dtype=bool)
            for s in range(n):
                for d in range(n):
                    for c, (mask, hops, _p, _g, _l) in enumerate(self.table[s][d]):
                        mask_t[s, d, c] = mask
                        hops_t[s, d, c] = hops
                        valid_t[s, d, c] = True
            self._tensors = (mask_t, hops_t, valid_t)
        return self._tensors

    def _batch_tables(self):
        """Hot-path variants of :meth:`lookup_tensors`, cached.

        Returns ``(maskp, hopsp, bit_table, sentinel, link_mask)``:
        ``maskp`` is the candidate-mask tensor flattened to
        ``[n * n, C]`` with padding slots set to all-ones, and
        ``sentinel`` is a spare link bit kept permanently set in the
        ``used`` mask so all-ones padding slots are never free.  When
        the link layout leaves bits 56..63 free and hop counts fit a
        byte, each candidate's hop count is *packed into its mask's top
        byte* (one gather serves both) -- then ``hopsp`` is None and
        ``link_mask`` strips the hop byte before masks enter ``used``.
        Otherwise ``hopsp`` is the ``[n * n, C]`` hop tensor and
        ``link_mask`` is all-ones.  ``bit_table[d] == 1 << d``.  When
        the link layout uses all 64 bits there is no spare sentinel bit;
        padding is still safe because every (src, dst) pair has at least
        one real candidate ordered before its padding (enforced here).
        """
        if getattr(self, "_batch", None) is None:
            import numpy as np

            mask_t, hops_t, valid_t = self.lookup_tensors()
            n = self.ring.n
            bits = self.networks * 2 * n
            if bits >= 64 and not valid_t.any(axis=2).all():
                raise ValueError(
                    "batch path needs a spare link bit or at least one "
                    "candidate per (src, dst) pair"
                )
            sentinel = np.uint64(1 << bits) if bits < 64 else np.uint64(0)
            all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
            maskp = np.where(valid_t, mask_t, all_ones).reshape(n * n, -1)
            bit_table = np.uint64(1) << np.arange(n, dtype=np.uint64)
            if bits <= 55 and int(hops_t.max(initial=0)) < 256:
                maskp = maskp | (
                    hops_t.astype(np.uint64).reshape(n * n, -1)
                    << np.uint64(56)
                )
                self._batch = (
                    maskp, None, bit_table, sentinel,
                    np.uint64((1 << 56) - 1),
                )
            else:
                hopsp = hops_t.reshape(n * n, -1)
                self._batch = (maskp, hopsp, bit_table, sentinel, all_ones)
        return self._batch

    def batch_grants(self, dests, token: int):
        """:meth:`grants` over a whole batch of worlds at once.

        ``dests`` is an integer array of shape ``[W, n]``: world ``w``'s
        input ``i`` requests output ``dests[w, i]``, with ``-1`` for "no
        request" (the ``None`` of the scalar rule).  ``token`` is scalar
        -- all worlds advance the rotating token in lock-step.

        Returns ``(granted, hops)``, both ``[W, n]``: ``granted[w, i]``
        is True when input ``i`` transmits this quantum in world ``w``,
        and ``hops[w, i]`` is the granted path's ring expansion (0 where
        not granted).  Row ``w`` equals :meth:`grants` on that world's
        request tuple -- the bit-identity contract the many-worlds
        engine's world-0 check rests on.
        """
        import numpy as np

        n = self.ring.n
        if dests.shape[1] != n:
            raise ValueError(f"expected {n} request lanes, got {dests.shape[1]}")
        if not 0 <= token < n:
            raise ValueError(f"token {token} out of range")
        if dests.max(initial=-1) >= n:
            raise ValueError("request destination out of range")
        nworlds = dests.shape[0]
        zero = np.uint64(0)
        req_all = dests >= 0
        d_all = np.where(req_all, dests, 0)
        maskp, hopsp, bit_table, sentinel, link_mask = self._batch_tables()
        packed = hopsp is None
        # Gather every lane's candidate masks (hop counts packed in the
        # top byte when the layout allows) once up front ([W, n, C])
        # through a flat index; the offset loop below then only slices
        # views out of them, so its per-iteration cost is a handful of
        # [W]-sized ufunc calls.
        flat = np.arange(n)[None, :] * n + d_all
        cand_all = maskp[flat]
        hops_all = None if packed else hopsp[flat]
        bit_all = bit_table[d_all]
        cmax = cand_all.shape[2]
        hop_shift = np.uint64(56)
        claimed = np.zeros(nworlds, dtype=np.uint64)  # output bitmask
        # ``used`` starts with the sentinel bit set, so padding slots
        # (mask all-ones) are never free -- no valid_t in the hot loop.
        # Candidate hop bytes never reach ``used`` (link_mask strips
        # them), so the free test below sees link bits only.
        used = np.full(nworlds, sentinel, dtype=np.uint64)  # link bitmask
        granted = np.zeros((nworlds, n), dtype=bool)
        hops = np.zeros((nworlds, n), dtype=np.int64)
        for offset in range(n):
            src = (token + offset) % n
            # First-free candidate scan, lowest index first (the scalar
            # rule's candidate order) -- plain ufuncs beat argmax + fancy
            # indexing at these widths.
            sel = cand_all[:, src, 0]
            hsel = None if packed else hops_all[:, src, 0]
            any_free = (sel & used) == zero
            for c in range(1, cmax):
                cc = cand_all[:, src, c]
                fc = (cc & used) == zero
                take = ~any_free & fc
                sel = np.where(take, cc, sel)
                if not packed:
                    hsel = np.where(take, hops_all[:, src, c], hsel)
                any_free |= fc
            bit = bit_all[:, src]
            g = req_all[:, src] & ((claimed & bit) == zero) & any_free
            used |= np.where(g, sel, zero) & link_mask
            claimed |= np.where(g, bit, zero)
            granted[:, src] = g
            if packed:
                hsel = sel >> hop_shift
            hops[:, src] = np.where(g, hsel, 0)
        return granted, hops
