"""Multicast in the Rotating Crossbar (thesis section 8.6).

The extension the thesis sketches: "allowing a single Ingress Processor
to send data to several Egress Processors simultaneously."  A static
switch can fan one incoming word out to several crossbar directions in
the same cycle, so a single clockwise (or counterclockwise) pass can
drop copies at every requested egress it passes -- the fabric replicates
cells instead of the ingress, exactly the fanout-splitting argument the
thesis quotes from McKeown for the GSR (section 2.2.2).

:class:`MulticastAllocator` extends the token rule: in priority order,
each input with a multicast head-of-line fragment claims, along each
ring direction in turn, the longest prefix of free segments, serving
every still-unclaimed requested output it reaches.  Unserved leaves stay
in the request (fanout splitting) and are retried next quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.ring import CCW, CW, Link, Path, RingGeometry

#: A multicast request: the set of output ports still to be served.
MulticastRequest = Optional[FrozenSet[int]]


@dataclass(frozen=True)
class MulticastGrant:
    """One input's (possibly partial) multicast service for a quantum."""

    src: int
    served: FrozenSet[int]  #: outputs covered this quantum
    paths: Tuple[Path, ...]  #: one per direction used (cw and/or ccw)

    @property
    def expansion(self) -> int:
        return max((p.hops for p in self.paths), default=0)

    @property
    def copies(self) -> int:
        return len(self.served)


@dataclass
class MulticastAllocation:
    token: int
    requests: Tuple[MulticastRequest, ...]
    grants: Dict[int, MulticastGrant] = field(default_factory=dict)
    blocked: Set[int] = field(default_factory=set)
    used_links: Set[Link] = field(default_factory=set)

    @property
    def total_copies(self) -> int:
        return sum(g.copies for g in self.grants.values())

    @property
    def max_expansion(self) -> int:
        return max((g.expansion for g in self.grants.values()), default=0)

    def is_conflict_free(self) -> bool:
        outputs: Set[int] = set()
        links: Set[Link] = set()
        for g in self.grants.values():
            if outputs & g.served:
                return False
            outputs |= g.served
            for p in g.paths:
                for link in p.links:
                    if link in links:
                        return False
                    links.add(link)
        return True


class MulticastAllocator:
    """Token-ordered multicast allocation with fanout splitting."""

    def __init__(self, ring: RingGeometry):
        self.ring = ring

    def allocate(
        self, requests: Sequence[MulticastRequest], token: int
    ) -> MulticastAllocation:
        n = self.ring.n
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        alloc = MulticastAllocation(token=token, requests=tuple(requests))
        claimed: Set[int] = set()
        used: Set[Link] = alloc.used_links
        for offset in range(n):
            src = (token + offset) % n
            want = requests[src]
            if want is None:
                continue
            if not want:
                raise ValueError(f"input {src}: empty multicast set")
            pending = set(want) - claimed
            if not pending:
                alloc.blocked.add(src)
                continue
            served: Set[int] = set()
            paths: List[Path] = []
            # Self-destination needs no ring links at all.
            if src in pending:
                served.add(src)
                pending.discard(src)
            # Assign each leaf its shorter ring direction (clockwise on
            # ties, the unicast rule) so the sweep stays link-frugal and
            # leaves segments for downstream inputs.
            assignment: Dict[str, Set[int]] = {CW: set(), CCW: set()}
            for dst in pending:
                if self.ring.cw_distance(src, dst) <= self.ring.ccw_distance(src, dst):
                    assignment[CW].add(dst)
                else:
                    assignment[CCW].add(dst)
            for direction in (CW, CCW):
                got = self._sweep(src, direction, assignment[direction], used)
                if got is None:
                    continue
                path, covered = got
                paths.append(path)
                served |= covered
                pending -= covered
            # Fallback: leaves whose short direction was blocked may be
            # reachable the long way around, if that side is unused.
            for direction in (CW, CCW):
                if not pending:
                    break
                if any(p.direction == direction for p in paths):
                    continue
                got = self._sweep(src, direction, pending, used)
                if got is None:
                    continue
                path, covered = got
                paths.append(path)
                served |= covered
                pending -= covered
            if not served:
                alloc.blocked.add(src)
                continue
            claimed |= served
            for p in paths:
                used.update(p.links)
            for dst in served:
                used.add(Link("out", dst))
            used.add(Link("in", src))
            alloc.grants[src] = MulticastGrant(
                src=src, served=frozenset(served), paths=tuple(paths)
            )
        return alloc

    def _sweep(
        self, src: int, direction: str, pending: Set[int], used: Set[Link]
    ) -> Optional[Tuple[Path, Set[int]]]:
        """Longest free-segment prefix from ``src`` in ``direction``;
        returns the path to the farthest served output plus the covered set."""
        if not pending:
            return None
        n = self.ring.n
        covered: Set[int] = set()
        farthest = 0
        node = src
        for step in range(1, n):
            link = (
                Link(CW, node) if direction == CW else Link(CCW, node)
            )
            if link in used:
                break
            node = (node + 1) % n if direction == CW else (node - 1) % n
            if node in pending:
                covered.add(node)
                farthest = step
        if not covered:
            return None
        # Trim the path at the farthest output actually served.
        dst = (src + farthest) % n if direction == CW else (src - farthest) % n
        return self.ring.path(src, dst, direction), covered


def ingress_replication_quanta(fanout: int) -> int:
    """Quanta a unicast-only fabric needs for the same fanout (the
    baseline the multicast experiment compares against)."""
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    return fanout
