"""Fairness analysis of the Rotating Crossbar (thesis section 5.4).

The token guarantees that a backlogged input is master at least once
every N quanta (every ``sum(weights)`` for the weighted variant) and a
requesting master is always granted, so the starvation gap is bounded --
unlike non-token schemes where upstream tiles can flood the static
network indefinitely.  :func:`analyze_service` measures the realized
bounds and shares from a quantum-by-quantum history; the tests and the
fairness benchmark assert the bound over adversarial traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import Allocation


@dataclass
class FairnessReport:
    """Per-port service statistics over a run."""

    num_ports: int
    quanta: int
    offered: List[int]  #: quanta in which the port had a request
    served: List[int]  #: quanta in which the port was granted
    served_words: List[int]  #: words actually moved per port
    max_gap: List[int]  #: longest run of consecutive denied-while-backlogged

    @property
    def service_ratio(self) -> List[float]:
        return [
            s / o if o else 0.0 for s, o in zip(self.served, self.offered)
        ]

    @property
    def jains(self) -> float:
        return jains_index(self.served_words)

    def worst_starvation_gap(self) -> int:
        return max(self.max_gap, default=0)


def jains_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly even, 1/n = one port hogs."""
    x = np.asarray(shares, dtype=float)
    if x.size == 0 or not np.any(x):
        return 1.0
    return float(x.sum() ** 2 / (x.size * (x * x).sum()))


def analyze_service(
    history: Sequence[Tuple[Tuple[Optional[int], ...], Allocation]],
    words_per_grant: Optional[Sequence[Dict[int, int]]] = None,
) -> FairnessReport:
    """Build a :class:`FairnessReport` from (requests, allocation) pairs.

    ``words_per_grant[q]`` optionally maps granted input -> words moved
    in quantum ``q`` (defaults to 1 per grant, i.e. quantum-count
    fairness).
    """
    if not history:
        raise ValueError("empty history")
    n = len(history[0][0])
    offered = [0] * n
    served = [0] * n
    served_words = [0] * n
    gap = [0] * n
    max_gap = [0] * n
    for q, (requests, alloc) in enumerate(history):
        for port in range(n):
            if requests[port] is None:
                gap[port] = 0
                continue
            offered[port] += 1
            if port in alloc.grants:
                served[port] += 1
                words = 1
                if words_per_grant is not None:
                    words = words_per_grant[q].get(port, 0)
                served_words[port] += words
                gap[port] = 0
            else:
                gap[port] += 1
                max_gap[port] = max(max_gap[port], gap[port])
    return FairnessReport(
        num_ports=n,
        quanta=len(history),
        offered=offered,
        served=served,
        served_words=served_words,
        max_gap=max_gap,
    )
