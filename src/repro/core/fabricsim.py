"""Quantum-level fabric simulator: the allocator driven over time.

This is the lightweight engine behind the fabric-only experiments
(average throughput, fairness, scaling, second-network and quantum-size
ablations): no kernel processes, just the Rotating Crossbar's quantum
loop -- poll head-of-line requests, run the allocation rule, advance the
clock by the quantum's phase cost, deliver fragments, rotate the token.
The full router model (:mod:`repro.router`) layers ingress/lookup/egress
pipelines on top; for saturated inputs both models agree on throughput
(cross-checked in tests) because the fabric is the bottleneck stage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocation, Allocator
from repro.core.phases import DEFAULT_TIMING, PhaseTiming, idle_quantum_cycles, quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken

#: A port source: called when the port's input queue is empty; returns
#: (destination port, packet words) or None for "no packet right now".
PortSource = Callable[[int], Optional[Tuple[int, int]]]


@dataclass
class _HolFragment:
    dest: int
    words: int
    is_last: bool
    packet_words: int  #: total words of the parent packet


@dataclass
class FabricStats:
    """Aggregate counters from a fabric run."""

    num_ports: int
    quanta: int = 0
    idle_quanta: int = 0
    cycles: int = 0
    delivered_words: int = 0
    delivered_packets: int = 0
    per_port_words: List[int] = field(default_factory=list)
    per_port_packets: List[int] = field(default_factory=list)
    blocked_events: int = 0
    grant_histogram: List[int] = field(default_factory=list)  #: index = #grants
    costs: CostModel = field(default_factory=CostModel.default)

    def __post_init__(self):
        if not self.per_port_words:
            self.per_port_words = [0] * self.num_ports
        if not self.per_port_packets:
            self.per_port_packets = [0] * self.num_ports
        if not self.grant_histogram:
            self.grant_histogram = [0] * (self.num_ports + 1)

    @property
    def gbps(self) -> float:
        """Aggregate delivered throughput at the configured clock."""
        if self.cycles == 0:
            return 0.0
        return self.costs.gbps(self.delivered_words * self.costs.word_bits, self.cycles)

    @property
    def mpps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.costs.mpps(self.delivered_packets, self.cycles)

    @property
    def words_per_cycle(self) -> float:
        return self.delivered_words / self.cycles if self.cycles else 0.0

    @property
    def mean_grants_per_quantum(self) -> float:
        total = sum(i * c for i, c in enumerate(self.grant_histogram))
        n = sum(self.grant_histogram)
        return total / n if n else 0.0


class FabricSimulator:
    """Drives the Rotating Crossbar over saturated or stochastic inputs.

    Parameters
    ----------
    ring, allocator, token:
        The fabric under test; defaults build the plain 4-port setup.
    max_quantum_words:
        Fragmentation threshold (thesis section 4.3): packets longer
        than this cross the crossbar in multiple quanta.
    timing, pipelined:
        Phase cost model knobs (see :mod:`repro.core.phases`).
    keep_history:
        Record (requests, allocation) per quantum for fairness analysis
        (costs memory; leave off for long throughput runs).
    """

    def __init__(
        self,
        ring: Optional[RingGeometry] = None,
        allocator: Optional[Allocator] = None,
        token: Optional[RotatingToken] = None,
        max_quantum_words: Optional[int] = None,
        timing: Optional[PhaseTiming] = None,
        pipelined: bool = True,
        keep_history: bool = False,
        costs: CostModel = CostModel.default(),
    ):
        self.costs = costs
        self.ring = ring or RingGeometry(4)
        self.allocator = allocator or Allocator(self.ring)
        self.token = token or RotatingToken(self.ring.n)
        if max_quantum_words is None:
            max_quantum_words = costs.max_quantum_words
        if max_quantum_words < 1:
            raise ValueError("max_quantum_words must be >= 1")
        self.max_quantum_words = max_quantum_words
        if timing is None:
            timing = (
                DEFAULT_TIMING
                if costs.quantum_ctl_overhead == DEFAULT_TIMING.control_total
                else PhaseTiming.for_model(costs)
            )
        self.timing = timing
        self.pipelined = pipelined
        self.keep_history = keep_history
        self.history: List[Tuple[Tuple[Optional[int], ...], Allocation]] = []
        self._queues: List[Deque[_HolFragment]] = [
            deque() for _ in range(self.ring.n)
        ]

    # ------------------------------------------------------------------
    def _refill(self, port: int, source: PortSource) -> None:
        if self._queues[port]:
            return
        pkt = source(port)
        if pkt is None:
            return
        dest, words = pkt
        if words < 1:
            raise ValueError("packet must have at least one word")
        remaining = words
        while remaining > 0:
            q = min(remaining, self.max_quantum_words)
            remaining -= q
            self._queues[port].append(
                _HolFragment(dest=dest, words=q, is_last=remaining == 0, packet_words=words)
            )

    def run(
        self,
        source: PortSource,
        quanta: Optional[int] = None,
        min_packets: Optional[int] = None,
        warmup_quanta: int = 0,
    ) -> FabricStats:
        """Run until ``quanta`` quanta elapse or ``min_packets`` deliver.

        ``warmup_quanta`` initial quanta are simulated but excluded from
        the returned statistics (queues reach steady state first).
        """
        if quanta is None and min_packets is None:
            raise ValueError("need a stopping condition")
        stats = FabricStats(num_ports=self.ring.n, costs=self.costs)
        done = 0
        while True:
            if quanta is not None and done >= quanta + warmup_quanta:
                break
            if (
                min_packets is not None
                and stats.delivered_packets >= min_packets
                and done >= warmup_quanta
            ):
                break
            measuring = done >= warmup_quanta
            self._step(source, stats if measuring else None)
            done += 1
        return stats

    def _step(self, source: PortSource, stats: Optional[FabricStats]) -> None:
        n = self.ring.n
        for port in range(n):
            self._refill(port, source)
        requests = tuple(
            self._queues[p][0].dest if self._queues[p] else None for p in range(n)
        )
        if all(r is None for r in requests):
            if stats:
                stats.quanta += 1
                stats.idle_quanta += 1
                stats.cycles += idle_quantum_cycles(self.timing)
            self.token.advance()
            return
        alloc = self.allocator.allocate(requests, self.token.master)
        body = 0
        for grant in alloc.grants.values():
            frag = self._queues[grant.src][0]
            body = max(body, frag.words + grant.expansion)
        duration = (
            quantum_cycles(0, 0, self.timing, self.pipelined, costs=self.costs) + body
        )
        if self.keep_history:
            self.history.append((requests, alloc))
        if stats:
            stats.quanta += 1
            stats.cycles += duration
            stats.blocked_events += len(alloc.blocked)
            stats.grant_histogram[alloc.num_granted] += 1
        for grant in alloc.grants.values():
            frag = self._queues[grant.src].popleft()
            if stats:
                stats.delivered_words += frag.words
                stats.per_port_words[grant.src] += frag.words
                if frag.is_last:
                    stats.delivered_packets += 1
                    stats.per_port_packets[grant.src] += 1
        self.token.advance()


# ---------------------------------------------------------------------------
# Canned sources for the common workloads.
# ---------------------------------------------------------------------------
def saturated_permutation(words: int, shift: int = 2, n: int = 4) -> PortSource:
    """Conflict-free peak workload: port i always sends to (i+shift) mod n."""

    def source(port: int) -> Tuple[int, int]:
        return ((port + shift) % n, words)

    return source


def saturated_uniform(words: int, rng, n: int = 4, exclude_self: bool = False) -> PortSource:
    """Uniform iid destinations (the thesis's "complete fairness" traffic)."""

    def source(port: int) -> Tuple[int, int]:
        while True:
            dest = int(rng.integers(0, n))
            if not exclude_self or dest != port:
                return (dest, words)

    return source


def saturated_hotspot(words: int, rng, hot: int = 0, p_hot: float = 0.7, n: int = 4) -> PortSource:
    """All inputs prefer one output with probability ``p_hot``."""
    if not 0.0 <= p_hot <= 1.0:
        raise ValueError("p_hot must be a probability")

    def source(port: int) -> Tuple[int, int]:
        if rng.random() < p_hot:
            return (hot, words)
        return (int(rng.integers(0, n)), words)

    return source
