"""Quantum-level fabric simulator: the allocator driven over time.

This is the lightweight engine behind the fabric-only experiments
(average throughput, fairness, scaling, second-network and quantum-size
ablations): no kernel processes, just the Rotating Crossbar's quantum
loop -- poll head-of-line requests, run the allocation rule, advance the
clock by the quantum's phase cost, deliver fragments, rotate the token.
The full router model (:mod:`repro.router`) layers ingress/lookup/egress
pipelines on top; for saturated inputs both models agree on throughput
(cross-checked in tests) because the fabric is the bottleneck stage.

Fast path
---------
Three cooperating layers make this engine fast at scale, each
bit-identical to the plain step loop and each independently toggleable:

* **allocation memoization** -- hand the simulator a cached
  :class:`~repro.core.allocator.Allocator` (``enable_cache()``);
* **steady-state fast-forward** (``fast_forward=True``) -- for
  deterministic sources the (queue-contents, token) state recurs with a
  short period; once a cycle is detected the per-cycle stats delta is
  applied in closed form over the remaining quanta.  Automatically
  disabled whenever faults, telemetry recording, ``keep_history``, a
  stochastic source, or a ``min_packets`` stopping rule are active;
* **snapshot/restore** (:meth:`FabricSimulator.snapshot` /
  :meth:`~FabricSimulator.restore`) -- the RNG-free simulator state
  (queues, clock, token) as a picklable value, enabling
  :mod:`repro.parallel.fabric_shard`'s time-sliced sharding.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocation, Allocator
from repro.core.phases import DEFAULT_TIMING, PhaseTiming, idle_quantum_cycles, quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.seeds import counter_seed
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import EV_XBAR_CONFIG

#: A port source: called when the port's input queue is empty; returns
#: (destination port, packet words) or None for "no packet right now".
PortSource = Callable[[int], Optional[Tuple[int, int]]]


@dataclass
class _HolFragment:
    dest: int
    words: int
    is_last: bool
    packet_words: int  #: total words of the parent packet
    corrupt: bool = False  #: fault-injected; dropped by egress verification
    #: Journey key shared by every fragment of the packet; ``None`` when
    #: telemetry is off or the fragment was restored from a snapshot
    #: (journeys do not survive snapshot/restore -- a documented
    #: limitation of time-sliced sharding).
    tag: Optional[int] = None


class _FabricFaultState:
    """Quantum-granular realization of a fault plan for the fabric loop.

    The fabric engine has no words or channels, so faults are quantized
    to quantum boundaries: an event applies at the first boundary whose
    clock reaches its cycle, and a window covers the quanta starting
    inside ``[cycle, end)``.  Kind mapping at this fidelity: ``stall``
    and ``link_down`` silence the port's requests, ``overload``
    suppresses grants toward the port, ``corrupt`` poisons the port's
    queued packet (dropped at delivery, modeling egress verification),
    ``port_down`` + ``token_loss`` use the shared recovery machinery.
    """

    def __init__(self, plan, n: int, metrics):
        from repro.faults.recovery import DegradedRouting, TokenRecovery

        self.plan = plan
        self.metrics = metrics
        self.degraded = DegradedRouting(n, metrics)
        self.recovery = TokenRecovery(n, metrics)
        self._events = list(plan.events)  # cycle-sorted by construction
        self._next = 0
        self._windows = []  # (end_clock, kind, port, target)
        self._recovery_left = 0
        for ev in self._events:
            if ev.kind == "token_loss":
                continue
            if ev.target.startswith("link:"):
                raise ValueError(
                    "the fabric engine has no word-level links; "
                    f"cannot realize target {ev.target!r}"
                )
            if ev.port is None or not 0 <= ev.port < n:
                raise ValueError(
                    f"{ev.kind} fault needs a port-scoped target, got {ev.target!r}"
                )

    # -- per-boundary bookkeeping --------------------------------------
    def advance_to(self, clock: int, queues) -> None:
        """Apply every event due by ``clock`` and expire old windows."""
        kept = []
        for end, kind, port, target in self._windows:
            if clock >= end:
                self.metrics.close_open(kind, target, clock)
            else:
                kept.append((end, kind, port, target))
        self._windows = kept

        while self._next < len(self._events) and self._events[self._next].cycle <= clock:
            ev = self._events[self._next]
            self._next += 1
            if ev.kind == "token_loss":
                self.metrics.record_fault(clock, ev.kind, ev.target)
                self.recovery.lose(ev.cycle)
                self._recovery_left = self.recovery.recovery_quanta()
            elif ev.kind == "port_down":
                self.metrics.record_fault(clock, ev.kind, ev.target)
                if self.degraded.kill(ev.port):
                    for q in queues:
                        stale = [f for f in q if f.dest == ev.port]
                        if stale:
                            for _ in stale:
                                self.metrics.record_drop("dead_port")
                            q_live = [f for f in q if f.dest != ev.port]
                            q.clear()
                            q.extend(q_live)
                    drained = queues[ev.port]
                    self.metrics.record_drop("dead_port", len(drained))
                    drained.clear()
                    # Reconvergence is immediate at this fidelity: the
                    # next refill already remaps around the dead port.
                    self.degraded.converged(ev.port, clock)
            elif ev.kind == "corrupt":
                q = queues[ev.port]
                for frag in q:
                    frag.corrupt = True
                rec = self.metrics.record_fault(
                    clock, ev.kind, ev.target, applied=bool(q)
                )
                rec.recovered_at = clock
            else:  # windowed: link_down / stall / overload
                self.metrics.record_fault(clock, ev.kind, ev.target)
                self._windows.append((ev.end, ev.kind, ev.port, ev.target))

    # -- queries the quantum loop asks ---------------------------------
    def in_recovery(self) -> bool:
        return self.recovery.lost

    def recovery_quantum_done(self, token, clock: int) -> None:
        """One idle recovery quantum elapsed; regenerate when done."""
        self._recovery_left -= 1
        if self._recovery_left <= 0:
            self.recovery.recover(token, clock)

    def port_silenced(self, port: int) -> bool:
        """Dead, stalled, or its input link is down."""
        if not self.degraded.alive(port):
            return True
        return any(
            kind in ("stall", "link_down") and p == port
            for _end, kind, p, _t in self._windows
        )

    def dest_suppressed(self, dest: int) -> bool:
        """Grants toward an overloaded output are withheld this quantum."""
        return any(
            kind == "overload" and p == dest for _end, kind, p, _t in self._windows
        )

    def map_dest(self, dest: int):
        """Degraded-mode rerouting at the source (None: nowhere to go)."""
        if not self.degraded.any_dead:
            return dest
        return self.degraded.remap(dest)

    def quiescent(self) -> bool:
        """True once the plan can no longer influence the future: every
        event consumed, every window expired, token recovery finished,
        and no port permanently dead (dead ports remap routing forever,
        which a queues+clock+token snapshot cannot carry)."""
        return (
            self._next >= len(self._events)
            and not self._windows
            and not self.recovery.lost
            and not self.degraded.any_dead
        )


@dataclass
class FabricStats:
    """Aggregate counters from a fabric run."""

    num_ports: int
    quanta: int = 0
    idle_quanta: int = 0
    cycles: int = 0
    delivered_words: int = 0
    delivered_packets: int = 0
    per_port_words: List[int] = field(default_factory=list)
    per_port_packets: List[int] = field(default_factory=list)
    blocked_events: int = 0
    grant_histogram: List[int] = field(default_factory=list)  #: index = #grants
    costs: CostModel = field(default_factory=CostModel.default)

    def __post_init__(self):
        if not self.per_port_words:
            self.per_port_words = [0] * self.num_ports
        if not self.per_port_packets:
            self.per_port_packets = [0] * self.num_ports
        if not self.grant_histogram:
            self.grant_histogram = [0] * (self.num_ports + 1)

    @property
    def gbps(self) -> float:
        """Aggregate delivered throughput at the configured clock."""
        if self.cycles == 0:
            return 0.0
        return self.costs.gbps(self.delivered_words * self.costs.word_bits, self.cycles)

    @property
    def mpps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.costs.mpps(self.delivered_packets, self.cycles)

    @property
    def words_per_cycle(self) -> float:
        return self.delivered_words / self.cycles if self.cycles else 0.0

    @property
    def mean_grants_per_quantum(self) -> float:
        total = sum(i * c for i, c in enumerate(self.grant_histogram))
        n = sum(self.grant_histogram)
        return total / n if n else 0.0

    # -- fast-forward / sharding support --------------------------------
    _COUNTER_FIELDS = (
        "quanta", "idle_quanta", "cycles", "delivered_words",
        "delivered_packets", "blocked_events",
    )
    _VECTOR_FIELDS = ("per_port_words", "per_port_packets", "grant_histogram")

    def counters(self) -> Tuple:
        """Every accumulated counter as one comparable/subtractable tuple."""
        return tuple(getattr(self, f) for f in self._COUNTER_FIELDS) + tuple(
            tuple(getattr(self, f)) for f in self._VECTOR_FIELDS
        )

    def add_counters(self, other: "FabricStats", times: int = 1) -> None:
        """Accumulate ``other``'s counters ``times`` times (associative:
        slices of a timeline merge in any grouping)."""
        for f in self._COUNTER_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f) * times)
        for f in self._VECTOR_FIELDS:
            mine, theirs = getattr(self, f), getattr(other, f)
            for i, v in enumerate(theirs):
                mine[i] += v * times

    def delta_since(self, baseline: Tuple) -> "FabricStats":
        """The stats accumulated since ``baseline`` (a :meth:`counters`
        snapshot) as a fresh :class:`FabricStats`."""
        delta = FabricStats(num_ports=self.num_ports, costs=self.costs)
        now = self.counters()
        nscalar = len(self._COUNTER_FIELDS)
        for i, f in enumerate(self._COUNTER_FIELDS):
            setattr(delta, f, now[i] - baseline[i])
        for j, f in enumerate(self._VECTOR_FIELDS):
            setattr(
                delta, f,
                [a - b for a, b in zip(now[nscalar + j], baseline[nscalar + j])],
            )
        return delta


class FabricSimulator:
    """Drives the Rotating Crossbar over saturated or stochastic inputs.

    Parameters
    ----------
    ring, allocator, token:
        The fabric under test; defaults build the plain 4-port setup.
    max_quantum_words:
        Fragmentation threshold (thesis section 4.3): packets longer
        than this cross the crossbar in multiple quanta.
    timing, pipelined:
        Phase cost model knobs (see :mod:`repro.core.phases`).
    keep_history:
        Record (requests, allocation) per quantum for fairness analysis
        (costs memory; leave off for long throughput runs).
    fast_forward:
        Detect steady-state cycles under deterministic sources and apply
        the per-cycle stats delta in closed form over the remaining
        quanta (bit-identical to stepping; see the module docstring for
        the automatic-disable conditions).
    """

    #: Give up on cycle detection past this many distinct states.
    FF_MAX_STATES = 4096

    def __init__(
        self,
        ring: Optional[RingGeometry] = None,
        allocator: Optional[Allocator] = None,
        token: Optional[RotatingToken] = None,
        max_quantum_words: Optional[int] = None,
        timing: Optional[PhaseTiming] = None,
        pipelined: bool = True,
        keep_history: bool = False,
        costs: CostModel = CostModel.default(),
        fast_forward: bool = False,
    ):
        self.costs = costs
        self.ring = ring or RingGeometry(4)
        self.allocator = allocator or Allocator(self.ring)
        self.token = token or RotatingToken(self.ring.n)
        if max_quantum_words is None:
            max_quantum_words = costs.max_quantum_words
        if max_quantum_words < 1:
            raise ValueError("max_quantum_words must be >= 1")
        self.max_quantum_words = max_quantum_words
        if timing is None:
            timing = (
                DEFAULT_TIMING
                if costs.quantum_ctl_overhead == DEFAULT_TIMING.control_total
                else PhaseTiming.for_model(costs)
            )
        self.timing = timing
        self.pipelined = pipelined
        self.keep_history = keep_history
        self.history: List[Tuple[Tuple[Optional[int], ...], Allocation]] = []
        self._queues: List[Deque[_HolFragment]] = [
            deque() for _ in range(self.ring.n)
        ]
        #: Global clock in cycles, accumulated by every quantum (warmup
        #: included) -- the timeline fault plans are scheduled against.
        self.clock = 0
        self.faults: Optional[_FabricFaultState] = None
        self.fast_forward = fast_forward
        #: Quanta skipped by steady-state fast-forward (cumulative).
        self.ff_quanta = 0
        self._gauge_registry = None  # registry the gauges were installed in
        self._journey_seq = 0  # next journey tag (telemetry only)

    # ------------------------------------------------------------------
    def install_faults(self, plan, metrics=None) -> Optional[_FabricFaultState]:
        """Arm a fault plan (None / empty plan: stay fault-free)."""
        from repro.faults.plan import resolve_plan
        from repro.metrics.resilience import ResilienceMetrics

        plan = resolve_plan(plan)
        if plan is None:
            return None
        if metrics is None:
            metrics = ResilienceMetrics()
        self.faults = _FabricFaultState(plan, self.ring.n, metrics)
        return self.faults

    # ------------------------------------------------------------------
    # Snapshot/restore: the RNG-free simulator state as a picklable value.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The complete continuation state at a quantum boundary.

        Queues, clock, and token -- everything the step loop reads
        (stochastic *source* state is the caller's to pair with this;
        see :mod:`repro.parallel.fabric_shard`).  Fault state is
        deliberately excluded, so an armed plan only permits snapshot
        once it is *quiescent* -- every event consumed, every window
        expired, recovery done, no dead ports, and no corrupt fragments
        still queued (the corrupt flag is not captured).  Mid-window
        snapshots keep raising: the continuation would silently drop the
        remaining fault behavior."""
        if self.faults is not None:
            if not self.faults.quiescent():
                raise ValueError(
                    "cannot snapshot a simulator with an armed fault plan "
                    "(fault events or windows still pending)"
                )
            if any(f.corrupt for q in self._queues for f in q):
                raise ValueError(
                    "cannot snapshot while corrupt fragments are queued "
                    "(the corrupt flag is not part of the snapshot)"
                )
        token = self.token
        return {
            "clock": self.clock,
            "queues": [
                [(f.dest, f.words, f.is_last, f.packet_words) for f in q]
                for q in self._queues
            ],
            "token": {
                "master": token.master,
                "rotations": token.rotations,
                "remaining": getattr(token, "_remaining", None),
            },
        }

    def restore(self, snap: Dict[str, Any]) -> "FabricSimulator":
        """Adopt a :meth:`snapshot`; returns self for chaining."""
        queues = snap["queues"]
        if len(queues) != self.ring.n:
            raise ValueError(
                f"snapshot has {len(queues)} ports, simulator has {self.ring.n}"
            )
        self.clock = snap["clock"]
        for port, frags in enumerate(queues):
            q = self._queues[port]
            q.clear()
            q.extend(
                _HolFragment(dest=d, words=w, is_last=last, packet_words=pw)
                for d, w, last, pw in frags
            )
        tstate = snap["token"]
        self.token._master = tstate["master"]
        self.token.rotations = tstate["rotations"]
        if tstate["remaining"] is not None:
            self.token._remaining = tstate["remaining"]
        return self

    def _state_key(self):
        """Hashable steady-state fingerprint: token + full queue contents
        (the entire input to the next quantum under a deterministic
        source)."""
        token = self.token
        return (
            token.master,
            getattr(token, "_remaining", None),
            tuple(
                tuple((f.dest, f.words, f.is_last, f.packet_words) for f in q)
                for q in self._queues
            ),
        )

    def _refill(self, port: int, source: PortSource, tel=None) -> None:
        if self._queues[port]:
            return
        pkt = source(port)
        if pkt is None:
            return
        dest, words = pkt
        if words < 1:
            raise ValueError("packet must have at least one word")
        tag = None
        if tel is not None:
            tag = self._journey_seq
            self._journey_seq += 1
            jt = tel.journeys
            jt.arrive(tag, port, self.clock)
            jt.lookup(
                tag, dest, words * (self.costs.word_bits // 8), self.clock
            )
        if self.faults is not None:
            self.faults.metrics.offered_words += words
            dest = self.faults.map_dest(dest)
            if dest is None:  # every port is dead
                self.faults.metrics.record_drop("dead_port")
                if tel is not None:
                    tel.journeys.drop(tag, "dead_port", self.clock)
                return
        if tel is not None:
            tel.journeys.enqueue(tag, self.clock)
        remaining = words
        while remaining > 0:
            q = min(remaining, self.max_quantum_words)
            remaining -= q
            self._queues[port].append(
                _HolFragment(dest=dest, words=q, is_last=remaining == 0,
                             packet_words=words, tag=tag)
            )

    def run(
        self,
        source: PortSource,
        quanta: Optional[int] = None,
        min_packets: Optional[int] = None,
        warmup_quanta: int = 0,
    ) -> FabricStats:
        """Run until ``quanta`` quanta elapse or ``min_packets`` deliver.

        ``warmup_quanta`` initial quanta are simulated but excluded from
        the returned statistics (queues reach steady state first).
        """
        if quanta is None and min_packets is None:
            raise ValueError("need a stopping condition")
        stats = FabricStats(num_ports=self.ring.n, costs=self.costs)
        tel = _telemetry.RECORDER
        if tel is not None and self._gauge_registry is not tel.registry:
            # Idempotent per registry: a second run() on the same
            # simulator must not re-register (regression-tested).
            self._register_gauges(tel.registry)
        # Steady-state fast-forward eligibility: only the plain,
        # fully-observable step loop may be skipped.  Faults, telemetry,
        # history recording, stochastic sources, and packet-count
        # stopping all force the step loop (bit-identical to PR 4).
        ff_seen = (
            {}
            if (
                self.fast_forward
                and quanta is not None
                and min_packets is None
                and self.faults is None
                and tel is None
                and not self.keep_history
                and getattr(source, "deterministic", False)
            )
            else None
        )
        total = None if quanta is None else quanta + warmup_quanta
        done = 0
        while True:
            if total is not None and done >= total:
                break
            if (
                min_packets is not None
                and stats.delivered_packets >= min_packets
                and done >= warmup_quanta
            ):
                break
            measuring = done >= warmup_quanta
            self._step(source, stats if measuring else None)
            done += 1
            if ff_seen is not None and measuring:
                key = self._state_key()
                prev = ff_seen.get(key)
                if prev is not None:
                    done += self._apply_fast_forward(stats, prev, done, total)
                    ff_seen = None  # at most one fast-forward per run
                else:
                    ff_seen[key] = (done, stats.counters(), self.clock,
                                    self.token.rotations)
                    if len(ff_seen) > self.FF_MAX_STATES:
                        ff_seen = None  # state space too rich; give up
        if tel is not None:
            tel.registry.snapshot(self.clock)
        return stats

    def _register_gauges(self, registry) -> None:
        registry.gauge("fabric.clock", lambda: self.clock)
        for p, q in enumerate(self._queues):
            registry.gauge(f"ingress.{p}.queue_depth", lambda q=q: len(q))
        if self.allocator.cache_enabled:
            registry.gauge(
                "fabric.alloc_cache.hits", lambda: self.allocator.cache_hits
            )
            registry.gauge(
                "fabric.alloc_cache.misses", lambda: self.allocator.cache_misses
            )
        if self.fast_forward:
            # Always 0 under telemetry (recording forces the step loop);
            # the gauge documents that the feature was requested.
            registry.gauge(
                "fabric.fast_forward.quanta", lambda: self.ff_quanta
            )
        self._gauge_registry = registry

    def _apply_fast_forward(
        self, stats: FabricStats, prev: Tuple, done: int, total: int
    ) -> int:
        """The simulator state equals ``prev``'s: every period repeats it
        exactly, so multiply the per-period deltas over as many whole
        periods as fit before ``total``.  Returns the quanta skipped."""
        prev_done, prev_counters, prev_clock, prev_rotations = prev
        period = done - prev_done
        cycles = (total - done) // period
        if cycles <= 0:
            return 0
        delta = stats.delta_since(prev_counters)
        stats.add_counters(delta, times=cycles)
        self.clock += (self.clock - prev_clock) * cycles
        self.token.rotations += (
            self.token.rotations - prev_rotations
        ) * cycles
        skipped = cycles * period
        self.ff_quanta += skipped
        return skipped

    def _step(self, source: PortSource, stats: Optional[FabricStats]) -> None:
        n = self.ring.n
        faults = self.faults
        tel = _telemetry.RECORDER
        if faults is not None:
            # Refill before applying events: at saturation every queue is
            # re-armed at each boundary, so a corruption event aimed at a
            # busy input actually finds a word to hit.
            for port in range(n):
                if faults.degraded.alive(port):
                    self._refill(port, source, tel)
            faults.advance_to(self.clock, self._queues)
            if faults.in_recovery():
                # Token lost: one idle quantum of the regeneration
                # protocol (no grants, no rotation -- there is no token).
                idle = idle_quantum_cycles(self.timing)
                if stats:
                    stats.quanta += 1
                    stats.idle_quanta += 1
                    stats.cycles += idle
                self.clock += idle
                faults.recovery_quantum_done(self.token, self.clock)
                return
            requests = tuple(
                self._queues[p][0].dest
                if (
                    self._queues[p]
                    and not faults.port_silenced(p)
                    and not faults.dest_suppressed(self._queues[p][0].dest)
                )
                else None
                for p in range(n)
            )
        else:
            for port in range(n):
                self._refill(port, source, tel)
            requests = tuple(
                self._queues[p][0].dest if self._queues[p] else None for p in range(n)
            )
        if all(r is None for r in requests):
            idle = idle_quantum_cycles(self.timing)
            if stats:
                stats.quanta += 1
                stats.idle_quanta += 1
                stats.cycles += idle
            self.clock += idle
            self.token.advance()
            return
        alloc = self.allocator.allocate(requests, self.token.master)
        if tel is not None:
            tel.events.emit(
                self.clock, EV_XBAR_CONFIG, "fabric",
                (self.token.master,
                 tuple(sorted((g.src, g.dst) for g in alloc.grants.values()))),
            )
            tel.registry.count("fabric.xbar_configs")
            tel.registry.maybe_snapshot(self.clock)
        body = 0
        for grant in alloc.grants.values():
            frag = self._queues[grant.src][0]
            body = max(body, frag.words + grant.expansion)
        duration = (
            quantum_cycles(0, 0, self.timing, self.pipelined, costs=self.costs) + body
        )
        if self.keep_history:
            self.history.append((requests, alloc))
        if stats:
            stats.quanta += 1
            stats.cycles += duration
            stats.blocked_events += len(alloc.blocked)
            stats.grant_histogram[alloc.num_granted] += 1
        self.clock += duration
        for grant in alloc.grants.values():
            frag = self._queues[grant.src].popleft()
            if faults is not None and frag.corrupt:
                # Egress verification catches the broken checksum; the
                # words crossed the fabric but never reach the line.
                faults.metrics.record_drop("corrupt")
                if tel is not None and frag.tag is not None:
                    tel.journeys.drop(frag.tag, "corrupt", self.clock)
                continue
            if faults is not None:
                faults.metrics.delivered_words += frag.words
            if stats:
                stats.delivered_words += frag.words
                stats.per_port_words[grant.src] += frag.words
                if frag.is_last:
                    stats.delivered_packets += 1
                    stats.per_port_packets[grant.src] += 1
            if tel is not None and frag.tag is not None:
                tel.journeys.hop(frag.tag, self.clock)
                if frag.is_last:
                    tel.journeys.depart(frag.tag, self.clock)
        self.token.advance()


# ---------------------------------------------------------------------------
# Canned sources for the common workloads.
# ---------------------------------------------------------------------------
def saturated_permutation(words: int, shift: int = 2, n: int = 4) -> PortSource:
    """Conflict-free peak workload: port i always sends to (i+shift) mod n.

    Marked ``deterministic``: the returned destination is a pure function
    of the port, which is what licenses steady-state fast-forward.
    """

    def source(port: int) -> Tuple[int, int]:
        return ((port + shift) % n, words)

    source.deterministic = True
    return source


def saturated_uniform(words: int, rng, n: int = 4, exclude_self: bool = False) -> PortSource:
    """Uniform iid destinations (the thesis's "complete fairness" traffic)."""
    if exclude_self and n < 2:
        raise ValueError(
            "exclude_self needs at least 2 ports: with n=1 every draw is "
            "the self-destination and the rejection loop never terminates"
        )

    def source(port: int) -> Tuple[int, int]:
        while True:
            dest = int(rng.integers(0, n))
            if not exclude_self or dest != port:
                return (dest, words)

    return source


class CounterUniformSource:
    """Uniform iid destinations from counter-based (stateless-replayable)
    randomness: draw ``k`` for port ``p`` hashes ``(seed, p, k)``.

    Unlike :func:`saturated_uniform` (which consumes a shared sequential
    RNG), the only mutable state is one draw counter per port, so a run
    can be snapshot at any quantum boundary and resumed bit-identically
    in another process -- the property :mod:`repro.parallel.fabric_shard`
    needs from a stochastic workload.  Not marked ``deterministic``:
    the destination stream is aperiodic, so fast-forward never applies.
    """

    deterministic = False

    def __init__(self, words: int, seed: int, n: int = 4,
                 exclude_self: bool = True):
        if exclude_self and n < 2:
            raise ValueError(
                "exclude_self needs at least 2 ports: with n=1 every draw "
                "is the self-destination and the rejection loop never "
                "terminates"
            )
        self.words = words
        self.seed = counter_seed(seed)
        self.n = n
        self.exclude_self = exclude_self
        self._draws = [0] * n

    def __call__(self, port: int) -> Tuple[int, int]:
        k = self._draws[port]
        n = self.n
        while True:
            dest = zlib.crc32(struct.pack("<III", self.seed, port, k)) % n
            k += 1
            if not self.exclude_self or dest != port:
                break
        self._draws[port] = k
        return (dest, self.words)

    # -- shard protocol -------------------------------------------------
    def state(self) -> Tuple[int, ...]:
        return tuple(self._draws)

    def restore(self, state) -> "CounterUniformSource":
        if len(state) != self.n:
            raise ValueError("source state has the wrong port count")
        self._draws = list(state)
        return self


def saturated_uniform_counter(words: int, seed: int, n: int = 4,
                              exclude_self: bool = True) -> CounterUniformSource:
    """The shardable stochastic workload (see :class:`CounterUniformSource`)."""
    return CounterUniformSource(words, seed, n=n, exclude_self=exclude_self)


def saturated_hotspot(words: int, rng, hot: int = 0, p_hot: float = 0.7, n: int = 4) -> PortSource:
    """All inputs prefer one output with probability ``p_hot``."""
    if not 0.0 <= p_hot <= 1.0:
        raise ValueError("p_hot must be a probability")

    def source(port: int) -> Tuple[int, int]:
        if rng.random() < p_hot:
            return (hot, words)
        return (int(rng.integers(0, n)), words)

    return source
