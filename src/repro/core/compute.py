"""Computation in the communication interconnect (thesis section 8.3).

The thesis's third contribution is incorporating computation into the
switch fabric: header bits tell the Crossbar Processors what transform
to apply to the payload as it streams by, so data never has to detour to
a separate computational resource.  On Raw this is natural: routing a
word *through the tile processor* instead of across the switch costs the
ALU instruction(s) that touch it -- e.g. ``xor $csto, $csti, key`` is a
one-instruction-per-word stream cipher step.

Each :class:`StreamTransform` is both functional (``apply`` really
transforms the words, verified end to end in tests) and costed
(``cycles_per_word`` feeds the quantum timing, so the in-fabric-compute
benchmark shows the throughput price of each service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.phases import DEFAULT_TIMING, PhaseTiming

_MASK32 = 0xFFFFFFFF


class StreamTransform:
    """Base class: a word-at-a-time payload transform with a cycle cost."""

    #: Tile-processor cycles per payload word (1 = full streaming rate,
    #: since the baseline switch path also moves one word per cycle).
    cycles_per_word: int = 1
    #: Value for the header's computation-request bits (section 8.3).
    header_bits: int = 0

    def apply(self, words: Sequence[int]) -> List[int]:
        raise NotImplementedError

    def body_cycles(self, words: int, expansion: int) -> int:
        """Route-body duration when this transform is in the path."""
        return words * self.cycles_per_word + expansion

    def quantum_cycles(
        self, words: int, expansion: int, timing: PhaseTiming = DEFAULT_TIMING
    ) -> int:
        return timing.control_total + self.body_cycles(words, expansion)


class Identity(StreamTransform):
    """No computation: words cross the switch crossbar untouched."""

    cycles_per_word = 1
    header_bits = 0

    def apply(self, words: Sequence[int]) -> List[int]:
        return list(words)


class XorCipher(StreamTransform):
    """Additive stream cipher: XOR with an LCG keystream.

    Two instructions per word on the tile processor: advance the
    keystream register, then ``xor $csto, $csti, key``.  Involutive for
    a fixed seed, so encrypt == decrypt (tested round-trip).
    """

    cycles_per_word = 2
    header_bits = 1

    def __init__(self, seed: int):
        self.seed = seed & _MASK32

    def _keystream(self, n: int) -> List[int]:
        key = self.seed
        out = []
        for _ in range(n):
            key = (key * 1664525 + 1013904223) & _MASK32
            out.append(key)
        return out

    def apply(self, words: Sequence[int]) -> List[int]:
        return [w ^ k for w, k in zip(words, self._keystream(len(words)))]


class ByteSwap(StreamTransform):
    """Endianness swap: one bit-manipulation instruction per word (Raw's
    ISA adds bit-level extraction/masking ops, section 3.2)."""

    cycles_per_word = 1
    header_bits = 2

    def apply(self, words: Sequence[int]) -> List[int]:
        return [
            ((w & 0xFF) << 24)
            | ((w & 0xFF00) << 8)
            | ((w >> 8) & 0xFF00)
            | ((w >> 24) & 0xFF)
            for w in words
        ]


class RunningChecksum(StreamTransform):
    """Payload checksum computed in-flight (e.g. for intrusion detection
    or TCP offload): an add per word; words pass through unchanged."""

    cycles_per_word = 2  # add + carry fold, software-pipelined
    header_bits = 3

    def __init__(self):
        self.last_checksum = 0

    def apply(self, words: Sequence[int]) -> List[int]:
        total = 0
        for w in words:
            total += w
            total = (total & _MASK32) + (total >> 32)
        self.last_checksum = total & _MASK32
        return list(words)
