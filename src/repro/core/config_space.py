"""Configuration space of the Rotating Crossbar (thesis chapter 6).

The naive space is every combination of the four packet headers (each an
output port or "empty") and the token position:

    SPACE = |Hdr|^4 x |Token| = 5^4 x 4 = 2,500

which leaves 8,192 / 2,500 ~= 3.3 switch instructions per configuration
-- far too few (section 6.1).  The minimization of section 6.2 changes
viewpoint: instead of global (headers, token) tuples, enumerate each
Crossbar Processor's *local* configuration -- which client feeds each of
its three servers (out, cwnext, ccwnext; Table 6.1), together with the
expansion number.  Only a few dozen distinct local configurations are
reachable (we measure 27; the thesis reports 32 with a ~78x reduction --
see EXPERIMENTS.md for the comparison), and that is the set the
compile-time scheduler generates switch code for.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.allocator import Allocation, Allocator, Request
from repro.core.ring import CW, RingGeometry

#: Header value for "input queue empty" (the fifth header value of |Hdr|=5).
EMPTY: Request = None

#: Client names of Table 6.1: what can feed a server link.
CLIENT_NONE = None
CLIENT_IN = "in"
CLIENT_CWPREV = "cwprev"
CLIENT_CCWPREV = "ccwprev"
CLIENTS = (CLIENT_NONE, CLIENT_IN, CLIENT_CWPREV, CLIENT_CCWPREV)

#: Server names of Table 6.1.
SERVERS = ("out", "cwnext", "ccwnext")


@dataclass(frozen=True, order=True)
class GlobalConfig:
    """One point of the naive configuration space."""

    headers: Tuple[Request, ...]
    token: int


@dataclass(frozen=True, order=True)
class LocalConfig:
    """One Crossbar Processor's behaviour for a quantum (Table 6.1 form).

    ``out_src`` / ``cwnext_src`` / ``ccwnext_src`` name the client feeding
    each server (or None for an idle server); ``expansion`` is the
    largest source-to-here ring distance over the flows this tile serves
    (how deep its switch code must software-pipeline).  The thesis also
    records "a special boolean value ... set to TRUE in case an Ingress
    Processor can not send"; that flag is per-quantum derived state (it
    lives on :attr:`repro.core.allocator.Allocation.blocked`), not part
    of the configuration identity the switch code is generated from.
    """

    out_src: Optional[str]
    cwnext_src: Optional[str]
    ccwnext_src: Optional[str]
    expansion: int

    def servers_in_use(self) -> int:
        return sum(
            s is not None
            for s in (self.out_src, self.cwnext_src, self.ccwnext_src)
        )

    def clients_in_use(self) -> Tuple[str, ...]:
        used = {
            s
            for s in (self.out_src, self.cwnext_src, self.ccwnext_src)
            if s is not None
        }
        return tuple(sorted(used))


@dataclass
class MinimizationResult:
    """Outcome of the section-6.2 configuration-space minimization."""

    num_ports: int
    global_size: int  #: |Hdr|^N x |Token|
    reachable_global: int  #: distinct reachable allocations
    local_configs: List[LocalConfig]  #: the minimized, deduplicated set
    usage: Dict[LocalConfig, int]  #: occurrences across the global walk

    @property
    def minimized_size(self) -> int:
        return len(self.local_configs)

    @property
    def reduction_factor(self) -> float:
        return self.global_size / self.minimized_size

    def instructions_per_config(self, imem_words: int) -> float:
        """IMEM budget per configuration before/after (thesis: ~3.3)."""
        return imem_words / self.minimized_size

    def config_id(self, cfg: LocalConfig) -> int:
        return self._ids[cfg]

    def __post_init__(self):
        self._ids = {cfg: i for i, cfg in enumerate(self.local_configs)}


class ConfigurationSpace:
    """Enumeration and minimization over an N-port ring."""

    def __init__(self, ring: RingGeometry, allocator: Optional[Allocator] = None):
        self.ring = ring
        self.allocator = allocator or Allocator(ring)

    @classmethod
    def from_config(cls, config) -> "ConfigurationSpace":
        """Build from a :class:`repro.config.SimConfig` (ports + networks)."""
        return cls(RingGeometry(config.ports), Allocator.from_config(config))

    # ------------------------------------------------------------------
    def global_size(self) -> int:
        """|Hdr|^N x |Token| (2,500 for the 4-port prototype)."""
        n = self.ring.n
        return (n + 1) ** n * n

    def enumerate_global(self) -> Iterator[GlobalConfig]:
        """Every (headers, token) point, in lexicographic order."""
        n = self.ring.n
        header_values: Tuple[Request, ...] = (EMPTY,) + tuple(range(n))
        for headers in product(header_values, repeat=n):
            for token in range(n):
                yield GlobalConfig(headers=headers, token=token)

    # ------------------------------------------------------------------
    def local_configs_for(self, alloc: Allocation) -> Tuple[LocalConfig, ...]:
        """Project a global allocation onto per-tile local configurations."""
        n = self.ring.n
        out: List[LocalConfig] = []
        for tile in range(n):
            out.append(self._local_config(alloc, tile))
        return tuple(out)

    def _local_config(self, alloc: Allocation, tile: int) -> LocalConfig:
        out_src = cw_src = ccw_src = None
        expansion = 0
        for grant in alloc.grants.values():
            path = grant.path
            # Does this grant feed tile's "out" server?
            if grant.dst == tile:
                if grant.src == tile:
                    out_src = CLIENT_IN
                elif path.direction == CW:
                    out_src = CLIENT_CWPREV
                else:
                    out_src = CLIENT_CCWPREV
                expansion = max(expansion, self.ring.expansion(path, tile))
            # Does it occupy tile's cwnext / ccwnext ring segments?
            for link in path.links:
                if link.network != 1:
                    continue  # local configs are defined on network 1
                if link.index != tile:
                    continue
                src = CLIENT_IN if grant.src == tile else (
                    CLIENT_CWPREV if link.kind == CW else CLIENT_CCWPREV
                )
                if link.kind == CW:
                    cw_src = src
                else:
                    ccw_src = src
                expansion = max(expansion, self.ring.expansion(path, tile))
        return LocalConfig(
            out_src=out_src,
            cwnext_src=cw_src,
            ccwnext_src=ccw_src,
            expansion=expansion,
        )

    # ------------------------------------------------------------------
    def minimize(self) -> MinimizationResult:
        """Walk the full global space; collect distinct local configs."""
        usage: Dict[LocalConfig, int] = {}
        reachable = set()
        for gc in self.enumerate_global():
            alloc = self.allocator.allocate(gc.headers, gc.token)
            key = tuple(sorted((g.src, g.dst, g.path.direction) for g in alloc.grants.values()))
            reachable.add(key)
            for cfg in self.local_configs_for(alloc):
                usage[cfg] = usage.get(cfg, 0) + 1
        def sort_key(c: LocalConfig):
            return (
                -usage[c],
                c.out_src or "",
                c.cwnext_src or "",
                c.ccwnext_src or "",
                c.expansion,
            )

        ordered = sorted(usage, key=sort_key)
        return MinimizationResult(
            num_ports=self.ring.n,
            global_size=self.global_size(),
            reachable_global=len(reachable),
            local_configs=ordered,
            usage=usage,
        )
