"""Per-quantum phase timing (thesis Fig 6-2 and section 6.5).

One routing quantum runs through: *headers-request* (the tile processor
asks its ingress for the next header), *headers send/recv*, the
*header exchange* around the ring (after which every Crossbar Processor
knows all four headers), *choose_new_config* (index the jump table, load
the switch program counter), the *route_body* streaming phase, and the
switch->processor *confirm* handshake.  Header processing of packet
``k+1`` is overlapped with body streaming of packet ``k`` (section 5.2),
so the steady-state cost of a quantum is the non-overlapped control
(:attr:`repro.config.CostModel.quantum_ctl_overhead`) plus the body:
``words + expansion``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CostModel


@dataclass(frozen=True)
class PhaseTiming:
    """Cycle budget of each control phase (defaults sum to the calibrated
    :attr:`~repro.config.CostModel.quantum_ctl_overhead`)."""

    headers_request: int = 4
    headers_send: int = 8  #: 2 header words over the in-link, send + recv
    headers_exchange: int = 24  #: N-1 = 3 ring rounds x 2 words x (send+recv)
    choose_config: int = 8  #: jump-table address compute + load switch PC
    confirm: int = 4  #: switch->processor end-of-body handshake

    @property
    def control_total(self) -> int:
        return (
            self.headers_request
            + self.headers_send
            + self.headers_exchange
            + self.choose_config
            + self.confirm
        )

    @classmethod
    def for_model(cls, costs: CostModel) -> "PhaseTiming":
        """A timing whose phases sum to ``costs.quantum_ctl_overhead``:
        the fixed request/send/choose/confirm budgets plus whatever
        remains attributed to the ring exchange (the phase whose length
        the calibration actually absorbs)."""
        fixed = cls()  # default budgets for the non-exchange phases
        exchange = costs.quantum_ctl_overhead - (
            fixed.headers_request
            + fixed.headers_send
            + fixed.choose_config
            + fixed.confirm
        )
        if exchange < 0:
            raise ValueError(
                "quantum_ctl_overhead smaller than the fixed phase budgets"
            )
        return cls(headers_exchange=exchange)


DEFAULT_TIMING = PhaseTiming()
assert DEFAULT_TIMING.control_total == CostModel.default().quantum_ctl_overhead


def quantum_cycles(
    words: int,
    expansion: int = 0,
    timing: PhaseTiming = DEFAULT_TIMING,
    pipelined: bool = True,
    costs: CostModel = CostModel.default(),
) -> int:
    """Total cycles for a routing quantum moving ``words`` per grant.

    ``expansion`` is the largest ring distance among the quantum's
    grants (the last word arrives that many cycles after the source's
    last send).  ``pipelined=False`` models the naive non-overlapped
    implementation, where the per-packet ingress header work and route
    lookup serialize with the fabric instead of hiding under the previous
    body -- the ablation of the section 5.2/6.5 pipelining claim.
    """
    if words < 0 or expansion < 0:
        raise ValueError("words and expansion must be non-negative")
    body = words + expansion
    cycles = timing.control_total + body
    if not pipelined:
        cycles += costs.ingress_header_cycles + costs.lookup_cycles
    return cycles


def idle_quantum_cycles(timing: PhaseTiming = DEFAULT_TIMING) -> int:
    """Cost of a quantum in which no input transmits: the control phases
    still run (headers are exchanged, all empty), then the token advances."""
    return timing.control_total


def peak_gbps(
    packet_bytes: int,
    num_ports: int = 4,
    costs: CostModel = CostModel.default(),
) -> float:
    """Closed-form peak throughput of the phase model (conflict-free
    traffic, every port streaming every quantum).

    Used by the calibration test: Fig 7-1's 1,024-byte point should come
    out within a few percent of 26.9 Gbps.
    """
    words = costs.bytes_to_words(packet_bytes)
    expansion = num_ports // 2  # worst-case ring distance under permutation
    timing = PhaseTiming.for_model(costs)

    total_cycles = 0
    remaining = words
    while remaining > 0:
        q = min(remaining, costs.max_quantum_words)
        total_cycles += quantum_cycles(q, expansion, timing, costs=costs)
        remaining -= q
    bits = packet_bytes * 8
    return num_ports * costs.gbps(bits, total_cycles)
