"""Parse emitted switch assembly back into executable route instructions.

The compile-time scheduler's third pass emits Raw-like switch listings
(``route $cWi->$cNo, $cSi->$cEo  ; x203 steady``).  This module closes
the loop: it parses those listings into
:class:`~repro.raw.switchproc.RouteInstruction` streams bound to real
channels, so the tests can *execute the generated code* and watch words
take the routes chapter 6 scheduled -- the listings are programs, not
documentation.

The grammar is the subset the codegen emits::

    line      := label | instr
    label     := IDENT ':' [comment]
    instr     := ('nop' | route-list) [comment]
    route-list:= 'route' PORT '->' PORT (',' 'route' PORT '->' PORT)*
    comment   := ';' ... [ 'xN' repeat annotation ] ...

``j $swPC`` (return-to-dispatch) ends a configuration body.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Sequence

from repro.raw.switchproc import RouteInstruction
from repro.sim.channel import Channel

#: Resolves a port mnemonic ("$cWi", "$csto", ...) to a channel.
PortResolver = Callable[[str], Channel]

_ROUTE_RE = re.compile(r"route\s+(\$\w+)\s*->\s*(\$\w+)")
_REPEAT_RE = re.compile(r";.*?x(\d+)")
_LABEL_RE = re.compile(r"^(\w+):")

IN_PORTS = {"$cNi", "$cSi", "$cEi", "$cWi", "$csti"}
OUT_PORTS = {"$cNo", "$cSo", "$cEo", "$cWo", "$csto"}


class AsmParseError(ValueError):
    """A listing line the switch grammar does not accept."""


def parse_listing(
    lines: Sequence[str], resolver: PortResolver
) -> List[RouteInstruction]:
    """Translate a config body into an executable instruction stream.

    Labels are skipped; ``j`` ends the body; each instruction's repeat
    count comes from its ``xN`` annotation (default 1).
    """
    program: List[RouteInstruction] = []
    for raw in lines:
        line = raw.strip()
        if not line or _LABEL_RE.match(line):
            continue
        code = line.split(";", 1)[0].strip()
        if code.startswith("j "):
            break
        repeat_match = _REPEAT_RE.search(line)
        repeat = int(repeat_match.group(1)) if repeat_match else 1
        if code == "nop" or code == "":
            program.append(RouteInstruction(moves=(), repeat=max(repeat, 1)))
            continue
        moves = []
        matched_spans = list(_ROUTE_RE.finditer(code))
        if not matched_spans:
            raise AsmParseError(f"unparseable switch line: {raw!r}")
        # Everything outside the route matches must be separators.
        leftover = _ROUTE_RE.sub("", code).replace(",", "").strip()
        if leftover:
            raise AsmParseError(f"trailing junk in switch line: {raw!r}")
        for m in matched_spans:
            src_name, dst_name = m.group(1), m.group(2)
            if src_name not in IN_PORTS:
                raise AsmParseError(f"{src_name} is not an input port in {raw!r}")
            if dst_name not in OUT_PORTS:
                raise AsmParseError(f"{dst_name} is not an output port in {raw!r}")
            moves.append((resolver(src_name), resolver(dst_name)))
        program.append(
            RouteInstruction(moves=tuple(moves), repeat=max(repeat, 1))
        )
    return program


def make_resolver(channels: Dict[str, Channel]) -> PortResolver:
    """Resolver over an explicit mnemonic->channel table."""

    def resolve(name: str) -> Channel:
        try:
            return channels[name]
        except KeyError:
            raise AsmParseError(f"no channel bound to port {name}") from None

    return resolve


def listing_word_counts(program: Sequence[RouteInstruction]) -> int:
    """Total words a parsed body moves (static verification helper)."""
    return sum(instr.words_moved for instr in program)
