"""One authority for every derived seed in the repository.

Child-seed derivation used to be scattered: :mod:`repro.sweep` hashed a
cell's key/value assignment with ``zlib.crc32``, the traffic layer's
arrival processes drew a seed out of a legacy ``np.random.Generator``,
:class:`~repro.traffic.model.SpecModel` masked its seed to 63 bits and
:class:`~repro.core.fabricsim.CounterUniformSource` to 32 -- each its
own convention, none documented.  This module is the single home for
all of them, plus the new :func:`world_seed` axis the many-worlds
engine (:mod:`repro.parallel.manyworlds`) fans a base seed across.

Every function here is pinned bit-for-bit by ``tests/test_seeds.py``:
existing derived seeds (and therefore every golden number seeded on
them) must never change.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict

#: Seeds handed to engines/sweep cells live in [0, 2**31) -- the range
#: ``np.random.default_rng`` and every historical harness accepted.
SEED_RANGE = 2**31

#: :class:`~repro.traffic.model.SpecModel` folds seeds into 63 bits
#: (keeps ``seed * const`` arithmetic on the fast small-int path).
SPEC_SEED_MASK = (1 << 63) - 1

#: :class:`~repro.core.fabricsim.CounterUniformSource` packs its seed
#: into a ``<I`` struct field, so it folds to 32 bits.
COUNTER_SEED_MASK = 0xFFFFFFFF


def cell_seed(base_seed: int, cell: Dict[str, Any]) -> int:
    """Deterministic per-cell sweep seed: stable across runs and worker
    counts (moved verbatim from ``repro.sweep``; pinned bit-for-bit)."""
    canonical = json.dumps(cell, sort_keys=True, default=str).encode()
    return (base_seed + zlib.crc32(canonical)) % SEED_RANGE


def world_seed(base_seed: int, world: int) -> int:
    """Deterministic per-world Monte Carlo seed for ``--worlds`` runs.

    World 0 *is* the base seed, so a one-world run (and the vectorized
    engine's world-0 bit-identity contract) lines up exactly with the
    scalar run a cell performs today; higher worlds are splitmix64
    draws off the base, folded into :data:`SEED_RANGE`.
    """
    if world < 0:
        raise ValueError(f"world index must be >= 0, got {world}")
    if world == 0:
        return int(base_seed) % SEED_RANGE
    # Imported lazily: repro.traffic.__init__ pulls in arrivals, which
    # imports this module -- a top-level rng import would be circular.
    from repro.traffic.rng import draw_u64

    return draw_u64(int(base_seed), 1, world) % SEED_RANGE


def coerce_seed(seed) -> int:
    """Accept an int seed or (for compatibility with the historical
    arrival-process signature) an ``np.random.Generator``, from which a
    seed is drawn (moved from ``repro.traffic.arrivals``)."""
    if hasattr(seed, "integers"):  # a Generator
        return int(seed.integers(0, SEED_RANGE))
    return int(seed)


def spec_seed(seed: int) -> int:
    """The seed as :class:`~repro.traffic.model.SpecModel` stores it."""
    return int(seed) & SPEC_SEED_MASK


def counter_seed(seed: int) -> int:
    """The seed as :class:`~repro.core.fabricsim.CounterUniformSource`
    stores it (32-bit struct field)."""
    return int(seed) & COUNTER_SEED_MASK
