"""Wall-clock benchmark harness: how fast does the simulator itself run?

Every other benchmark in this repository measures the *simulated* router
(Gbps, Mpps, cycle counts).  This module measures the *simulator*: wall
time, simulated cycles per second, and kernel events per second for each
of the three engines, so kernel optimizations have a recorded
trajectory.  ``python -m repro bench`` runs the suite and merges the
numbers into ``benchmarks/BENCH_results.json`` (next to the paper
tables) under a ``kernel_bench`` key:

* the first ever run for a budget mode is stored as the ``baseline``
  (the pre-optimization kernel; re-pin explicitly with
  ``--set-baseline``),
* every run updates ``current`` and recomputes per-engine
  ``speedup_vs_baseline`` as the wall-clock ratio baseline/current.

``--quick`` shrinks the budgets for CI smoke runs; ``--check``
validates the schema of an existing results file and exits.

``--engine fabric-large`` selects the *fabric fast-path* suite instead:
large-ring (N=16/32) scaling runs timed twice -- once with the plain
step loop, once with the fast path (allocation cache + steady-state
fast-forward for deterministic traffic, cache + time-sliced sharding
for stochastic traffic).  Results land under a separate
``fabric_large`` key; every scenario records ``stats_match`` (the fast
path must be bit-identical to the step loop).  With ``--check`` the
suite still runs, then fails the process if any scenario mismatches or
slows down (speedup < 1.0) -- the CI smoke configuration.

``--engine manyworlds`` selects the vectorized Monte Carlo suite: a
``worlds``-seed batch through :mod:`repro.parallel.manyworlds` timed
against a measured sample of scalar reference runs, recording the
aggregate speedup (scalar extrapolation / batch wall) and per-sampled
world bit-identity under a ``manyworlds`` key.  The same ``--check``
semantics apply (bit-identity + speedup >= 1).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.config import SimConfig
from repro.engines import WorkloadSpec, run_config

#: Schema tag stored in the results file; bump on incompatible changes.
BENCH_SCHEMA = "repro-kernel-bench/1"

#: Default output path: next to the paper-table benchmark results.
DEFAULT_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "BENCH_results.json"
)

#: Per-engine budgets.  ``full`` matches the experiment harness's
#: standard budgets (the wordlevel one is the Fig 7-3 regime); ``quick``
#: is sized for a CI smoke step.
BUDGETS: Dict[str, Dict[str, WorkloadSpec]] = {
    "full": {
        "fabric": WorkloadSpec(quanta=2000),
        "router": WorkloadSpec(packets=1500),
        "wordlevel": WorkloadSpec(cycles=120_000, warmup_cycles=20_000),
    },
    "quick": {
        "fabric": WorkloadSpec(quanta=400),
        "router": WorkloadSpec(packets=250),
        "wordlevel": WorkloadSpec(cycles=24_000, warmup_cycles=4_000),
    },
}


def bench_engine(
    fidelity: str, mode: str = "full", repeats: int = 1
) -> Dict[str, Any]:
    """Time one engine at the given budget; returns a result row.

    ``wall_s`` is the best (minimum) of ``repeats`` timings of a full
    engine build + run; ``sim_cycles`` includes warmup (the kernel
    simulates those cycles too, so they belong in cycles/sec)."""
    workload = BUDGETS[mode][fidelity]
    config = SimConfig(fidelity=fidelity)
    best: Optional[float] = None
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = run_config(config, workload)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    assert result is not None and best is not None
    warmup = workload.warmup_cycles if fidelity == "wordlevel" else 0
    sim_cycles = result.cycles + warmup
    events = result.extra.get("kernel_events")
    return {
        "engine": fidelity,
        "wall_s": best,
        "sim_cycles": sim_cycles,
        "cycles_per_sec": sim_cycles / best if best > 0 else None,
        "kernel_events": events,
        "events_per_sec": (events / best) if (events and best > 0) else None,
        "delivered_packets": result.delivered_packets,
        "gbps": result.gbps,
        "workload": workload.to_dict(),
    }


def run_bench(
    mode: str = "full",
    engines: Optional[List[str]] = None,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Run the bench suite; returns the JSON-ready report."""
    if mode not in BUDGETS:
        raise ValueError(f"unknown bench mode {mode!r}")
    engines = list(engines or BUDGETS[mode])
    runs = [bench_engine(f, mode=mode, repeats=repeats) for f in engines]
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "runs": runs,
    }


# ---------------------------------------------------------------------------
# The fabric fast-path suite (``--engine fabric-large``).
# ---------------------------------------------------------------------------
#: Schema tag for the ``fabric_large`` results section.
FABRIC_LARGE_SCHEMA = "repro-fabric-large-bench/1"

#: Scenario budgets.  Each scenario is timed as (plain step loop) vs
#: (fast path); ``optimized`` names which fast-path layers the scenario
#: exercises.  Deterministic traffic gets cache + fast-forward;
#: stochastic traffic gets cache + sharding only (fast-forward
#: auto-disables on aperiodic sources).
FABRIC_LARGE_SCENARIOS: Dict[str, List[Dict[str, Any]]] = {
    "full": [
        {"name": "saturated_n16", "ports": 16, "quanta": 20_000, "warmup": 200,
         "source": {"kind": "permutation", "words": 256, "shift": 8},
         "optimized": "cache+fast_forward"},
        {"name": "uniform_n16", "ports": 16, "quanta": 12_000, "warmup": 200,
         "source": {"kind": "uniform_counter", "words": 256, "seed": 42,
                    "exclude_self": True},
         "optimized": "cache+sharded", "shards": 8},
        {"name": "saturated_n32", "ports": 32, "quanta": 8_000, "warmup": 200,
         "source": {"kind": "permutation", "words": 256, "shift": 16},
         "optimized": "cache+fast_forward"},
        {"name": "imix_onoff_n16", "ports": 16, "quanta": 12_000,
         "warmup": 200,
         "source": {"kind": "traffic", "spec": "imix_onoff", "seed": 7},
         "optimized": "cache+sharded", "shards": 8},
    ],
    "quick": [
        {"name": "saturated_n16", "ports": 16, "quanta": 2_500, "warmup": 100,
         "source": {"kind": "permutation", "words": 256, "shift": 8},
         "optimized": "cache+fast_forward"},
        {"name": "uniform_n16", "ports": 16, "quanta": 1_500, "warmup": 100,
         "source": {"kind": "uniform_counter", "words": 256, "seed": 42,
                    "exclude_self": True},
         "optimized": "cache+sharded", "shards": 4},
        {"name": "imix_onoff_n16", "ports": 16, "quanta": 1_500, "warmup": 100,
         "source": {"kind": "traffic", "spec": "imix_onoff", "seed": 7},
         "optimized": "cache+sharded", "shards": 4},
    ],
}


def _bench_fabric_large_scenario(sc: Dict[str, Any]) -> Dict[str, Any]:
    """Time one scenario both ways; the fast path must be bit-identical."""
    from repro.parallel.fabric_shard import (
        ShardSpec, build_sim, make_source, run_serial, run_sharded,
    )

    spec = ShardSpec(
        ports=sc["ports"],
        source=ShardSpec.pack_source(sc["source"]),
        quanta=sc["quanta"],
        warmup_quanta=sc["warmup"],
        shards=sc.get("shards", 1),
    )
    t0 = time.perf_counter()
    baseline = run_serial(spec, cached=False)
    baseline_wall = time.perf_counter() - t0

    extra: Dict[str, Any]
    if sc["optimized"] == "cache+fast_forward":
        sim = build_sim(spec, cached=True)
        sim.fast_forward = True
        t0 = time.perf_counter()
        fast = sim.run(
            make_source(spec), quanta=spec.quanta,
            warmup_quanta=spec.warmup_quanta,
        )
        fast_wall = time.perf_counter() - t0
        extra = {
            "ff_quanta": sim.ff_quanta,
            "cache": sim.allocator.cache_info(),
        }
    else:
        t0 = time.perf_counter()
        fast, info = run_sharded(spec)
        fast_wall = time.perf_counter() - t0
        extra = {"shards": info.shards, "workers": info.workers,
                 "pilot_quanta": info.pilot_quanta}
    return {
        "scenario": sc["name"],
        "ports": sc["ports"],
        "quanta": sc["quanta"],
        "optimized": sc["optimized"],
        "baseline_wall_s": baseline_wall,
        "fast_wall_s": fast_wall,
        "speedup": baseline_wall / fast_wall if fast_wall > 0 else None,
        "stats_match": baseline.counters() == fast.counters(),
        "gbps": fast.gbps,
        "delivered_words": fast.delivered_words,
        "fast_path": extra,
    }


def run_fabric_large(mode: str = "full") -> Dict[str, Any]:
    """Run the fabric fast-path suite; returns the JSON-ready report."""
    if mode not in FABRIC_LARGE_SCENARIOS:
        raise ValueError(f"unknown bench mode {mode!r}")
    return {
        "schema": FABRIC_LARGE_SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": [
            _bench_fabric_large_scenario(sc)
            for sc in FABRIC_LARGE_SCENARIOS[mode]
        ],
    }


def merge_fabric_large(
    data: Dict[str, Any], report: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold a fast-path report into the results dict (keyed by mode, so
    a ``--quick`` CI run never clobbers the full-budget numbers)."""
    fl = data.setdefault("fabric_large", {"schema": FABRIC_LARGE_SCHEMA})
    fl[report["mode"]] = report
    return data


def check_fabric_large(report: Dict[str, Any]) -> List[str]:
    """CI invariants: every scenario bit-identical and not slower."""
    problems: List[str] = []
    for row in report["scenarios"]:
        if not row["stats_match"]:
            problems.append(
                f"{row['scenario']}: fast-path stats differ from step loop"
            )
        if row["speedup"] is None or row["speedup"] < 1.0:
            problems.append(
                f"{row['scenario']}: speedup {row['speedup']} < 1.0"
            )
    return problems


def validate_fabric_large(data: Dict[str, Any]) -> List[str]:
    """Schema check for the ``fabric_large`` section (if present)."""
    errors: List[str] = []
    fl = data.get("fabric_large")
    if fl is None:
        return errors
    if fl.get("schema") != FABRIC_LARGE_SCHEMA:
        errors.append(
            f"fabric_large schema is {fl.get('schema')!r}, "
            f"expected {FABRIC_LARGE_SCHEMA!r}"
        )
    for mode, report in fl.items():
        if mode == "schema":
            continue
        rows = report.get("scenarios") if isinstance(report, dict) else None
        if not isinstance(rows, list) or not rows:
            errors.append(f"fabric_large.{mode} has no scenarios")
            continue
        for row in rows:
            for field in ("scenario", "baseline_wall_s", "fast_wall_s",
                          "speedup", "stats_match"):
                if field not in row:
                    errors.append(
                        f"fabric_large.{mode} scenario missing {field!r}"
                    )
            if row.get("stats_match") is not True:
                errors.append(
                    f"fabric_large.{mode}.{row.get('scenario')}: "
                    "stats_match is not true"
                )
    return errors


def format_fabric_large(report: Dict[str, Any]) -> str:
    lines = [
        f"fabric fast-path bench ({report['mode']} budgets, "
        f"python {report['python']})",
        f"{'scenario':<16} {'opt':<20} {'base (s)':>10} {'fast (s)':>10} "
        f"{'speedup':>9} {'identical':>10}",
    ]
    for row in report["scenarios"]:
        lines.append(
            f"{row['scenario']:<16} {row['optimized']:<20} "
            f"{row['baseline_wall_s']:>10.3f} {row['fast_wall_s']:>10.3f} "
            f"{row['speedup']:>8.1f}x "
            f"{('yes' if row['stats_match'] else 'NO'):>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The space-partitioned suite (``--engine space``).
# ---------------------------------------------------------------------------
#: Schema tag for the ``space_shard`` results section.  ``/2`` adds the
#: per-backend sub-table (``backends``): every scenario is measured once
#: per configured transport against one shared uncached-serial baseline,
#: with the legacy top-level fields mirroring the ``pipe`` row so ``/1``
#: consumers keep reading the compatibility baseline.
SPACE_SCHEMA = "repro-space-bench/2"

#: Scenario budgets.  Each scenario times the uncached single-process
#: reference against the space-partitioned run (warm per-chip allocation
#: caches + token-window workers) once per transport backend, asserting
#: bit-identity throughout -- the same baseline convention as the fabric
#: fast-path suite.  ``clos_n256`` is the scale headline: a 256-port
#: Clos (48 16-port chips) across 4 workers on every backend.
#: ``clos_n64_fine`` runs window=1 with sparse fragments -- one tiny
#: batch per quantum per boundary edge -- which is the regime where
#: per-batch transport overhead dominates, so it carries the
#: shm-beats-pipe comparison (``expect_shm_wins``, min-of-``reps``
#: walls).  Socket rows measure the hub-relayed TCP path; on one host
#: that doubles every boundary hop, so they are checked for identity
#: and distribution, not speed.
SPACE_SCENARIOS: Dict[str, List[Dict[str, Any]]] = {
    "full": [
        {"name": "clos_n256", "k": 16, "latency": 8, "partitions": 4,
         "quanta": 1_200, "warmup": 200,
         "backends": ("pipe", "shm", "socket"),
         "source": {"kind": "permutation", "words": 256, "shift": 128}},
        {"name": "clos_n64", "k": 8, "latency": 8, "partitions": 4,
         "quanta": 3_000, "warmup": 200,
         "backends": ("pipe", "shm"),
         "source": {"kind": "permutation", "words": 256, "shift": 32}},
        {"name": "clos_n64_fine", "k": 8, "latency": 1, "partitions": 4,
         "quanta": 3_000, "warmup": 200, "reps": 2,
         "backends": ("pipe", "shm"), "expect_shm_wins": True,
         "source": {"kind": "permutation", "words": 16, "shift": 32}},
        {"name": "clos_n16_uniform", "k": 4, "latency": 4, "partitions": 3,
         "quanta": 4_000, "warmup": 200,
         "source": {"kind": "uniform_counter", "words": 256, "seed": 42,
                    "exclude_self": True}},
        {"name": "clos_n16", "k": 4, "latency": 4, "partitions": 3,
         "quanta": 6_000, "warmup": 200,
         "backends": ("pipe", "socket"),
         "source": {"kind": "permutation", "words": 256, "shift": 8}},
    ],
    "quick": [
        {"name": "clos_n256", "k": 16, "latency": 8, "partitions": 4,
         "quanta": 300, "warmup": 50,
         "backends": ("pipe", "shm"),
         "source": {"kind": "permutation", "words": 256, "shift": 128}},
        {"name": "clos_n64", "k": 8, "latency": 8, "partitions": 4,
         "quanta": 800, "warmup": 100,
         "source": {"kind": "permutation", "words": 256, "shift": 32}},
        {"name": "clos_n16", "k": 4, "latency": 4, "partitions": 3,
         "quanta": 1_500, "warmup": 100,
         "backends": ("pipe", "socket"),
         "source": {"kind": "permutation", "words": 256, "shift": 8}},
    ],
}


def _bench_space_scenario(sc: Dict[str, Any]) -> Dict[str, Any]:
    """Time one scenario per backend against one shared uncached serial
    reference; every partitioned run must be bit-identical to it."""
    from repro.parallel.space_shard import (
        SpaceSpec, run_space, run_space_serial,
    )

    spec = SpaceSpec(
        k=sc["k"],
        latency=sc["latency"],
        partitions=sc["partitions"],
        source=SpaceSpec.pack_source(sc["source"]),
        quanta=sc["quanta"],
        warmup_quanta=sc["warmup"],
    )
    t0 = time.perf_counter()
    baseline = run_space_serial(spec, cached=False)
    baseline_wall = time.perf_counter() - t0
    reps = sc.get("reps", 1)
    backends: Dict[str, Dict[str, Any]] = {}
    runs: Dict[str, Any] = {}
    for tr in sc.get("backends", ("pipe",)):
        walls = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fast, info = run_space(spec, transport=tr)
            walls.append(time.perf_counter() - t0)
        wall = min(walls)
        runs[tr] = (fast, info, wall)
        backends[tr] = {
            "fast_wall_s": wall,
            "speedup": baseline_wall / wall if wall > 0 else None,
            "stats_match": baseline.counters() == fast.counters(),
            "serial_fallback": info.serial_fallback,
            "stall_s": round(sum(info.pipe_stall_s), 4),
            "boundary_flits": sum(info.boundary_flits),
            "bytes_moved": sum(info.bytes_moved),
            "coalesced_rounds": sum(info.coalesced_rounds),
            "gbps": fast.gbps,
        }
    legacy = "pipe" if "pipe" in runs else next(iter(runs))
    fast, info, fast_wall = runs[legacy]
    return {
        "scenario": sc["name"],
        "ports": spec.num_ports,
        "chips": 3 * sc["k"],
        "partitions": info.workers,
        "window": info.window,
        "quanta": sc["quanta"],
        "baseline_wall_s": baseline_wall,
        "fast_wall_s": fast_wall,
        "speedup": backends[legacy]["speedup"],
        "stats_match": backends[legacy]["stats_match"],
        "gbps": fast.gbps,
        "delivered_words": fast.delivered_words,
        "expect_shm_wins": bool(sc.get("expect_shm_wins")),
        "backends": backends,
        "space": {
            "rounds": info.rounds,
            "windows_per_worker": info.windows_per_worker,
            "pipe_stall_s": [round(s, 4) for s in info.pipe_stall_s],
            "boundary_flits": info.boundary_flits,
            "bytes_moved": info.bytes_moved,
            "coalesced_rounds": info.coalesced_rounds,
            "serial_fallback": info.serial_fallback,
        },
    }


def run_space_bench(mode: str = "full") -> Dict[str, Any]:
    """Run the space-partitioned suite; returns the JSON-ready report."""
    if mode not in SPACE_SCENARIOS:
        raise ValueError(f"unknown bench mode {mode!r}")
    return {
        "schema": SPACE_SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": [
            _bench_space_scenario(sc) for sc in SPACE_SCENARIOS[mode]
        ],
    }


def merge_space(data: Dict[str, Any], report: Dict[str, Any]) -> Dict[str, Any]:
    """Fold a space report into the results dict (keyed by mode, so a
    ``--quick`` CI run never clobbers the full-budget numbers)."""
    sp = data.setdefault("space_shard", {})
    sp["schema"] = SPACE_SCHEMA
    sp[report["mode"]] = report
    return data


def check_space(report: Dict[str, Any]) -> List[str]:
    """CI invariants: every backend bit-identical and distributed, the
    in-host backends (pipe/shm) not slower than uncached serial, and shm
    beating pipe where the scenario was built to show it.  Socket rows
    are exempt from the speed floor: hub relay on one host doubles every
    boundary hop, so only identity and distribution are load-bearing."""
    problems: List[str] = []
    for row in report["scenarios"]:
        for tr, be in row.get("backends", {}).items():
            if not be["stats_match"]:
                problems.append(
                    f"{row['scenario']}[{tr}]: partitioned stats differ "
                    "from the single-process reference"
                )
            if be["serial_fallback"]:
                problems.append(
                    f"{row['scenario']}[{tr}]: fell back to serial (not "
                    "a distributed measurement)"
                )
            if tr != "socket" and (
                be["speedup"] is None or be["speedup"] < 1.0
            ):
                problems.append(
                    f"{row['scenario']}[{tr}]: speedup "
                    f"{be['speedup']} < 1.0"
                )
        if row.get("expect_shm_wins"):
            be = row.get("backends", {})
            pipe_w = be.get("pipe", {}).get("fast_wall_s")
            shm_w = be.get("shm", {}).get("fast_wall_s")
            if pipe_w is None or shm_w is None:
                problems.append(
                    f"{row['scenario']}: expect_shm_wins set but pipe/"
                    "shm walls missing"
                )
            elif shm_w > pipe_w:
                problems.append(
                    f"{row['scenario']}: shm wall {shm_w:.3f}s slower "
                    f"than pipe wall {pipe_w:.3f}s"
                )
    return problems


def validate_space(data: Dict[str, Any]) -> List[str]:
    """Schema check for the ``space_shard`` section (if present)."""
    errors: List[str] = []
    sp = data.get("space_shard")
    if sp is None:
        return errors
    if sp.get("schema") != SPACE_SCHEMA:
        errors.append(
            f"space_shard schema is {sp.get('schema')!r}, "
            f"expected {SPACE_SCHEMA!r}"
        )
    for mode, report in sp.items():
        if mode == "schema":
            continue
        rows = report.get("scenarios") if isinstance(report, dict) else None
        if not isinstance(rows, list) or not rows:
            errors.append(f"space_shard.{mode} has no scenarios")
            continue
        for row in rows:
            for field in ("scenario", "partitions", "baseline_wall_s",
                          "fast_wall_s", "speedup", "stats_match",
                          "backends"):
                if field not in row:
                    errors.append(
                        f"space_shard.{mode} scenario missing {field!r}"
                    )
            if row.get("stats_match") is not True:
                errors.append(
                    f"space_shard.{mode}.{row.get('scenario')}: "
                    "stats_match is not true"
                )
            for tr, be in (row.get("backends") or {}).items():
                if be.get("stats_match") is not True:
                    errors.append(
                        f"space_shard.{mode}.{row.get('scenario')}"
                        f"[{tr}]: stats_match is not true"
                    )
    return errors


def format_space(report: Dict[str, Any]) -> str:
    lines = [
        f"space-partitioned bench ({report['mode']} budgets, "
        f"python {report['python']})",
        f"{'scenario':<18} {'backend':<8} {'ports':>6} {'P':>3} "
        f"{'base (s)':>10} {'fast (s)':>10} {'speedup':>9} "
        f"{'identical':>10} {'KiB moved':>10}",
    ]
    for row in report["scenarios"]:
        for tr, be in row.get("backends", {}).items():
            lines.append(
                f"{row['scenario']:<18} {tr:<8} {row['ports']:>6} "
                f"{row['partitions']:>3} {row['baseline_wall_s']:>10.3f} "
                f"{be['fast_wall_s']:>10.3f} {be['speedup']:>8.1f}x "
                f"{('yes' if be['stats_match'] else 'NO'):>10} "
                f"{be['bytes_moved'] / 1024:>10.0f}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The many-worlds suite (``--engine manyworlds``).
# ---------------------------------------------------------------------------
#: Schema tag for the ``manyworlds`` results section.
MANYWORLDS_SCHEMA = "repro-manyworlds-bench/1"

#: Scenario budgets.  Each scenario times a ``worlds``-seed vectorized
#: batch against a measured sample of ``sample_worlds`` scalar reference
#: runs (``aggregate speedup`` extrapolates the scalar sample to the
#: full world count); the sampled worlds must be bit-identical to their
#: vectorized lanes.
MANYWORLDS_SCENARIOS: Dict[str, List[Dict[str, Any]]] = {
    "full": [
        {"name": "uniform_n16_1000w", "ports": 16, "seed": 7,
         "quanta": 2000, "worlds": 1000, "sample_worlds": 3,
         "workload": {"pattern": "uniform"}},
        {"name": "imix_n16_500w", "ports": 16, "seed": 11,
         "quanta": 2000, "worlds": 500, "sample_worlds": 3,
         "workload": {"traffic": "imix"}},
        {"name": "imix_onoff_n8_500w", "ports": 8, "seed": 13,
         "quanta": 2000, "worlds": 500, "sample_worlds": 3,
         "workload": {"traffic": "imix_onoff"}},
    ],
    "quick": [
        {"name": "uniform_n16_64w", "ports": 16, "seed": 7,
         "quanta": 300, "worlds": 64, "sample_worlds": 2,
         "workload": {"pattern": "uniform"}},
        {"name": "imix_n8_32w", "ports": 8, "seed": 11,
         "quanta": 300, "worlds": 32, "sample_worlds": 2,
         "workload": {"traffic": "imix"}},
    ],
}


def _bench_manyworlds_scenario(sc: Dict[str, Any]) -> Dict[str, Any]:
    """Time one vectorized batch against a measured scalar sample."""
    from repro.parallel.manyworlds import run_worlds, scalar_world_stats

    config = SimConfig(ports=sc["ports"], seed=sc["seed"])
    workload = WorkloadSpec(quanta=sc["quanta"], **sc["workload"])
    mw = run_worlds(config, workload, sc["worlds"])
    vec_wall = mw.elapsed_s

    sample = list(range(sc["sample_worlds"]))
    t0 = time.perf_counter()
    refs = [scalar_world_stats(config, workload, w) for w in sample]
    scalar_wall = time.perf_counter() - t0
    per_world = scalar_wall / len(sample)
    extrapolated = per_world * sc["worlds"]

    stats_match = all(
        mw.stats[w].counters() == refs[i].counters()
        and mw.stats[w].per_port_words == refs[i].per_port_words
        and mw.stats[w].grant_histogram == refs[i].grant_histogram
        for i, w in enumerate(sample)
    )
    env = mw.envelope("gbps")
    return {
        "scenario": sc["name"],
        "ports": sc["ports"],
        "quanta": sc["quanta"],
        "worlds": sc["worlds"],
        "vectorized": mw.vectorized,
        "vector_wall_s": vec_wall,
        "scalar_sample_worlds": len(sample),
        "scalar_sample_wall_s": scalar_wall,
        "scalar_wall_s_extrapolated": extrapolated,
        "aggregate_speedup": extrapolated / vec_wall if vec_wall > 0 else None,
        "stats_match": stats_match,
        "gbps_envelope": env,
    }


def run_manyworlds_bench(mode: str = "full") -> Dict[str, Any]:
    """Run the many-worlds suite; returns the JSON-ready report."""
    if mode not in MANYWORLDS_SCENARIOS:
        raise ValueError(f"unknown bench mode {mode!r}")
    return {
        "schema": MANYWORLDS_SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": [
            _bench_manyworlds_scenario(sc)
            for sc in MANYWORLDS_SCENARIOS[mode]
        ],
    }


def merge_manyworlds(
    data: Dict[str, Any], report: Dict[str, Any]
) -> Dict[str, Any]:
    """Fold a many-worlds report into the results dict (keyed by mode,
    like ``fabric_large``)."""
    mw = data.setdefault("manyworlds", {"schema": MANYWORLDS_SCHEMA})
    mw[report["mode"]] = report
    return data


def check_manyworlds(report: Dict[str, Any]) -> List[str]:
    """CI invariants: sampled worlds bit-identical, vectorized path
    taken, and the batch not slower than the scalar extrapolation (the
    >= 100x full-budget headline is recorded, not gated -- CI machines
    are too noisy to pin a two-order-of-magnitude ratio)."""
    problems: List[str] = []
    for row in report["scenarios"]:
        if not row["stats_match"]:
            problems.append(
                f"{row['scenario']}: sampled worlds differ from scalar runs"
            )
        if not row["vectorized"]:
            problems.append(f"{row['scenario']}: fell back to scalar runs")
        speedup = row["aggregate_speedup"]
        if speedup is None or speedup < 1.0:
            problems.append(
                f"{row['scenario']}: aggregate speedup {speedup} < 1.0"
            )
    return problems


def validate_manyworlds(data: Dict[str, Any]) -> List[str]:
    """Schema check for the ``manyworlds`` section (if present)."""
    errors: List[str] = []
    mw = data.get("manyworlds")
    if mw is None:
        return errors
    if mw.get("schema") != MANYWORLDS_SCHEMA:
        errors.append(
            f"manyworlds schema is {mw.get('schema')!r}, "
            f"expected {MANYWORLDS_SCHEMA!r}"
        )
    for mode, report in mw.items():
        if mode == "schema":
            continue
        rows = report.get("scenarios") if isinstance(report, dict) else None
        if not isinstance(rows, list) or not rows:
            errors.append(f"manyworlds.{mode} has no scenarios")
            continue
        for row in rows:
            for field in ("scenario", "worlds", "vector_wall_s",
                          "aggregate_speedup", "stats_match", "gbps_envelope"):
                if field not in row:
                    errors.append(
                        f"manyworlds.{mode} scenario missing {field!r}"
                    )
            if row.get("stats_match") is not True:
                errors.append(
                    f"manyworlds.{mode}.{row.get('scenario')}: "
                    "stats_match is not true"
                )
    return errors


def format_manyworlds(report: Dict[str, Any]) -> str:
    lines = [
        f"many-worlds bench ({report['mode']} budgets, "
        f"python {report['python']})",
        f"{'scenario':<20} {'worlds':>7} {'vec (s)':>9} {'scalar est (s)':>15} "
        f"{'speedup':>9} {'identical':>10}",
    ]
    for row in report["scenarios"]:
        lines.append(
            f"{row['scenario']:<20} {row['worlds']:>7} "
            f"{row['vector_wall_s']:>9.3f} "
            f"{row['scalar_wall_s_extrapolated']:>15.3f} "
            f"{row['aggregate_speedup']:>8.1f}x "
            f"{('yes' if row['stats_match'] else 'NO'):>10}"
        )
        env = row["gbps_envelope"]
        lines.append(
            f"{'':<20} gbps {env['mean']:.3f} ± {env['ci95']:.3f} "
            f"(p50 {env['p50']:.3f}, p99 {env['p99']:.3f})"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Results-file plumbing.
# ---------------------------------------------------------------------------
def load_results(path: Path) -> Dict[str, Any]:
    if path.exists():
        return json.loads(path.read_text())
    return {}


def merge_results(
    data: Dict[str, Any], report: Dict[str, Any], set_baseline: bool = False
) -> Dict[str, Any]:
    """Fold a bench report into the results dict (pure; returns it).

    The first report seen for a budget mode becomes that mode's
    baseline; later reports update ``current`` and the per-engine
    speedups.  Paper tables under other keys are left untouched."""
    kb = data.setdefault("kernel_bench", {"schema": BENCH_SCHEMA})
    baselines = kb.setdefault("baseline", {})
    mode = report["mode"]
    if set_baseline or mode not in baselines:
        baselines[mode] = report
    kb["current"] = report
    base_walls = {r["engine"]: r["wall_s"] for r in baselines[mode]["runs"]}
    kb["speedup_vs_baseline"] = {
        r["engine"]: base_walls[r["engine"]] / r["wall_s"]
        for r in report["runs"]
        if r["engine"] in base_walls and r["wall_s"] > 0
    }
    return data


def validate_results(data: Dict[str, Any]) -> List[str]:
    """Schema check for the ``kernel_bench`` section; returns problems."""
    errors: List[str] = []
    kb = data.get("kernel_bench")
    if not isinstance(kb, dict):
        return ["missing kernel_bench section"]
    if kb.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema is {kb.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    for section in ("baseline", "current"):
        if section not in kb:
            errors.append(f"missing kernel_bench.{section}")
    reports = [kb.get("current")] + list(kb.get("baseline", {}).values())
    for report in reports:
        if not isinstance(report, dict):
            errors.append("report is not an object")
            continue
        if report.get("mode") not in BUDGETS:
            errors.append(f"bad mode {report.get('mode')!r}")
        runs = report.get("runs")
        if not isinstance(runs, list) or not runs:
            errors.append("report has no runs")
            continue
        for run in runs:
            for field in ("engine", "wall_s", "sim_cycles", "cycles_per_sec"):
                if field not in run:
                    errors.append(f"run missing {field!r}")
            if not isinstance(run.get("wall_s"), (int, float)):
                errors.append("wall_s is not a number")
    if "speedup_vs_baseline" in kb and not isinstance(
        kb["speedup_vs_baseline"], dict
    ):
        errors.append("speedup_vs_baseline is not an object")
    return errors


def format_report(report: Dict[str, Any], speedups: Dict[str, float]) -> str:
    lines = [
        f"kernel bench ({report['mode']} budgets, python {report['python']})",
        f"{'engine':<10} {'wall (s)':>10} {'cycles/s':>12} {'events/s':>12} "
        f"{'Gbps':>8} {'speedup':>8}",
    ]
    for run in report["runs"]:
        eps = run["events_per_sec"]
        speed = speedups.get(run["engine"])
        lines.append(
            f"{run['engine']:<10} {run['wall_s']:>10.3f} "
            f"{run['cycles_per_sec']:>12.0f} "
            f"{(f'{eps:.0f}' if eps else '-'):>12} "
            f"{run['gbps']:>8.3f} "
            f"{(f'{speed:.2f}x' if speed else '-'):>8}"
        )
    return "\n".join(lines)


def main(
    mode: str = "full",
    engines: Optional[List[str]] = None,
    repeats: int = 1,
    out: Optional[Path] = None,
    set_baseline: bool = False,
    check_only: bool = False,
) -> int:
    """Entry point behind ``python -m repro bench``.

    ``fabric-large`` in ``engines`` selects the fast-path suite; with
    ``--check`` that suite still *runs* (it is its own correctness
    check: bit-identity + speedup >= 1), whereas a plain ``--check``
    only validates the existing results file."""
    path = Path(out) if out is not None else DEFAULT_RESULTS_PATH
    engines = list(engines) if engines else None
    fabric_large = engines is not None and "fabric-large" in engines
    manyworlds = engines is not None and "manyworlds" in engines
    space = engines is not None and "space" in engines
    kernel_engines = (
        [e for e in engines if e not in ("fabric-large", "manyworlds", "space")]
        if engines
        else None
    )
    if space:
        report = run_space_bench(mode=mode)
        data = merge_space(load_results(path), report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(format_space(report))
        print(f"wrote {path}")
        if check_only:
            problems = check_space(report)
            for p in problems:
                print(f"space check failed: {p}", file=sys.stderr)
            if problems:
                return 1
            print(
                "space check ok: every backend bit-identical and "
                "distributed, in-host speedups >= 1"
            )
        if not kernel_engines and not fabric_large and not manyworlds:
            return 0
    if manyworlds:
        report = run_manyworlds_bench(mode=mode)
        data = merge_manyworlds(load_results(path), report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(format_manyworlds(report))
        print(f"wrote {path}")
        if check_only:
            problems = check_manyworlds(report)
            for p in problems:
                print(f"many-worlds check failed: {p}", file=sys.stderr)
            if problems:
                return 1
            print(
                "many-worlds check ok: sampled worlds bit-identical, "
                "vectorized, speedup >= 1"
            )
        if not kernel_engines and not fabric_large:
            return 0
    if fabric_large:
        report = run_fabric_large(mode=mode)
        data = merge_fabric_large(load_results(path), report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2) + "\n")
        print(format_fabric_large(report))
        print(f"wrote {path}")
        if check_only:
            problems = check_fabric_large(report)
            for p in problems:
                print(f"fast-path check failed: {p}", file=sys.stderr)
            if problems:
                return 1
            print("fast-path check ok: all scenarios bit-identical, speedup >= 1")
        if not kernel_engines:
            return 0
    if check_only and not fabric_large and not manyworlds and not space:
        data = load_results(path)
        errors = (
            validate_results(data)
            + validate_fabric_large(data)
            + validate_manyworlds(data)
            + validate_space(data)
        )
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1
        speedups = data["kernel_bench"].get("speedup_vs_baseline", {})
        print(f"{path} kernel_bench schema ok; speedups: "
              + (", ".join(f"{k}={v:.2f}x" for k, v in speedups.items()) or "n/a"))
        return 0
    report = run_bench(mode=mode, engines=kernel_engines, repeats=repeats)
    data = merge_results(load_results(path), report, set_baseline=set_baseline)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(format_report(report, data["kernel_bench"]["speedup_vs_baseline"]))
    print(f"wrote {path}")
    return 0
