"""Wall-clock benchmark harness: how fast does the simulator itself run?

Every other benchmark in this repository measures the *simulated* router
(Gbps, Mpps, cycle counts).  This module measures the *simulator*: wall
time, simulated cycles per second, and kernel events per second for each
of the three engines, so kernel optimizations have a recorded
trajectory.  ``python -m repro bench`` runs the suite and merges the
numbers into ``benchmarks/BENCH_results.json`` (next to the paper
tables) under a ``kernel_bench`` key:

* the first ever run for a budget mode is stored as the ``baseline``
  (the pre-optimization kernel; re-pin explicitly with
  ``--set-baseline``),
* every run updates ``current`` and recomputes per-engine
  ``speedup_vs_baseline`` as the wall-clock ratio baseline/current.

``--quick`` shrinks the budgets for CI smoke runs; ``--check``
validates the schema of an existing results file and exits.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.config import SimConfig
from repro.engines import WorkloadSpec, run_config

#: Schema tag stored in the results file; bump on incompatible changes.
BENCH_SCHEMA = "repro-kernel-bench/1"

#: Default output path: next to the paper-table benchmark results.
DEFAULT_RESULTS_PATH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "BENCH_results.json"
)

#: Per-engine budgets.  ``full`` matches the experiment harness's
#: standard budgets (the wordlevel one is the Fig 7-3 regime); ``quick``
#: is sized for a CI smoke step.
BUDGETS: Dict[str, Dict[str, WorkloadSpec]] = {
    "full": {
        "fabric": WorkloadSpec(quanta=2000),
        "router": WorkloadSpec(packets=1500),
        "wordlevel": WorkloadSpec(cycles=120_000, warmup_cycles=20_000),
    },
    "quick": {
        "fabric": WorkloadSpec(quanta=400),
        "router": WorkloadSpec(packets=250),
        "wordlevel": WorkloadSpec(cycles=24_000, warmup_cycles=4_000),
    },
}


def bench_engine(
    fidelity: str, mode: str = "full", repeats: int = 1
) -> Dict[str, Any]:
    """Time one engine at the given budget; returns a result row.

    ``wall_s`` is the best (minimum) of ``repeats`` timings of a full
    engine build + run; ``sim_cycles`` includes warmup (the kernel
    simulates those cycles too, so they belong in cycles/sec)."""
    workload = BUDGETS[mode][fidelity]
    config = SimConfig(fidelity=fidelity)
    best: Optional[float] = None
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = run_config(config, workload)
        wall = time.perf_counter() - t0
        best = wall if best is None else min(best, wall)
    assert result is not None and best is not None
    warmup = workload.warmup_cycles if fidelity == "wordlevel" else 0
    sim_cycles = result.cycles + warmup
    events = result.extra.get("kernel_events")
    return {
        "engine": fidelity,
        "wall_s": best,
        "sim_cycles": sim_cycles,
        "cycles_per_sec": sim_cycles / best if best > 0 else None,
        "kernel_events": events,
        "events_per_sec": (events / best) if (events and best > 0) else None,
        "delivered_packets": result.delivered_packets,
        "gbps": result.gbps,
        "workload": workload.to_dict(),
    }


def run_bench(
    mode: str = "full",
    engines: Optional[List[str]] = None,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Run the bench suite; returns the JSON-ready report."""
    if mode not in BUDGETS:
        raise ValueError(f"unknown bench mode {mode!r}")
    engines = list(engines or BUDGETS[mode])
    runs = [bench_engine(f, mode=mode, repeats=repeats) for f in engines]
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "runs": runs,
    }


# ---------------------------------------------------------------------------
# Results-file plumbing.
# ---------------------------------------------------------------------------
def load_results(path: Path) -> Dict[str, Any]:
    if path.exists():
        return json.loads(path.read_text())
    return {}


def merge_results(
    data: Dict[str, Any], report: Dict[str, Any], set_baseline: bool = False
) -> Dict[str, Any]:
    """Fold a bench report into the results dict (pure; returns it).

    The first report seen for a budget mode becomes that mode's
    baseline; later reports update ``current`` and the per-engine
    speedups.  Paper tables under other keys are left untouched."""
    kb = data.setdefault("kernel_bench", {"schema": BENCH_SCHEMA})
    baselines = kb.setdefault("baseline", {})
    mode = report["mode"]
    if set_baseline or mode not in baselines:
        baselines[mode] = report
    kb["current"] = report
    base_walls = {r["engine"]: r["wall_s"] for r in baselines[mode]["runs"]}
    kb["speedup_vs_baseline"] = {
        r["engine"]: base_walls[r["engine"]] / r["wall_s"]
        for r in report["runs"]
        if r["engine"] in base_walls and r["wall_s"] > 0
    }
    return data


def validate_results(data: Dict[str, Any]) -> List[str]:
    """Schema check for the ``kernel_bench`` section; returns problems."""
    errors: List[str] = []
    kb = data.get("kernel_bench")
    if not isinstance(kb, dict):
        return ["missing kernel_bench section"]
    if kb.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema is {kb.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    for section in ("baseline", "current"):
        if section not in kb:
            errors.append(f"missing kernel_bench.{section}")
    reports = [kb.get("current")] + list(kb.get("baseline", {}).values())
    for report in reports:
        if not isinstance(report, dict):
            errors.append("report is not an object")
            continue
        if report.get("mode") not in BUDGETS:
            errors.append(f"bad mode {report.get('mode')!r}")
        runs = report.get("runs")
        if not isinstance(runs, list) or not runs:
            errors.append("report has no runs")
            continue
        for run in runs:
            for field in ("engine", "wall_s", "sim_cycles", "cycles_per_sec"):
                if field not in run:
                    errors.append(f"run missing {field!r}")
            if not isinstance(run.get("wall_s"), (int, float)):
                errors.append("wall_s is not a number")
    if "speedup_vs_baseline" in kb and not isinstance(
        kb["speedup_vs_baseline"], dict
    ):
        errors.append("speedup_vs_baseline is not an object")
    return errors


def format_report(report: Dict[str, Any], speedups: Dict[str, float]) -> str:
    lines = [
        f"kernel bench ({report['mode']} budgets, python {report['python']})",
        f"{'engine':<10} {'wall (s)':>10} {'cycles/s':>12} {'events/s':>12} "
        f"{'Gbps':>8} {'speedup':>8}",
    ]
    for run in report["runs"]:
        eps = run["events_per_sec"]
        speed = speedups.get(run["engine"])
        lines.append(
            f"{run['engine']:<10} {run['wall_s']:>10.3f} "
            f"{run['cycles_per_sec']:>12.0f} "
            f"{(f'{eps:.0f}' if eps else '-'):>12} "
            f"{run['gbps']:>8.3f} "
            f"{(f'{speed:.2f}x' if speed else '-'):>8}"
        )
    return "\n".join(lines)


def main(
    mode: str = "full",
    engines: Optional[List[str]] = None,
    repeats: int = 1,
    out: Optional[Path] = None,
    set_baseline: bool = False,
    check_only: bool = False,
) -> int:
    """Entry point behind ``python -m repro bench``."""
    path = Path(out) if out is not None else DEFAULT_RESULTS_PATH
    if check_only:
        data = load_results(path)
        errors = validate_results(data)
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1
        speedups = data["kernel_bench"].get("speedup_vs_baseline", {})
        print(f"{path} kernel_bench schema ok; speedups: "
              + (", ".join(f"{k}={v:.2f}x" for k, v in speedups.items()) or "n/a"))
        return 0
    report = run_bench(mode=mode, engines=engines, repeats=repeats)
    data = merge_results(load_results(path), report, set_baseline=set_baseline)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(format_report(report, data["kernel_bench"]["speedup_vs_baseline"]))
    print(f"wrote {path}")
    return 0
