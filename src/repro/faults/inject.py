"""Kernel-level fault injection: apply a :class:`FaultPlan` to live channels.

The :class:`FaultInjector` turns a plan into a timeline of apply/restore
actions and runs as an ordinary kernel process, sleeping between fault
cycles.  It never touches the kernel's hot loops: injection works purely
through :class:`~repro.sim.channel.Channel`'s fault hooks (capacity
zeroing + ready-time deferral for link-down windows, head-word rewrite
for corruption), which every put/get path -- blocking, inlined, and
burst -- already honors.  With no plan installed nothing here runs at
all, so the fault-free fast path is bit-for-bit unchanged.

Engine-specific faults (token loss, permanent port death, fabric-level
overload) are delegated to host callbacks; the host decides which kinds
it supports and :meth:`FaultInjector.validate` rejects a plan that asks
for more.

The injector also owns the **burst fallback gate**: burst commands cover
a span of cycles with a single kernel state machine, so a host planning
a burst over ``[now, now + span]`` asks :meth:`burst_ok` first and falls
back to word-at-a-time loops whenever a fault boundary or active fault
window intersects the span.  Since bursts are cycle-for-cycle identical
to word loops, the gate only ever needs to be *conservative*; it exists
so that a fault landing mid-burst is applied against word-granular
channel state on both engines identically.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.plan import WINDOW_KINDS, FaultEvent, FaultPlan
from repro.metrics.resilience import ResilienceMetrics
from repro.sim.channel import Channel
from repro.sim.kernel import DOWN, STALLED
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import EV_FAULT_INJECT, EV_FAULT_RECOVER

#: Timeline actions, in application order at a shared cycle: restores
#: happen before new faults so back-to-back windows hand off cleanly.
_A_RESTORE = 0
_A_APPLY = 1


class FaultInjector:
    """Applies a fault plan to a kernel simulation at exact cycles.

    Parameters
    ----------
    plan:
        The schedule to apply (must be non-empty; callers resolve empty
        plans to "no injector at all" via
        :func:`repro.faults.plan.resolve_plan`).
    channels:
        Registry mapping target strings (``"input:0"``, ``"link:sn1.t5->t6"``,
        ...) to :class:`Channel` objects.
    channel_for:
        Optional override resolving an event to its channel (hosts use
        this to map port-scoped targets like ``stall`` on ``"port:2"``
        onto the port's ingress feed).  Defaults to a registry lookup of
        ``event.target``.
    corrupt:
        ``corrupt(value, param) -> value`` mutator for corruption events;
        hosts flip a header bit (phase level) or a payload bit pattern
        (word level).
    on_token_loss / on_port_down:
        Host callbacks ``f(event, cycle)`` implementing engine-specific
        faults.  Their *recovery* is closed by the host through
        ``metrics.close_open(...)`` when detection completes.
    on_window / on_window_end:
        Optional callbacks ``f(event, cycle)`` fired at windowed-fault
        edges for kinds the host handles without a channel (fabric-level
        overload).  A windowed event with neither a channel nor these
        hooks fails validation.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        channels: Optional[Dict[str, Channel]] = None,
        channel_for: Optional[Callable[[FaultEvent], Optional[Channel]]] = None,
        corrupt: Optional[Callable[[Any, int], Any]] = None,
        on_token_loss: Optional[Callable[[FaultEvent, int], None]] = None,
        on_port_down: Optional[Callable[[FaultEvent, int], None]] = None,
        on_window: Optional[Callable[[FaultEvent, int], None]] = None,
        on_window_end: Optional[Callable[[FaultEvent, int], None]] = None,
        metrics: Optional[ResilienceMetrics] = None,
    ):
        self.plan = plan
        self.channels = dict(channels or {})
        self._channel_for = channel_for or (lambda e: self.channels.get(e.target))
        self._corrupt = corrupt
        self._on_token_loss = on_token_loss
        self._on_port_down = on_port_down
        self._on_window = on_window
        self._on_window_end = on_window_end
        self.metrics = metrics if metrics is not None else ResilienceMetrics()
        self._boundaries: Tuple[int, ...] = plan.boundaries()
        # Merged [start, end) windowed-fault intervals for burst_ok.
        self._win_starts: List[int] = []
        self._win_ends: List[int] = []
        for ev in sorted(
            (e for e in plan.events if e.kind in WINDOW_KINDS),
            key=lambda e: e.cycle,
        ):
            if self._win_ends and ev.cycle <= self._win_ends[-1]:
                self._win_ends[-1] = max(self._win_ends[-1], ev.end)
            else:
                self._win_starts.append(ev.cycle)
                self._win_ends.append(ev.end)
        self._timeline = self._build_timeline()
        # Per-target end of the last fault interval recorded on the host
        # trace; clamps flap plans so overlapping windows never record
        # overlapping intervals (Trace.record rejects overlaps).
        self._trace_ends: Dict[str, int] = {}

    # -- timeline -------------------------------------------------------
    def _build_timeline(self) -> List[Tuple[int, int, int, str, FaultEvent]]:
        """(cycle, action, seq, verb, event) rows, sorted for replay."""
        rows = []
        for seq, ev in enumerate(self.plan.events):
            if ev.kind in WINDOW_KINDS:
                rows.append((ev.cycle, _A_APPLY, seq, "down", ev))
                rows.append((ev.end, _A_RESTORE, seq, "up", ev))
            else:
                rows.append((ev.cycle, _A_APPLY, seq, ev.kind, ev))
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        return rows

    def validate(self) -> None:
        """Raise ValueError for any event this host cannot realize."""
        for ev in self.plan.events:
            if ev.kind == "token_loss":
                if self._on_token_loss is None:
                    raise ValueError(
                        "fault plan requests token_loss but this engine has "
                        "no rotating-token model"
                    )
            elif ev.kind == "port_down":
                if self._on_port_down is None:
                    raise ValueError(
                        "fault plan requests port_down but this engine has "
                        "no degraded-routing support"
                    )
            elif ev.kind == "corrupt":
                if self._corrupt is None:
                    raise ValueError("corrupt fault needs a corrupt() mutator")
                if self._channel_for(ev) is None:
                    raise ValueError(
                        f"corrupt fault target {ev.target!r} matches no channel"
                    )
            else:  # windowed kinds
                if self._channel_for(ev) is None and self._on_window is None:
                    raise ValueError(
                        f"{ev.kind} fault target {ev.target!r} matches no "
                        f"channel and the engine installed no window hook"
                    )

    # -- the injector process ------------------------------------------
    def attach(self, sim, name: str = "fault-injector"):
        """Register the injector as a process on ``sim``; validates first."""
        self.validate()
        return sim.add_process(self.process(sim), name=name)

    def process(self, sim):
        """Generator replaying the timeline against ``sim``'s channels."""
        from repro.sim.kernel import Timeout

        now = sim.now
        for cycle, _action, _seq, verb, ev in self._timeline:
            if cycle > now:
                yield Timeout(cycle - now)
                now = cycle
            self._fire(sim, verb, ev, now)

    def _fire(self, sim, verb: str, ev: FaultEvent, now: int) -> None:
        tel = _telemetry.RECORDER
        if tel is not None:
            kind = EV_FAULT_RECOVER if verb == "up" else EV_FAULT_INJECT
            tel.events.emit(now, kind, ev.target, ev.kind)
            if verb != "up":
                tel.registry.count(f"faults.{ev.kind}")
        if verb == "down":
            ch = self._channel_for(ev)
            if ch is not None:
                ch.fault_down(ev.end, now)
            elif self._on_window is not None:
                self._on_window(ev, now)
            self.metrics.record_fault(now, ev.kind, ev.target)
            self._trace_window(sim, ev, now)
        elif verb == "up":
            ch = self._channel_for(ev)
            if ch is not None:
                if ch.fault_restore(now):
                    # Wake any putters/getters parked against the outage.
                    sim._service_channel(ch)
            elif self._on_window_end is not None:
                self._on_window_end(ev, now)
            self.metrics.close_open(ev.kind, ev.target, now)
        elif verb == "corrupt":
            ch = self._channel_for(ev)
            hit = False
            if ch is not None and self._corrupt is not None:
                param = ev.param
                hit, _ = ch.fault_corrupt_head(
                    lambda value: self._corrupt(value, param)
                )
            rec = self.metrics.record_fault(now, ev.kind, ev.target, applied=hit)
            # Corruption is instantaneous; detection shows up in the drop
            # taxonomy, not as an open recovery.
            rec.recovered_at = now
        elif verb == "token_loss":
            self.metrics.record_fault(now, ev.kind, ev.target)
            if self._on_token_loss is not None:
                self._on_token_loss(ev, now)
        elif verb == "port_down":
            self.metrics.record_fault(now, ev.kind, ev.target)
            if self._on_port_down is not None:
                self._on_port_down(ev, now)

    def _trace_window(self, sim, ev: FaultEvent, now: int) -> None:
        """Record the fault window on the host trace so Fig 7-3-style
        timelines render degraded links ("down") and overload/stall
        windows ("stalled") distinctly."""
        trace = getattr(sim, "trace", None)
        if trace is None:
            return
        state = DOWN if ev.kind == "link_down" else STALLED
        start = max(now, self._trace_ends.get(ev.target, 0))
        end = ev.end
        if end <= start:
            return  # nested inside an already-recorded window
        trace.record(ev.target, state, start, end)
        self._trace_ends[ev.target] = end

    # -- burst fallback gate -------------------------------------------
    def burst_ok(self, now: int, span: int = 0) -> bool:
        """True when a burst covering ``[now, now + span]`` cannot
        interact with any fault: no plan boundary inside the span and no
        fault window active.  Conservative by design -- a False answer
        only costs the caller a word-at-a-time fallback."""
        b = self._boundaries
        if bisect_right(b, now + span) != bisect_left(b, now):
            return False
        # Active window: the latest window starting at or before `now`
        # still covers it.
        i = bisect_right(self._win_starts, now) - 1
        if i >= 0 and now < self._win_ends[i]:
            return False
        return True
