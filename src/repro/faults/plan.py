"""Declarative fault plans: what breaks, where, and at which cycle.

A :class:`FaultPlan` is a frozen, picklable schedule of
:class:`FaultEvent` values, sorted by injection cycle.  Plans are
*deterministic by construction*: the same plan applied to the same
seeded simulation produces bit-identical results, which is what makes
chaos runs regression-testable.  Plans load from / dump to JSON
(``python -m repro chaos --plan faults.json``), can be generated
pseudo-randomly from a seed and per-kind rates
(:meth:`FaultPlan.generate`), and ride along a
:class:`~repro.engines.WorkloadSpec` (its ``fault_plan`` field) so the
sweep runner can fan fault grids across processes.

Fault kinds (the failure modes FlexCross/Tiny Tera-class fabrics
design for):

``link_down``
    A channel carries no words during ``[cycle, cycle + duration)``:
    words in flight are held, puts back-pressure.  Two short events
    model a flapping link.
``corrupt``
    Single-word corruption: the word in flight on the target channel at
    ``cycle`` gets bit ``param`` flipped (header corruption at the
    phase level; a payload word at the word level).  Detected
    downstream by the IP header checksum.
``stall``
    A tile/switch processor wedges for ``duration`` cycles: modeled as
    the target port's ingress feed going quiet (its channel is down).
``token_loss``
    The Rotating Crossbar's token is lost at ``cycle``; the fabric
    detects it by timeout and regenerates it at port 0
    (:class:`repro.faults.recovery.TokenRecovery`).
``port_down``
    A port dies permanently at ``cycle`` (``duration`` ignored): its
    line card stops being served and the scheduler masks it out;
    traffic routed *to* it is rerouted to the next live port once the
    routing layer reconverges (degraded mode).
``overload``
    The target port's egress line card is overrun for ``duration``
    cycles (its drain stops); upstream queues fill and, in line-card
    mode, excess arrivals drop externally -- the thesis's section-4.4
    dropping assumption under stress.

Targets are small strings resolved per engine:

* ``"port:<i>"`` -- port-scoped kinds (``stall``, ``port_down``,
  ``overload``);
* ``"input:<i>"`` / ``"egress:<i>"`` / ``"grant:<i>"`` /
  ``"line:<i>"`` -- the named queues/links of port ``i``;
* ``"link:<name>"`` -- a raw static-network channel by its kernel name
  (word-level only, e.g. ``"link:sn1.t5->t6"``);
* ``"token"`` -- the rotating token.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: The supported failure modes, in documentation order.
FAULT_KINDS = (
    "link_down",
    "corrupt",
    "stall",
    "token_loss",
    "port_down",
    "overload",
)

#: Kinds whose effect is a time window (need ``duration > 0``).
WINDOW_KINDS = frozenset({"link_down", "stall", "overload"})

PLAN_SCHEMA = "repro-fault-plan/1"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``cycle`` is in simulated cycles on the engine's clock; ``duration``
    is the window length for windowed kinds; ``param`` is kind-specific
    (the bit index to flip for ``corrupt``).
    """

    cycle: int
    kind: str
    target: str = ""
    duration: int = 0
    param: int = 0

    def __post_init__(self):
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in WINDOW_KINDS and self.duration < 1:
            raise ValueError(f"{self.kind} fault needs duration >= 1")
        if self.duration < 0:
            raise ValueError("fault duration must be >= 0")
        if self.kind == "token_loss":
            object.__setattr__(self, "target", "token")

    @property
    def end(self) -> int:
        """First cycle after the fault's effect window (== ``cycle``
        for instantaneous kinds)."""
        return self.cycle + self.duration

    @property
    def port(self) -> Optional[int]:
        """The port index when the target is port-scoped, else None."""
        prefix, _, rest = self.target.partition(":")
        if prefix in ("port", "input", "egress", "grant", "line") and rest.isdigit():
            return int(rest)
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "target": self.target,
            "duration": self.duration,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultEvent":
        return cls(
            cycle=int(d["cycle"]),
            kind=str(d["kind"]),
            target=str(d.get("target", "")),
            duration=int(d.get("duration", 0)),
            param=int(d.get("param", 0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cycle-sorted schedule of faults.

    Frozen and picklable (it travels inside
    :class:`~repro.engines.WorkloadSpec` across ``multiprocessing``
    workers); hashable, so it composes with the frozen
    :class:`~repro.config.SimConfig` in caches and sweep cells.
    """

    events: Tuple[FaultEvent, ...] = ()
    name: str = ""
    seed: int = 0

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.cycle, e.kind, e.target))
        )
        object.__setattr__(self, "events", ordered)

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls, name: str = "empty") -> "FaultPlan":
        """A plan with no faults: runs must be bit-identical to no plan."""
        return cls(events=(), name=name)

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: int,
        rates: Dict[str, float],
        ports: int = 4,
        mean_duration: int = 200,
        name: str = "",
    ) -> "FaultPlan":
        """Seed-deterministic pseudo-random plan.

        ``rates[kind]`` is the expected number of events of ``kind``
        over ``horizon`` cycles; event cycles, ports and durations come
        from a private ``random.Random(seed)`` stream, so the same
        (seed, horizon, rates) always yields the same plan -- the
        property the sweep runner's per-cell seeds rely on.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        for kind in FAULT_KINDS:  # fixed iteration order for determinism
            rate = rates.get(kind, 0.0)
            if rate <= 0:
                continue
            count = int(rate) + (1 if rng.random() < rate - int(rate) else 0)
            for _ in range(count):
                cycle = rng.randrange(horizon)
                port = rng.randrange(ports)
                duration = 0
                if kind in WINDOW_KINDS:
                    duration = max(1, int(rng.expovariate(1.0 / mean_duration)))
                if kind == "token_loss":
                    target = "token"
                elif kind == "corrupt":
                    target = f"input:{port}"
                elif kind == "link_down":
                    target = f"input:{port}"
                else:
                    target = f"port:{port}"
                events.append(
                    FaultEvent(
                        cycle=cycle,
                        kind=kind,
                        target=target,
                        duration=duration,
                        param=rng.randrange(16) if kind == "corrupt" else 0,
                    )
                )
        return cls(events=tuple(events), name=name or f"generated-{seed}", seed=seed)

    # -- JSON round-trip ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        schema = d.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(f"unknown fault-plan schema {schema!r}")
        return cls(
            events=tuple(FaultEvent.from_dict(e) for e in d.get("events", ())),
            name=str(d.get("name", "")),
            seed=int(d.get("seed", 0)),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        """Truthiness means "has at least one fault": an empty plan must
        behave exactly like no plan at all."""
        return bool(self.events)

    def shifted(self, offset: int) -> "FaultPlan":
        """The same plan with every cycle moved by ``offset``."""
        return FaultPlan(
            events=tuple(
                FaultEvent(
                    cycle=e.cycle + offset,
                    kind=e.kind,
                    target=e.target,
                    duration=e.duration,
                    param=e.param,
                )
                for e in self.events
            ),
            name=self.name,
            seed=self.seed,
        )

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.events}))

    def boundaries(self) -> Tuple[int, ...]:
        """Every cycle at which a fault's effect starts or ends, sorted.
        The burst fallback gate keys off these."""
        out = set()
        for e in self.events:
            out.add(e.cycle)
            out.add(e.end)
        return tuple(sorted(out))

    def window_active(self, cycle: int) -> bool:
        """True when any windowed fault covers ``cycle``."""
        return any(
            e.cycle <= cycle < e.end for e in self.events if e.kind in WINDOW_KINDS
        )


#: Things engines accept as a fault plan: a plan, its dict form, a JSON
#: path, or None.
PlanLike = Union["FaultPlan", Dict[str, Any], str, None]


def load_plan(path: str) -> FaultPlan:
    """Load a plan from a JSON file (alias of :meth:`FaultPlan.from_json`)."""
    return FaultPlan.from_json(path)


def resolve_plan(spec: PlanLike) -> Optional[FaultPlan]:
    """Normalize any accepted plan spec to a :class:`FaultPlan` or None.

    None and the *empty* plan both resolve to None: an engine given
    either must run its unmodified fault-free fast path, which is what
    keeps the golden numbers bit-for-bit stable.
    """
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec if spec else None
    if isinstance(spec, dict):
        plan = FaultPlan.from_dict(spec)
        return plan if plan else None
    if isinstance(spec, str):
        plan = FaultPlan.from_json(spec)
        return plan if plan else None
    raise TypeError(f"cannot resolve a fault plan from {type(spec).__name__}")
