"""Detection and recovery state shared by the router layers.

Two recovery mechanisms, both deterministic so that chaos runs are
regression-testable:

:class:`TokenRecovery`
    The Rotating Crossbar serializes grants through a single token; if
    the token is lost nothing ever gets granted again -- the
    whole-fabric analogue of a deadlock.  Recovery mirrors classic
    token-ring behavior: the fabric *detects* the loss at the next
    quantum boundary (no port holds the token), runs a fixed-length
    regeneration protocol (one idle quantum per port to confirm no one
    holds it, plus one to re-issue), and restarts the token at port 0.
    The elapsed cycles feed the MTTR metric.

:class:`DegradedRouting`
    When a port dies the scheduler masks it out of the rotation and the
    ingress lookup remaps traffic destined to it onto the next live
    port clockwise (modeling the routing layer reconverging around the
    failure).  The surviving ports keep forwarding -- throughput
    degrades proportionally instead of the fabric wedging.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.metrics.resilience import ResilienceMetrics


class TokenRecovery:
    """Lost-token detection and fixed-cost regeneration.

    The engines call :meth:`lose` when the plan's ``token_loss`` event
    fires, poll :attr:`lost` at each quantum boundary, burn
    :meth:`recovery_quanta` idle quanta running the regeneration
    protocol, then call :meth:`recover` with the cycle at which the
    token is back in service.
    """

    def __init__(self, ports: int, metrics: Optional[ResilienceMetrics] = None):
        self.ports = ports
        self.metrics = metrics
        self.lost = False
        self.loss_cycle: Optional[int] = None
        self.recoveries = 0
        self.last_recovery_cycles: Optional[int] = None

    def lose(self, cycle: int) -> None:
        """The token vanishes at ``cycle``; idempotent while still lost."""
        if not self.lost:
            self.lost = True
            self.loss_cycle = cycle

    def recovery_quanta(self) -> int:
        """Protocol length in idle quanta: each port confirms it does not
        hold the token (``ports`` quanta), then port 0 re-issues (1)."""
        return self.ports + 1

    def recover(self, token, cycle: int) -> int:
        """Regenerate the token at port 0 at ``cycle``; returns the
        cycles from loss to restored service (the MTTR sample)."""
        if not self.lost:
            raise RuntimeError("recover() called with no token loss pending")
        token.reset()
        self.lost = False
        elapsed = cycle - (self.loss_cycle or 0)
        self.last_recovery_cycles = elapsed
        self.recoveries += 1
        if self.metrics is not None:
            self.metrics.close_open("token_loss", "token", cycle)
        self.loss_cycle = None
        return elapsed


class DegradedRouting:
    """Dead-port mask plus clockwise-next-live rerouting.

    ``kill(port)`` takes a port out of service permanently (the
    ``port_down`` fault).  The scheduler skips dead ports entirely;
    ingress remaps packets destined to a dead port via :meth:`remap`
    (the next live port clockwise), and anything already queued for the
    dead port is dropped and counted -- degraded mode, not silent loss.
    """

    def __init__(self, ports: int, metrics: Optional[ResilienceMetrics] = None):
        self.ports = ports
        self.metrics = metrics
        self.dead: Set[int] = set()

    def kill(self, port: int) -> bool:
        """Mark ``port`` dead; False when it already was."""
        if port in self.dead:
            return False
        if not 0 <= port < self.ports:
            raise ValueError(f"port {port} out of range 0..{self.ports - 1}")
        self.dead.add(port)
        return True

    def converged(self, port: int, cycle: int) -> None:
        """Routing has reconverged around dead ``port`` at ``cycle``:
        close the fault's recovery record (its MTTR sample)."""
        if self.metrics is not None:
            self.metrics.close_open("port_down", f"port:{port}", cycle)

    def alive(self, port: int) -> bool:
        return port not in self.dead

    @property
    def n_alive(self) -> int:
        return self.ports - len(self.dead)

    @property
    def any_dead(self) -> bool:
        return bool(self.dead)

    def remap(self, port: int) -> Optional[int]:
        """The serving port for traffic addressed to ``port``: itself
        when alive, else the next live port clockwise; None when every
        port is dead."""
        if port not in self.dead:
            return port
        for step in range(1, self.ports):
            cand = (port + step) % self.ports
            if cand not in self.dead:
                return cand
        return None
