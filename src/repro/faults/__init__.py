"""Fault injection and resilience for the Rotating Crossbar.

The thesis assumes a fault-free fabric: the compile-time scheduler
"never deadlocks" and the rotating token is never lost.  A production
switch is not so lucky -- links flap, words take bit errors, tiles
stall, line cards get overrun.  This package adds that axis:

* :mod:`repro.faults.plan` -- declarative, seed-deterministic
  :class:`FaultPlan` schedules (JSON-loadable) naming exactly which
  fault hits which component at which cycle;
* :mod:`repro.faults.inject` -- the kernel-level
  :class:`FaultInjector` process that applies a plan to live channels
  at exact cycles without perturbing the fault-free fast path;
* :mod:`repro.faults.recovery` -- the detection/recovery state the
  router layers share: token timeout + regeneration
  (:class:`TokenRecovery`) and dead-port masking with degraded-mode
  rerouting (:class:`DegradedRouting`).

Resilience measurement (MTTR, goodput under faults, the drop taxonomy)
lives in :mod:`repro.metrics.resilience`.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    load_plan,
    resolve_plan,
)
from repro.faults.inject import FaultInjector
from repro.faults.recovery import DegradedRouting, TokenRecovery

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "DegradedRouting",
    "TokenRecovery",
    "load_plan",
    "resolve_plan",
]
