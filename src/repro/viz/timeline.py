"""ASCII per-tile utilization timelines (thesis Fig 7-3 as text).

Each row is a tile; each column is a bin of cycles.  ``#`` = computing,
``.`` = blocked (on transmit, receive, or cache miss -- the figure's
gray), ``x`` = link down, ``~`` = stalled by an injected fault, space =
idle.  Bins mixing states show the majority state.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics.utilization import (
    BLOCKED_CODE,
    BUSY_CODE,
    DOWN_CODE,
    IDLE_CODE,
    STALLED_CODE,
    UtilizationSummary,
    state_matrix,
)
from repro.sim.trace import Trace

_GLYPH = {
    IDLE_CODE: " ",
    BUSY_CODE: "#",
    BLOCKED_CODE: ".",
    DOWN_CODE: "x",
    STALLED_CODE: "~",
}


def render_timeline(
    trace: Trace,
    keys: Sequence[str],
    start: int = 0,
    stop: Optional[int] = None,
    width: int = 80,
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render the trace window as an ASCII Gantt chart.

    ``width`` columns cover ``[start, stop)``; each column is a bin of
    ``(stop-start)/width`` cycles shown as its majority state.
    """
    if stop is None:
        stop = trace.horizon()
    if stop <= start:
        raise ValueError("empty window")
    if width < 1:
        raise ValueError("width must be positive")
    mat = state_matrix(trace, keys, start, stop)
    span = stop - start
    width = min(width, span)
    edges = np.linspace(0, span, width + 1).astype(int)
    label_width = max(
        (len((labels or {}).get(k, k)) for k in keys), default=4
    )
    lines = [
        f"{'':<{label_width}} cycles {start}..{stop}"
        "  (#=busy  .=blocked  x=down  ~=stalled  ' '=idle)"
    ]
    for row, key in enumerate(keys):
        cells = []
        for b in range(width):
            lo, hi = edges[b], edges[b + 1]
            if hi <= lo:
                cells.append(" ")
                continue
            counts = np.bincount(mat[row, lo:hi], minlength=5)
            cells.append(_GLYPH[int(np.argmax(counts))])
        name = (labels or {}).get(key, key)
        lines.append(f"{name:<{label_width}} {''.join(cells)}")
    return "\n".join(lines)


def render_utilization_bars(
    summaries: Dict[str, UtilizationSummary],
    keys: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """Horizontal busy/blocked bars per key with percentages."""
    if keys is None:
        keys = sorted(summaries)
    label_width = max((len(k) for k in keys), default=4)
    lines = []
    for key in keys:
        s = summaries[key]
        busy_cols = round(s.busy_frac * width)
        blocked_cols = round(s.blocked_frac * width)
        blocked_cols = min(blocked_cols, width - busy_cols)
        bar = "#" * busy_cols + "." * blocked_cols
        lines.append(
            f"{key:<{label_width}} |{bar:<{width}}| "
            f"busy {s.busy_frac * 100:5.1f}%  blocked {s.blocked_frac * 100:5.1f}%"
        )
    return "\n".join(lines)
