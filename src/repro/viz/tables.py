"""Plain-text result tables shared by the benchmarks and experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table; floats rendered with 3 significant decimals."""

    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_comparison(
    rows: Sequence[Dict[str, object]],
    label_key: str = "label",
    measured_key: str = "measured",
    paper_key: str = "paper",
    title: Optional[str] = None,
) -> str:
    """Paper-vs-measured table with the ratio column EXPERIMENTS.md uses."""
    table_rows = []
    for row in rows:
        measured = row[measured_key]
        paper = row.get(paper_key)
        if isinstance(measured, (int, float)) and isinstance(paper, (int, float)) and paper:
            ratio = f"{measured / paper:.2f}"
        else:
            ratio = "-"
        table_rows.append([row[label_key], measured, paper if paper is not None else "-", ratio])
    return format_table(
        ["case", "measured", "paper", "ratio"], table_rows, title=title
    )
