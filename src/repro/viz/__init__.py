"""Text rendering: ASCII tile-utilization timelines and result tables."""

from repro.viz.timeline import render_timeline, render_utilization_bars
from repro.viz.tables import format_table, format_comparison

__all__ = [
    "render_timeline",
    "render_utilization_bars",
    "format_table",
    "format_comparison",
]
