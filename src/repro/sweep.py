"""Declarative configuration sweeps over ``multiprocessing`` workers.

Because :class:`~repro.config.SimConfig`, :class:`~repro.config.CostModel`
and :class:`~repro.engines.WorkloadSpec` are frozen picklable values and
every engine is reachable through
:func:`repro.engines.run_config`, a scaling study is just a grid of
configurations fanned across worker processes::

    python -m repro sweep --grid ports=4 quantum=256,512,1024 --workers 4

Grid keys name :class:`SimConfig` fields (with the short aliases
``quantum`` -> ``quantum_words``, ``clock`` -> ``clock_hz``, ``fifo`` ->
``static_fifo_depth``, ``engine`` -> ``fidelity``),
:class:`WorkloadSpec` fields (plus ``bytes``/``size`` ->
``packet_bytes``), or any :class:`CostModel` field (so the calibrated
``quantum_ctl_overhead`` itself can be swept).  The ``traffic`` axis
takes anything :func:`repro.traffic.spec.resolve_traffic` accepts --
preset names (``traffic=imix_onoff,bursty``), spec ``.json`` paths, or
``.csv``/``.jsonl`` trace paths -- so whole workload families sweep as
one grid key.  Each cell gets a
deterministic seed derived from the base seed and the cell's key/value
assignment -- rerunning a sweep, or running it with a different worker
count, reproduces identical rows.

The output is a JSON table: one row per cell with the fully-resolved
config, the workload, the :class:`~repro.engines.RunResult` schema, and
the worker pid that produced it.
"""

from __future__ import annotations

import json
import os
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import COST_MODEL_FIELDS, SIM_CONFIG_FIELDS, SimConfig
from repro.engines import WorkloadSpec, run_config
from repro.seeds import cell_seed  # noqa: F401  (re-exported; historical home)

#: Short grid-key aliases for the most-swept knobs.
ALIASES = {
    "quantum": "quantum_words",
    "clock": "clock_hz",
    "fifo": "static_fifo_depth",
    "engine": "fidelity",
    "bytes": "packet_bytes",
    "size": "packet_bytes",
    "load_pattern": "pattern",
    # A fault-plan JSON path per cell: chaos grids fan across workers
    # like any other axis (the plan rides inside the WorkloadSpec).
    "faults": "fault_plan",
}

_WORKLOAD_FIELDS = frozenset(WorkloadSpec.__dataclass_fields__)


def _parse_value(text: str) -> Any:
    """int, then float, then bool, else the bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def parse_grid(specs: Sequence[str]) -> Dict[str, List[Any]]:
    """``["ports=4", "quantum=256,512"] -> {"ports": [4], ...}``."""
    grid: Dict[str, List[Any]] = {}
    for spec in specs:
        if "=" not in spec:
            raise ValueError(f"grid entry {spec!r} is not key=value[,value...]")
        key, _, values = spec.partition("=")
        key = ALIASES.get(key.strip(), key.strip())
        if not values:
            raise ValueError(f"grid entry {spec!r} has no values")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


def expand_grid(grid: Dict[str, List[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of the grid, in deterministic key order."""
    keys = sorted(grid)
    return [dict(zip(keys, combo)) for combo in product(*(grid[k] for k in keys))]


def build_cell(
    cell: Dict[str, Any],
    base_config: Optional[SimConfig] = None,
    base_workload: Optional[WorkloadSpec] = None,
    base_seed: int = 0,
) -> Tuple[SimConfig, WorkloadSpec]:
    """Route a cell's key/value assignment onto (SimConfig, WorkloadSpec).

    Precedence for ambiguous names: SimConfig field, then WorkloadSpec
    field, then CostModel field; unknown keys raise."""
    config = base_config or SimConfig()
    workload = base_workload or WorkloadSpec()
    config_changes: Dict[str, Any] = {}
    workload_changes: Dict[str, Any] = {}
    cost_changes: Dict[str, Any] = {}
    for key, value in cell.items():
        if key in SIM_CONFIG_FIELDS:
            config_changes[key] = value
        elif key in _WORKLOAD_FIELDS:
            workload_changes[key] = value
        elif key in COST_MODEL_FIELDS:
            cost_changes[key] = value
        else:
            raise ValueError(
                f"unknown grid key {key!r}: not a SimConfig, WorkloadSpec, "
                "or CostModel field"
            )
    if cost_changes:
        config_changes["costs"] = config.costs.replace(**cost_changes)
    config_changes.setdefault("seed", cell_seed(base_seed, cell))
    return config.replace(**config_changes), (
        workload.replace(**workload_changes) if workload_changes else workload
    )


# ---------------------------------------------------------------------------
# Worker entry point (must be importable for multiprocessing pickling).
# ---------------------------------------------------------------------------
def _run_cell(
    payload: Tuple[Dict[str, Any], SimConfig, WorkloadSpec, bool, int]
) -> Dict[str, Any]:
    cell, config, workload, telemetry, worlds = payload
    if worlds > 1:
        # Monte Carlo cell: K seeds through the vectorized many-worlds
        # engine (per-world scalar runs when the cell cannot vectorize --
        # run_worlds warns with the reason).  ``result`` stays the
        # world-0 run, shaped exactly like a single-run row.  Telemetry
        # forces the scalar path: each world records locally and the
        # states fold into this cell's recorder (worker = world index).
        from repro.parallel.manyworlds import run_worlds

        summary = None
        if telemetry:
            from repro.telemetry import runtime as _telemetry

            with _telemetry.capture() as tel:
                mw = run_worlds(config, workload, worlds)
                summary = tel.summary()
        else:
            mw = run_worlds(config, workload, worlds)
        row = {
            "cell": cell,
            "seed": config.seed,
            "worlds": worlds,
            "vectorized": mw.vectorized,
            "worker_pid": os.getpid(),
            "result": mw.world_result(0).to_dict(),
            "envelope": mw.envelopes(),
        }
        if mw.fallback_reason:
            row["fallback_reason"] = mw.fallback_reason
        if summary is not None:
            row["telemetry"] = summary
        return row
    if telemetry:
        # Enabled per worker process: the recorder is process-global, and
        # pool workers run one cell at a time.
        from repro.telemetry import runtime as _telemetry

        with _telemetry.capture() as tel:
            result = run_config(config, workload)
            summary = tel.summary()
    else:
        result = run_config(config, workload)
        summary = None
    row = {
        "cell": cell,
        "seed": config.seed,
        "worker_pid": os.getpid(),
        "result": result.to_dict(),
    }
    if summary is not None:
        row["telemetry"] = summary
    return row


def run_sweep(
    grid: Dict[str, List[Any]],
    workers: int = 1,
    base_config: Optional[SimConfig] = None,
    base_workload: Optional[WorkloadSpec] = None,
    base_seed: int = 0,
    telemetry: bool = False,
    worlds: int = 1,
) -> Dict[str, Any]:
    """Run every cell of ``grid``; returns the JSON-ready results table.

    ``workers > 1`` fans cells across a ``multiprocessing`` pool
    (chunksize 1, so short grids still spread over the pool); the row
    order always matches :func:`expand_grid` regardless of scheduling.
    ``telemetry`` records each cell with the telemetry layer enabled and
    attaches its :meth:`~repro.telemetry.runtime.Telemetry.summary` to
    the row.  ``worlds > 1`` runs every cell as a ``worlds``-seed Monte
    Carlo batch through :mod:`repro.parallel.manyworlds`: rows gain an
    ``envelope`` (mean/std/ci95/percentiles per metric) and ``result``
    becomes the world-0 run.  Combining both records each world into a
    world-local recorder and attaches the merged summary (per-world
    provenance under ``telemetry["workers"]``).
    """
    if worlds < 1:
        raise ValueError("worlds must be >= 1")
    cells = expand_grid(grid)
    payloads = [
        (
            cell,
            *build_cell(cell, base_config, base_workload, base_seed),
            telemetry,
            worlds,
        )
        for cell in cells
    ]
    if workers > 1 and len(cells) > 1:
        import multiprocessing as mp

        with mp.Pool(processes=workers) as pool:
            rows = pool.map(_run_cell, payloads, chunksize=1)
    else:
        rows = [_run_cell(p) for p in payloads]
    return {
        "sweep": {
            "grid": grid,
            "cells": len(cells),
            "workers": workers,
            "base_seed": base_seed,
            "telemetry": telemetry,
            "worlds": worlds,
            "worker_pids": sorted({r["worker_pid"] for r in rows}),
        },
        "rows": rows,
    }


def write_results(table: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(table, fh, indent=2, sort_keys=False)
        fh.write("\n")


def summarize(table: Dict[str, Any]) -> str:
    """A terminal-friendly one-line-per-cell summary of a sweep table."""
    lines = []
    meta = table["sweep"]
    lines.append(
        f"{meta['cells']} cells, {meta['workers']} workers "
        f"({len(meta['worker_pids'])} distinct pids)"
    )
    for row in table["rows"]:
        cell = " ".join(f"{k}={v}" for k, v in sorted(row["cell"].items()))
        res = row["result"]
        env = row.get("envelope")
        if env:
            g = env["gbps"]
            line = (
                f"  {cell:<40} {g['mean']:8.3f} ± {g['ci95']:.3f} Gbps "
                f"(p50 {g['p50']:.3f}, p99 {g['p99']:.3f})  "
                f"[{row['worlds']} worlds, "
                f"{'vectorized' if row.get('vectorized') else 'scalar'}]"
            )
            lines.append(line)
            continue
        line = (
            f"  {cell:<40} {res['gbps']:8.3f} Gbps  {res['mpps']:7.3f} Mpps  "
            f"{res['delivered_packets']} pkts / {res['cycles']} cycles"
        )
        fp = res.get("extra", {}).get("fabric_fast_path") or row.get(
            "telemetry", {}
        ).get("fabric_fast_path")
        if fp:
            line += (
                f"  [cache {fp['cache_hit_rate'] * 100:.0f}% hit, "
                f"ff {fp['ff_quanta']}q]"
            )
        sp = res.get("extra", {}).get("space_shard") or row.get(
            "telemetry", {}
        ).get("space_shard")
        if sp:
            if sp.get("serial_fallback"):
                line += f"  [space serial: {sp.get('fallback_reason', '?')}]"
            else:
                auto = "auto " if sp.get("partitions_auto") else ""
                line += (
                    f"  [space {auto}P{sp['workers']} "
                    f"{sp.get('transport', 'pipe')}, "
                    f"{sum(sp['windows_per_worker'])}w, "
                    f"stall {sum(sp['pipe_stall_s']):.2f}s, "
                    f"{sum(sp['boundary_flits'])} bflits, "
                    f"{sum(sp.get('bytes_moved', []))/1024:.0f}KiB"
                )
                coal = sum(sp.get("coalesced_rounds", []))
                if coal:
                    line += f", {coal} coalesced"
                line += "]"
        lines.append(line)
    return "\n".join(lines)
