"""Time-sliced sharding of one fabric run across processes.

:mod:`repro.sweep` parallelizes *across* independent cells; this module
is the repository's first *within-run* parallelism: one long
:class:`~repro.core.fabricsim.FabricSimulator` timeline is split at
quantum boundaries and the slices are simulated concurrently.  The
lockstep fabric makes this natural -- a quantum boundary is a complete
synchronization point, so the continuation state is exactly
:meth:`FabricSimulator.snapshot` (queues, clock, token) plus the
workload source's replay state.

Protocol (all three stages bit-identical to the plain step loop):

1. **Pilot pass** -- a stripped stepper (compiled allocation tables,
   no stats, no fault hooks) walks the timeline once and records a
   snapshot at each slice boundary.  The pilot only needs the queue/
   token/clock evolution, so it runs several times faster per quantum
   than the full step loop.
2. **Workers** -- each process restores a checkpoint and re-simulates
   its contiguous slice with the full step loop, collecting
   :class:`~repro.core.fabricsim.FabricStats` for its quanta only (the
   pilot already absorbed warmup, so every slice measures).
3. **Merge** -- per-slice stats are added field-wise; the merge is
   associative, so any slicing of the timeline yields the same totals
   as the serial run (equality-tested in ``tests/test_fabric_fastpath.py``).

Workloads must be replayable from explicit state: the deterministic
saturated patterns trivially are, and
:class:`~repro.core.fabricsim.CounterUniformSource` is the stochastic
workload built for exactly this (per-port draw counters instead of a
shared sequential RNG).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocator
from repro.core.fabricsim import (
    FabricSimulator,
    FabricStats,
    _HolFragment,
    saturated_permutation,
    saturated_uniform_counter,
)
from repro.core.phases import idle_quantum_cycles, quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.telemetry import runtime as _telemetry


@dataclass(frozen=True)
class ShardSpec:
    """A picklable description of one shardable fabric run.

    ``source`` is a declarative workload: ``{"kind": "permutation",
    "words": W, "shift": k}``, ``{"kind": "uniform_counter",
    "words": W, "seed": s, "exclude_self": bool}``, or ``{"kind":
    "traffic", "json": <TrafficSpec.to_json()>, "seed": s}`` (also
    accepts ``"spec": <preset name or trace path>``) for any
    declarative workload -- see :func:`repro.traffic.build.shard_source`.
    """

    ports: int = 4
    networks: int = 1
    pipelined: bool = True
    max_quantum_words: Optional[int] = None
    costs: CostModel = field(default_factory=CostModel.default)
    source: Tuple[Tuple[str, Any], ...] = (("kind", "permutation"), ("words", 256))
    quanta: int = 2000
    warmup_quanta: int = 200
    shards: int = 4
    cache_size: int = 4096  #: allocation LRU in the workers (0 disables)

    def source_dict(self) -> Dict[str, Any]:
        return dict(self.source)

    @staticmethod
    def pack_source(source: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        """Dict -> hashable/picklable tuple form for the frozen spec."""
        return tuple(sorted(source.items()))


@dataclass
class ShardedRunInfo:
    """How a sharded run was actually executed."""

    shards: int
    workers: int
    pilot_quanta: int
    slice_lengths: List[int]


def make_source(spec: ShardSpec):
    src = spec.source_dict()
    kind = src["kind"]
    if kind == "permutation":
        return saturated_permutation(
            src["words"], shift=src.get("shift", 2), n=spec.ports
        )
    if kind == "uniform_counter":
        return saturated_uniform_counter(
            src["words"],
            src["seed"],
            n=spec.ports,
            exclude_self=src.get("exclude_self", True),
        )
    if kind == "traffic":
        # Any declarative TrafficSpec (IMIX, on-off, drift, replay, ...):
        # the factory forces the counter-based model so state()/restore()
        # exists for every spec, including the legacy trio.
        from repro.traffic.build import fabric_source_for_shard

        return fabric_source_for_shard(src, ports=spec.ports, costs=spec.costs)
    raise ValueError(f"unknown shardable source kind {kind!r}")


def build_sim(spec: ShardSpec, cached: bool = True) -> FabricSimulator:
    ring = RingGeometry(spec.ports)
    allocator = Allocator(
        ring,
        networks=spec.networks,
        cache_size=spec.cache_size if cached else 0,
    )
    return FabricSimulator(
        ring=ring,
        allocator=allocator,
        token=RotatingToken(spec.ports),
        max_quantum_words=spec.max_quantum_words,
        pipelined=spec.pipelined,
        costs=spec.costs,
    )


def run_serial(spec: ShardSpec, cached: bool = False) -> FabricStats:
    """The plain step loop over the whole timeline (the bit-identity
    reference; ``cached=False`` is the unoptimized baseline)."""
    sim = build_sim(spec, cached=cached)
    return sim.run(
        make_source(spec), quanta=spec.quanta, warmup_quanta=spec.warmup_quanta
    )


# ---------------------------------------------------------------------------
# Stage 1: the pilot pass.
# ---------------------------------------------------------------------------
def _pilot_checkpoints(
    sim: FabricSimulator, source, boundaries: List[int]
) -> Dict[int, Tuple[Dict[str, Any], Optional[Tuple[int, ...]]]]:
    """Step ``sim`` to each boundary with the stripped stepper, recording
    ``(simulator snapshot, source state)`` checkpoints.

    The queue/token evolution must match
    :meth:`FabricSimulator._step` exactly (fault-free path): same
    refills, same grants (compiled tables, property-tested identical),
    same pops, same clock arithmetic.
    """
    comp = sim.allocator.compiled()
    grants_of = comp.grants
    queues = sim._queues
    token = sim.token
    n = sim.ring.n
    mqw = sim.max_quantum_words
    ctl = quantum_cycles(0, 0, sim.timing, sim.pipelined, costs=sim.costs)
    idle = idle_quantum_cycles(sim.timing)
    checkpoints: Dict[int, Tuple[Dict[str, Any], Optional[Tuple[int, ...]]]] = {}
    wanted = set(boundaries)
    last = max(boundaries)
    ports = range(n)
    for q in range(last + 1):
        if q in wanted:
            checkpoints[q] = (
                sim.snapshot(),
                source.state() if hasattr(source, "state") else None,
            )
            if q == last:
                break
        for port in ports:
            if not queues[port]:
                pkt = source(port)
                if pkt is not None:
                    dest, words = pkt
                    remaining = words
                    while remaining > 0:
                        w = min(remaining, mqw)
                        remaining -= w
                        queues[port].append(
                            _HolFragment(
                                dest=dest,
                                words=w,
                                is_last=remaining == 0,
                                packet_words=words,
                            )
                        )
        requests = tuple(
            queues[p][0].dest if queues[p] else None for p in ports
        )
        if all(r is None for r in requests):
            sim.clock += idle
            token.advance()
            continue
        body = 0
        granted = grants_of(requests, token.master)
        for src_port, _dst, hops in granted:
            w = queues[src_port][0].words + hops
            if w > body:
                body = w
        sim.clock += ctl + body
        for src_port, _dst, _hops in granted:
            queues[src_port].popleft()
        token.advance()
    return checkpoints


# ---------------------------------------------------------------------------
# Stage 2: the worker entry point (importable for multiprocessing).
# ---------------------------------------------------------------------------
def _run_slice(payload):
    """Re-simulate one slice with the full step loop.

    ``payload`` is ``(spec, snapshot, source_state, count)``, returning
    plain :class:`FabricStats` -- plus an optional fifth ``tel_cfg``
    element (:meth:`Telemetry.config` plus ``slice``/``port_classes``)
    that installs a slice-local telemetry recorder for the duration and
    switches the return to ``(stats, state)``.  The recorder global is
    always reassigned (and restored) here: pool workers inherit the
    coordinator's recorder through fork, and a slice must record into
    its own or into nothing.
    """
    spec, snapshot, source_state, count = payload[:4]
    tel_cfg = payload[4] if len(payload) > 4 else None
    prev = _telemetry.RECORDER
    tel = None
    if tel_cfg is not None:
        tel = _telemetry.Telemetry(
            capacity=tel_cfg.get("capacity", 65536),
            snapshot_interval=tel_cfg.get("snapshot_interval", 0),
            detail_limit=tel_cfg.get("detail_limit", 64),
        )
        if tel_cfg.get("port_classes"):
            tel.journeys.set_port_classes(tel_cfg["port_classes"])
    _telemetry.RECORDER = tel
    try:
        sim = build_sim(spec, cached=True).restore(snapshot)
        source = make_source(spec)
        if source_state is not None:
            source.restore(source_state)
        stats = sim.run(source, quanta=count, warmup_quanta=0)
        if tel is None:
            return stats
        tel.registry.snapshot(sim.clock)
        sl = tel_cfg.get("slice", 0)
        return stats, tel.to_state(
            worker=sl, meta={"slice": sl, "quanta": count}
        )
    finally:
        _telemetry.RECORDER = prev


# ---------------------------------------------------------------------------
# Stage 3: the merge.
# ---------------------------------------------------------------------------
def merge_stats(parts: List[FabricStats]) -> FabricStats:
    """Field-wise associative merge of contiguous-slice stats."""
    if not parts:
        raise ValueError("nothing to merge")
    out = FabricStats(num_ports=parts[0].num_ports, costs=parts[0].costs)
    for part in parts:
        if part.num_ports != out.num_ports:
            raise ValueError("cannot merge stats with different port counts")
        out.add_counters(part)
    return out


def run_sharded(
    spec: ShardSpec, workers: Optional[int] = None
) -> Tuple[FabricStats, ShardedRunInfo]:
    """Pilot -> parallel slices -> merged stats (bit-identical to
    :func:`run_serial`).

    ``workers`` defaults to ``min(shards, cpu_count)``; with one worker
    the slices run in-process (same protocol, no pool).  An active
    telemetry recorder is honored through the distributed plane: each
    slice records into its own local recorder, the shipped states fold
    back into the coordinator's in slice order, and the pilot runs with
    telemetry disabled (its stripped stepper re-walks quanta the slices
    will observe, so letting it count would double-report).  Journeys do
    not survive the snapshot/restore seam: fragments already in flight
    at a slice boundary carry no journey tag, so only packets admitted
    *within* a slice are tracked -- the boundary remainder shows up in
    ``in_flight``, never as wrong latencies.
    """
    tel = _telemetry.RECORDER
    shards = max(1, min(spec.shards, spec.quanta))
    if workers is None:
        workers = min(shards, os.cpu_count() or 1)
    base, rem = divmod(spec.quanta, shards)
    slice_lengths = [base + 1] * rem + [base] * (shards - rem)
    boundaries = []
    start = spec.warmup_quanta
    for length in slice_lengths:
        boundaries.append(start)
        start += length
    _telemetry.RECORDER = None
    try:
        pilot_sim = build_sim(spec, cached=True)
        pilot_source = make_source(spec)
        checkpoints = _pilot_checkpoints(pilot_sim, pilot_source, boundaries)
    finally:
        _telemetry.RECORDER = tel
    tel_cfg = None
    if tel is not None:
        tel_cfg = dict(tel.config())
        if tel.journeys.port_classes:
            tel_cfg["port_classes"] = list(tel.journeys.port_classes)
    payloads = []
    for i, (b, length) in enumerate(zip(boundaries, slice_lengths)):
        if length <= 0:
            continue
        payload = (spec, *checkpoints[b], length)
        if tel_cfg is not None:
            payload += (dict(tel_cfg, slice=i),)
        payloads.append(payload)
    if workers > 1 and len(payloads) > 1:
        import multiprocessing as mp

        with mp.Pool(processes=workers) as pool:
            parts = pool.map(_run_slice, payloads, chunksize=1)
    else:
        workers = 1
        parts = [_run_slice(p) for p in payloads]
    if tel is not None:
        states = [p[1] for p in parts]
        parts = [p[0] for p in parts]
        for state in states:
            tel.merge_state(state)
    info = ShardedRunInfo(
        shards=shards,
        workers=workers,
        pilot_quanta=max(boundaries),
        slice_lengths=slice_lengths,
    )
    return merge_stats(parts), info
