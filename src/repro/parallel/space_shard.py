"""Space-partitioned distributed fabric: token-window worker processes.

:mod:`repro.parallel.fabric_shard` shards one fabric timeline in *time*;
this module shards the topology in *space*.  A
:class:`~repro.core.spacetopo.SpaceTopology` (a Clos of k-port Rotating
Crossbar chips) is cut into ``P`` partitions of whole chips; each worker
process owns one partition and advances it locally for ``L`` quanta
(``L`` = the minimum latency of any inter-partition channel) before
exchanging one *window* of boundary traffic with its peers -- the
firesim token-queue discipline, where every boundary link carries a
link-latency window's worth of flit tokens per round instead of a
per-cycle handshake.

Why this is safe (the conservative-lookahead argument, DESIGN.md §13):
a fragment consumed during round ``r`` (quanta ``[rL, (r+1)L)``) arrives
at ``send_quantum + latency >= send_quantum + L``, so it was sent at a
quantum ``< rL`` -- i.e. during some round ``<= r - 1``, whose batches
the receiver holds before round ``r`` begins.  The (worker, round)
dependency graph is acyclic, so the protocol cannot deadlock, and no
worker ever needs a peer's *current* quantum.

Bit-identity with the serial reference is structural: both paths run the
same :class:`~repro.core.spacetopo.PartitionSim` stepper (serial = one
instance owning every chip) and the same associative
:func:`~repro.core.spacetopo.merge_part_stats` fold; property tests in
``tests/test_space_shard.py`` pin P ∈ {1, 2, 4, 5} against serial across
chip sizes and traffic families.

Workers are *persistent*: :class:`SpaceWorkerPool` keeps the processes
warm between runs and streams successive :class:`SpaceSpec` s to them
over command pipes -- the seed of the long-lived simulator service the
ROADMAP names.  Boundary batches travel over a pluggable transport
(:mod:`repro.parallel.transport`): multiprocessing pipes (the compat
default), shared-memory flit rings (fixed-layout numpy records, no
pickling on the hot path), or TCP sockets (``repro serve`` workers on
other machines).  All transports preserve the pipelining property: a
worker that finished its window blocks only on the specific peers
feeding it.

Two adaptive knobs sit on top, both bit-identity-preserving:

* **Adaptive window coalescing** (``SpaceSpec.adaptive_window``): a
  worker whose in-peers have already shipped their *next* window
  batches -- provably idle boundary channels, in the conservative-
  lookahead sense that every fragment that could arrive in the widened
  span is in hand -- injects them early and advances several windows
  in one stride.  Outgoing traffic is still framed one batch per round
  (bucketed by ``send_quantum // window``), so receivers are none the
  wiser; partitions with no incoming boundary channels (a Clos ingress
  stage) coalesce their entire timeline.
* **Adaptive partition counts** (:func:`auto_partitions`,
  ``partitions=0`` in the engine/CLI layer): P defaults to
  ``min(middle-stage chips, cpu_count)`` instead of a hard-coded
  constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import CostModel
from repro.core.fabricsim import (
    FabricStats,
    saturated_permutation,
    saturated_uniform_counter,
)
from repro.core.spacetopo import (
    PartitionSim,
    SpaceTopology,
    build_topology,
    geometry_ports,
    merge_part_stats,
    part_payload,
    payload_to_stats,
)
from repro.faults.plan import FaultPlan
from repro.parallel import transport as _transport
from repro.telemetry import runtime as _telemetry


@dataclass(frozen=True)
class SpaceSpec:
    """A picklable description of one space-partitionable fabric run.

    ``k`` is the chip port count; a ``"clos"`` geometry yields ``k * k``
    external ports on ``3k`` chips.  ``latency`` is the uniform
    inter-chip channel latency in quanta and therefore the token window.
    ``source`` uses the same declarative forms as
    :class:`~repro.parallel.fabric_shard.ShardSpec`, always instantiated
    counter-based so per-port draws are partition-independent.
    """

    k: int = 4
    geometry: str = "clos"
    latency: int = 4
    partitions: int = 3
    costs: CostModel = field(default_factory=CostModel.default)
    source: Tuple[Tuple[str, Any], ...] = (("kind", "permutation"), ("words", 256))
    quanta: int = 2000
    warmup_quanta: int = 200
    cache_size: int = 4096  #: per-chip allocation LRU (0 disables)
    adaptive_window: bool = True  #: coalesce windows over idle boundaries
    max_coalesce: int = 64  #: most windows one adaptive stride may cover
    fault_plan: Optional[FaultPlan] = None  #: intra-partition link faults

    def __post_init__(self):
        if self.latency < 1:
            raise ValueError("channel latency must be >= 1 quantum")
        if self.partitions < 1:
            raise ValueError("partitions must be >= 1")
        if self.warmup_quanta < 0 or self.quanta < 1:
            raise ValueError("need quanta >= 1 and warmup_quanta >= 0")
        if self.max_coalesce < 1:
            raise ValueError("max_coalesce must be >= 1")

    @property
    def num_ports(self) -> int:
        return geometry_ports(self.geometry, self.k)

    def source_dict(self) -> Dict[str, Any]:
        return dict(self.source)

    @staticmethod
    def pack_source(source: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        """Dict -> hashable/picklable tuple form for the frozen spec."""
        return tuple(sorted(source.items()))

    def topology(self) -> SpaceTopology:
        return build_topology(self.geometry, self.k, latency=self.latency)


@dataclass
class SpaceRunInfo:
    """How a space-partitioned run was actually executed, including the
    per-worker window/stall/boundary counters surfaced in
    ``RunResult.extra`` and ``Telemetry.summary()``."""

    partitions: int
    workers: int
    window: int
    rounds: int
    node_blocks: List[List[int]]
    windows_per_worker: List[int]
    pipe_stall_s: List[float]
    boundary_flits: List[int]
    serial_fallback: bool = False
    fallback_reason: str = ""
    transport: str = "pipe"
    bytes_moved: List[int] = field(default_factory=list)
    coalesced_rounds: List[int] = field(default_factory=list)
    partitions_auto: bool = False

    def extra_dict(self) -> Dict[str, Any]:
        """The JSON-safe form attached to ``RunResult.extra``."""
        return {
            "partitions": self.partitions,
            "workers": self.workers,
            "window": self.window,
            "rounds": self.rounds,
            "windows_per_worker": list(self.windows_per_worker),
            "pipe_stall_s": [round(s, 6) for s in self.pipe_stall_s],
            "boundary_flits": list(self.boundary_flits),
            "serial_fallback": self.serial_fallback,
            "fallback_reason": self.fallback_reason,
            "transport": self.transport,
            "bytes_moved": list(self.bytes_moved),
            "coalesced_rounds": list(self.coalesced_rounds),
            "partitions_auto": self.partitions_auto,
        }


def make_space_source(spec: SpaceSpec):
    """Instantiate the declarative workload for ``spec.num_ports`` ports.

    Every supported kind draws per-port from independent counters, which
    is what lets a partition poll only its own external ports and still
    reproduce the serial draw sequence exactly.
    """
    src = spec.source_dict()
    kind = src["kind"]
    n = spec.num_ports
    if kind == "permutation":
        return saturated_permutation(src["words"], shift=src.get("shift", 2), n=n)
    if kind == "uniform_counter":
        return saturated_uniform_counter(
            src["words"],
            src["seed"],
            n=n,
            exclude_self=src.get("exclude_self", True),
        )
    if kind == "traffic":
        from repro.traffic.build import fabric_source_for_shard

        return fabric_source_for_shard(src, ports=n, costs=spec.costs)
    raise ValueError(f"unknown space source kind {kind!r}")


def build_partition(
    spec: SpaceSpec, topo: SpaceTopology, node_ids, cached: bool = True
) -> PartitionSim:
    return PartitionSim(
        topo,
        node_ids,
        costs=spec.costs,
        cache_size=spec.cache_size if cached else 0,
        fault_plan=spec.fault_plan,
    )


def auto_partitions(topo: SpaceTopology) -> int:
    """The adaptive partition-count heuristic: as many workers as the
    topology's natural cut width supports, bounded by the cores actually
    available -- ``min(middle-stage chips, cpu_count)`` for a Clos.
    Returns 1 on single-core boxes (the silent serial fallback)."""
    import os as _os

    cpus = _os.cpu_count() or 1
    return max(1, min(topo.preferred_partitions, cpus))


#: Associative/commutative per-backend counter keys folded through the
#: telemetry merge path (sum-merge; see :func:`merge_backend_counters`).
BACKEND_COUNTER_KEYS = (
    "windows",
    "boundary_flits",
    "bytes_moved",
    "coalesced_rounds",
)


def backend_counters(info: SpaceRunInfo) -> Dict[str, int]:
    """One worker-set's transport counters in sum-mergeable form."""
    return {
        "windows": sum(info.windows_per_worker),
        "boundary_flits": sum(info.boundary_flits),
        "bytes_moved": sum(info.bytes_moved),
        "coalesced_rounds": sum(info.coalesced_rounds),
    }


def merge_backend_counters(
    a: Dict[str, int], b: Dict[str, int]
) -> Dict[str, int]:
    """Sum-merge two per-backend counter dicts (associative and
    commutative over integer counters, so partial merges fold in any
    order -- the same algebra the telemetry merge path relies on)."""
    out = dict(a)
    for key, val in b.items():
        out[key] = out.get(key, 0) + val
    return out


def run_space_serial(spec: SpaceSpec, cached: bool = False) -> FabricStats:
    """The single-process reference: one :class:`PartitionSim` owning
    every chip, stepped over the whole timeline (``cached=False`` is the
    unoptimized baseline the bench suite measures against)."""
    topo = spec.topology()
    sim = build_partition(spec, topo, range(topo.num_nodes), cached=cached)
    source = make_space_source(spec)
    sim.advance(source, 0, spec.warmup_quanta + spec.quanta, spec.warmup_quanta)
    if sim.outgoing:
        raise AssertionError("serial partition produced boundary traffic")
    return merge_part_stats([sim.stats], topo.num_ports, spec.costs)


# ---------------------------------------------------------------------------
# The worker side: one process per partition, persistent across runs.
# ---------------------------------------------------------------------------
def _simulate_partition(
    spec: SpaceSpec,
    part_id: int,
    blocks: List[List[int]],
    recv_fns: Dict[int, Any],
    send_fns: Dict[int, Any],
    poll_fns: Optional[Dict[int, Any]] = None,
    tel_cfg: Optional[Dict[str, Any]] = None,
    snap_fn=None,
) -> Tuple:
    """Run one partition's token-window rounds.

    ``recv_fns[peer]()`` blocks until that peer's next batch arrives;
    ``send_fns[peer](batch)`` ships one; ``poll_fns[peer]()`` (optional)
    reports whether a batch is already waiting -- the hook adaptive
    window coalescing needs.  Returns ``(stats payload, windows,
    pipe-stall seconds, boundary flits sent, coalesced rounds)`` -- plus
    the worker-local telemetry state when ``tel_cfg`` asked for
    recording.  The same function drives the multiprocessing workers
    (any transport) and the in-process fallback used by tests.

    ``tel_cfg`` (from :meth:`Telemetry.config` plus ``port_classes``)
    installs a fresh *worker-local* recorder for the duration: journeys
    use shared-key mode so partial cross-partition entries fold on the
    coordinator, and per-worker gauges/snapshots describe this
    partition.  ``snap_fn(state)``, when given, streams a full
    point-in-time state every few rounds (each snap *replaces* the
    worker's previous one -- consumers keep the latest per worker).
    """
    topo = spec.topology()
    owner = topo.node_owner(blocks)
    prev_recorder = _telemetry.RECORDER
    tel = None
    if tel_cfg is not None:
        tel = _telemetry.Telemetry(
            capacity=tel_cfg.get("capacity", 65536),
            snapshot_interval=tel_cfg.get("snapshot_interval", 0),
            detail_limit=tel_cfg.get("detail_limit", 64),
        )
        tel.journeys.share_keys()
        if tel_cfg.get("port_classes"):
            tel.journeys.set_port_classes(tel_cfg["port_classes"])
        _telemetry.RECORDER = tel
    try:
        return _run_partition_rounds(
            spec, part_id, blocks, recv_fns, send_fns, poll_fns, topo,
            owner, tel, snap_fn,
        )
    finally:
        _telemetry.RECORDER = prev_recorder


def _run_partition_rounds(
    spec: SpaceSpec,
    part_id: int,
    blocks: List[List[int]],
    recv_fns: Dict[int, Any],
    send_fns: Dict[int, Any],
    poll_fns: Optional[Dict[int, Any]],
    topo: SpaceTopology,
    owner: Dict[int, int],
    tel,
    snap_fn,
) -> Tuple:
    sim = build_partition(spec, topo, blocks[part_id], cached=True)
    source = make_space_source(spec)
    if tel is not None:
        reg = tel.registry
        reg.gauge("space.delivered_words",
                  lambda: sim.stats.delivered_words)
        reg.gauge("space.delivered_packets",
                  lambda: sim.stats.delivered_packets)
        reg.gauge("space.blocked_events",
                  lambda: sim.stats.blocked_events)
    window = min(topo.window(blocks), spec.warmup_quanta + spec.quanta)
    in_peers = sorted(
        {
            owner[ch.src_node]
            for ch in topo.channels
            if owner[ch.dst_node] == part_id and owner[ch.src_node] != part_id
        }
    )
    out_peers = sorted(
        {
            owner[ch.dst_node]
            for ch in topo.channels
            if owner[ch.src_node] == part_id and owner[ch.dst_node] != part_id
        }
    )
    total = spec.warmup_quanta + spec.quanta
    rounds = -(-total // window)
    # Stream at most ~16 live snaps per run so snap traffic stays small
    # relative to the boundary batches.
    snap_every = max(1, rounds // 16) if snap_fn is not None else 0
    # Adaptive coalescing stays off under telemetry: snapshot cadence is
    # keyed to the per-round advance, and determinism of the exported
    # state matters more there than wall-clock.
    adaptive = (
        spec.adaptive_window and tel is None and poll_fns is not None
    )
    stall = 0.0
    flits_sent = 0
    coalesced = 0
    q = 0
    r = 0
    while r < rounds:
        if r > 0:
            # Collect every in-peer's round r-1 window in peer order; the
            # per-channel FIFOs inside inject() preserve send order, so
            # arrival order at each input leg matches the serial run.
            for peer in in_peers:
                t0 = time.perf_counter()
                batch = recv_fns[peer]()
                stall += time.perf_counter() - t0
                for cid, send_q, frag in batch:
                    sim.inject(cid, send_q, frag)
        # Widen the stride while every in-peer's *next* window batch has
        # already arrived: holding batch r+s-1 from all feeders means
        # every fragment that can arrive before quantum (r+s+1)*window
        # is in hand (conservative lookahead), so rounds r..r+s can run
        # in one advance.  Partitions with no in-peers (all([]) is True)
        # coalesce their whole timeline.
        span = 1
        if adaptive:
            limit = min(spec.max_coalesce, rounds - r)
            while span < limit and all(
                poll_fns[peer]() for peer in in_peers
            ):
                for peer in in_peers:
                    for cid, send_q, frag in recv_fns[peer]():
                        sim.inject(cid, send_q, frag)
                span += 1
        count = min(span * window, total - q)
        sim.advance(source, q, count, spec.warmup_quanta)
        q += count
        if tel is not None:
            tel.registry.maybe_snapshot(q)
        if snap_every and (r + 1) % snap_every == 0 and r < rounds - 1:
            snap_fn(tel.to_state(worker=part_id,
                                 meta={"partition": part_id, "round": r + 1}))
        # Ship boundary sends framed exactly one batch per covered round
        # per out-peer (empty batches included -- the receiver counts
        # arrivals, not contents, to know a window is complete), so a
        # coalescing sender is indistinguishable from a round-at-a-time
        # one.  The final protocol round never ships.
        out = sim.drain_outgoing()
        flits_sent += len(out)
        send_hi = min(r + span, rounds - 1)
        if send_hi > r:
            buckets: Dict[int, Dict[int, List[Tuple[int, int, Any]]]] = {
                rr: {peer: [] for peer in out_peers}
                for rr in range(r, send_hi)
            }
            for cid, send_q, frag in out:
                rr = send_q // window
                if rr >= send_hi:
                    continue  # final-round traffic drains but never ships
                dst_part = owner[topo.channels[cid].dst_node]
                buckets[rr][dst_part].append((cid, send_q, frag))
            for rr in range(r, send_hi):
                for peer in out_peers:
                    send_fns[peer](buckets[rr][peer])
        coalesced += span - 1
        r += span
    if tel is None:
        return part_payload(sim.stats), rounds, stall, flits_sent, coalesced
    tel.registry.snapshot(q)
    state = tel.to_state(worker=part_id,
                         meta={"partition": part_id, "rounds": rounds,
                               "chips": len(blocks[part_id])})
    return (part_payload(sim.stats), rounds, stall, flits_sent, coalesced,
            state)


def _space_worker(part_id, cmd_conn, link):
    """Persistent worker loop: block on the command channel, run one
    partition per ``("run", spec, blocks, tel_cfg)`` message, exit on
    ``None`` (or the coordinator hanging up).  Live telemetry snaps
    stream back over the same channel as ``("snap", part_id, state)``
    messages ahead of the terminal ``("ok", result, bytes_sent)`` /
    ``("err", msg)``.  ``link`` is any transport worker link (pipe
    bundle, shm ring bundle, or the socket :class:`HubEndpoint`, which
    doubles as ``cmd_conn``)."""
    # The fork start method hands children the parent's recorder; each
    # run installs its own local one (or none) via tel_cfg instead.
    _telemetry.RECORDER = None
    ports = link.open()
    # The socket hub demultiplexes commands from relayed data batches.
    recv_cmd = getattr(cmd_conn, "recv_cmd", None) or cmd_conn.recv
    try:
        while True:
            try:
                msg = recv_cmd()
            except EOFError:
                return
            if msg is None:
                return
            _tag, spec, blocks, tel_cfg = msg
            ports.reset_counters()
            try:
                result = _simulate_partition(
                    spec, part_id, blocks,
                    ports.recv_fns, ports.send_fns,
                    poll_fns=ports.poll_fns,
                    tel_cfg=tel_cfg,
                    snap_fn=(
                        (lambda state: cmd_conn.send(
                            ("snap", part_id, state)))
                        if tel_cfg is not None and tel_cfg.get("stream_snaps")
                        else None
                    ),
                )
                cmd_conn.send(("ok", result, ports.bytes_sent()))
            except Exception as exc:  # surfaced in the parent
                cmd_conn.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        ports.close()


class SpaceWorkerPool:
    """A warm pool of ``P`` partition workers plus their boundary links.

    Construction launches the workers over the chosen transport backend
    (``"pipe"`` pickle-over-pipe, ``"shm"`` shared-memory flit rings, or
    ``"socket"`` / ``"socket:HOST:PORT"`` TCP hub -- see
    :mod:`repro.parallel.transport`) with one directed boundary link per
    ordered partition pair (full mesh -- any geometry's boundary graph
    is a subgraph).  :meth:`run` streams a :class:`SpaceSpec` to every
    worker and gathers the merged stats; the workers survive between
    runs, so successive workloads skip process/link setup entirely.
    Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        partitions: int,
        transport: str = "pipe",
        authkey: bytes = _transport.DEFAULT_AUTHKEY,
    ):
        if partitions < 2:
            raise ValueError("a worker pool needs at least 2 partitions")
        self.partitions = partitions
        self.transport = _transport.transport_name(transport)
        self._backend = _transport.create(transport, partitions,
                                          authkey=authkey)
        self._backend.launch(_space_worker)
        self.runs = 0

    # ------------------------------------------------------------------
    def run(
        self,
        spec: SpaceSpec,
        tel_cfg: Optional[Dict[str, Any]] = None,
        on_snapshot=None,
    ) -> Tuple[FabricStats, SpaceRunInfo]:
        """Run ``spec`` across the pool.

        ``tel_cfg`` (see :func:`_simulate_partition`) makes every worker
        record into a local telemetry recorder; the shipped states are
        folded into the coordinator's active recorder in partition
        order.  ``on_snapshot(part_id, state)`` receives the live
        mid-run snaps (implies streaming); each snap replaces the
        worker's previous one.
        """
        from multiprocessing.connection import wait as _conn_wait

        if spec.partitions != self.partitions:
            raise ValueError(
                f"pool has {self.partitions} workers; spec wants "
                f"{spec.partitions} partitions"
            )
        topo = spec.topology()
        blocks = topo.partition(self.partitions)
        if len(blocks) != self.partitions:
            raise ValueError(
                f"{self.partitions} partitions over {topo.num_nodes} chips "
                "leaves empty workers; lower --partitions"
            )
        if tel_cfg is not None and on_snapshot is not None:
            tel_cfg = dict(tel_cfg, stream_snaps=True)
        cmd_conns = self._backend.cmd_conns
        for conn in cmd_conns:
            conn.send(("run", spec, blocks, tel_cfg))
        results: Dict[int, Tuple] = {}
        worker_bytes: Dict[int, int] = {}
        errors = []
        part_of = {id(conn): p for p, conn in enumerate(cmd_conns)}
        pending = list(cmd_conns)
        while pending:
            for conn in _conn_wait(pending):
                p = part_of[id(conn)]
                try:
                    msg = conn.recv()
                except EOFError:
                    errors.append(f"partition {p}: worker died")
                    pending.remove(conn)
                    continue
                if msg[0] == "data":
                    # Socket hub: boundary batches relay through the
                    # coordinator; the payload stays pickled end to end.
                    self._backend.route_data(p, msg)
                    continue
                if msg[0] == "snap":
                    if on_snapshot is not None:
                        on_snapshot(msg[1], msg[2])
                    continue
                pending.remove(conn)
                if msg[0] != "ok":
                    errors.append(f"partition {p}: {msg[1]}")
                else:
                    results[p] = msg[1]
                    worker_bytes[p] = msg[2] if len(msg) > 2 else 0
        if errors:
            raise RuntimeError("space workers failed: " + "; ".join(errors))
        self.runs += 1
        ordered = [results[p] for p in range(self.partitions)]
        payloads = [r[0] for r in ordered]
        rounds_seen = [r[1] for r in ordered]
        stalls = [r[2] for r in ordered]
        flits = [r[3] for r in ordered]
        coalesced = [r[4] for r in ordered]
        if tel_cfg is not None and _telemetry.RECORDER is not None:
            for r in ordered:
                _telemetry.RECORDER.merge_state(r[5])
        stats = merge_part_stats(
            [payload_to_stats(p) for p in payloads], topo.num_ports, spec.costs
        )
        info = SpaceRunInfo(
            partitions=self.partitions,
            workers=self.partitions,
            window=min(topo.window(blocks), spec.warmup_quanta + spec.quanta),
            rounds=max(rounds_seen),
            node_blocks=blocks,
            windows_per_worker=rounds_seen,
            pipe_stall_s=stalls,
            boundary_flits=flits,
            transport=self.transport,
            bytes_moved=[worker_bytes[p] for p in range(self.partitions)],
            coalesced_rounds=coalesced,
        )
        return stats, info

    # ------------------------------------------------------------------
    def close(self) -> None:
        if getattr(self, "_backend", None) is not None:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "SpaceWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        if getattr(self, "_backend", None) is not None:
            self.close()


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------
def run_space(
    spec: SpaceSpec,
    pool: Optional[SpaceWorkerPool] = None,
    on_snapshot=None,
    transport: str = "pipe",
) -> Tuple[FabricStats, SpaceRunInfo]:
    """Run ``spec`` space-partitioned; bit-identical to
    :func:`run_space_serial`.

    An active telemetry recorder is honored on *both* paths: each worker
    records into a local recorder whose state ships back over the
    command pipe and folds into the coordinator's, so a distributed run
    under telemetry is indistinguishable from a single-process one
    (journeys use shared-key tags, so even packets crossing partitions
    stitch back together).  Only ``partitions == 1`` stays in-process --
    silently, because one partition *is* a single-process run.
    ``on_snapshot(part_id, state)`` streams live mid-run worker states
    (distributed runs only).  A supplied warm ``pool`` is used as-is
    (its transport wins); otherwise a throwaway pool on ``transport``
    is created and torn down around the run.
    """
    tel = _telemetry.RECORDER
    if spec.partitions == 1:
        if tel is not None:
            tel.journeys.share_keys()
        stats = run_space_serial(spec, cached=True)
        topo = spec.topology()
        blocks = topo.partition(1)
        info = SpaceRunInfo(
            partitions=spec.partitions,
            workers=1,
            window=min(topo.window(blocks), spec.warmup_quanta + spec.quanta),
            rounds=1,
            node_blocks=blocks,
            windows_per_worker=[1],
            pipe_stall_s=[0.0],
            boundary_flits=[0],
            serial_fallback=True,
            fallback_reason="partitions=1",
            transport=_transport.transport_name(transport),
            bytes_moved=[0],
            coalesced_rounds=[0],
        )
        if tel is not None:
            tel.journeys.finalize()
        _register_gauges(info)
        return stats, info
    tel_cfg = None
    if tel is not None:
        tel_cfg = dict(tel.config())
        if tel.journeys.port_classes:
            tel_cfg["port_classes"] = list(tel.journeys.port_classes)
    owned_pool = pool is None
    if owned_pool:
        pool = SpaceWorkerPool(spec.partitions, transport=transport)
    try:
        stats, info = pool.run(spec, tel_cfg=tel_cfg, on_snapshot=on_snapshot)
    finally:
        if owned_pool:
            pool.close()
    if tel is not None:
        # Every worker state is folded in; convert the partial
        # cross-partition journey entries into final histograms.
        tel.journeys.finalize()
    _register_gauges(info)
    return stats, info


def _register_gauges(info: SpaceRunInfo) -> None:
    """Publish the distributed-run counters to an active recorder.
    ``pipe_stall_s`` is wall-clock and therefore volatile: it stays out
    of snapshots and exported JSON, which must be deterministic."""
    tel = _telemetry.RECORDER
    if tel is None:
        return
    reg = tel.registry
    reg.set_gauge("space.windows", sum(info.windows_per_worker))
    reg.set_gauge("space.pipe_stall_s", round(sum(info.pipe_stall_s), 6),
                  volatile=True)
    reg.set_gauge("space.boundary_flits", sum(info.boundary_flits))
    reg.set_gauge("space.partitions", info.partitions)
    reg.set_gauge("space.serial_fallback", info.serial_fallback)
    reg.set_gauge("space.bytes_moved", sum(info.bytes_moved))
    # Coalescing depends on arrival timing (and is disabled entirely
    # when telemetry records), so the count is volatile like stall time.
    reg.set_gauge("space.coalesced_rounds", sum(info.coalesced_rounds),
                  volatile=True)


# ---------------------------------------------------------------------------
# In-process round loop (no processes): used by tests to exercise the
# exact window protocol deterministically under unequal partitions.
# ---------------------------------------------------------------------------
def run_space_inprocess(spec: SpaceSpec) -> Tuple[FabricStats, SpaceRunInfo]:
    """Execute the token-window protocol with all partitions in one
    process, interleaved round-robin via queue-backed pipes.

    Same :func:`_simulate_partition` code as the worker processes --
    only the transport differs (plain lists instead of pipes) -- so it
    pins the *protocol* (window sizing, batch ordering, unequal
    partition sizes) without multiprocessing nondeterminism.
    """
    from collections import deque as _dq

    topo = spec.topology()
    blocks = topo.partition(spec.partitions)
    parts = len(blocks)
    mailboxes: Dict[Tuple[int, int], Any] = {
        (src, dst): _dq()
        for src in range(parts)
        for dst in range(parts)
        if src != dst
    }

    def recv_fn(src: int, dst: int):
        def _recv():
            box = mailboxes[(src, dst)]
            if not box:
                raise RuntimeError(
                    f"deadlock: partition {dst} waiting on {src} with an "
                    "empty mailbox (window protocol violated)"
                )
            return box.popleft()

        return _recv

    def poll_fn(src: int, dst: int):
        return lambda: bool(mailboxes[(src, dst)])

    results = []
    # Round-robin co-execution: because each round's receives depend only
    # on the previous round's sends, running partitions to completion one
    # at a time *in any order* would deadlock, but stepping them through
    # the protocol as generators is unnecessary -- sends all happen
    # before the next round's receives, so executing partitions in order
    # per *round* works.  _simulate_partition runs the whole timeline,
    # so instead exploit the acyclic dependency: run partitions in an
    # order where every in-peer batch is already present.  For arbitrary
    # graphs that order may not exist within a single pass, so this
    # helper simply pre-computes each partition fully, relying on the
    # protocol property that partition p's round-r sends never depend on
    # any other partition's round-r sends ... which holds only for
    # DAG-ordered topologies like the feed-forward Clos (ingress ->
    # middle -> egress).  The general case is what the process pool is
    # for; tests use this helper on Clos only.
    order = _toposort_partitions(topo, blocks)
    for part_id in order:
        recv_fns = {
            src: recv_fn(src, part_id)
            for src in range(parts)
            if (src, part_id) in mailboxes
        }
        send_fns = {
            dst: mailboxes[(part_id, dst)].append
            for dst in range(parts)
            if (part_id, dst) in mailboxes
        }
        poll_fns = {
            src: poll_fn(src, part_id)
            for src in range(parts)
            if (src, part_id) in mailboxes
        }
        results.append(
            (part_id,
             _simulate_partition(spec, part_id, blocks, recv_fns, send_fns,
                                 poll_fns=poll_fns))
        )
    results.sort()
    payloads = [payload_to_stats(r[1][0]) for r in results]
    stats = merge_part_stats(payloads, topo.num_ports, spec.costs)
    info = SpaceRunInfo(
        partitions=parts,
        workers=1,
        window=min(topo.window(blocks), spec.warmup_quanta + spec.quanta),
        rounds=max(r[1][1] for r in results),
        node_blocks=blocks,
        windows_per_worker=[r[1][1] for r in results],
        pipe_stall_s=[r[1][2] for r in results],
        boundary_flits=[r[1][3] for r in results],
        transport="inprocess",
        bytes_moved=[0 for _ in results],
        coalesced_rounds=[r[1][4] for r in results],
    )
    return stats, info


def _toposort_partitions(
    topo: SpaceTopology, blocks: List[List[int]]
) -> List[int]:
    """Partition order where every boundary producer precedes its
    consumers; raises on cyclic partition graphs (those need the real
    process pool)."""
    owner = topo.node_owner(blocks)
    parts = len(blocks)
    deps: Dict[int, set] = {p: set() for p in range(parts)}
    for ch in topo.channels:
        a, b = owner[ch.src_node], owner[ch.dst_node]
        if a != b:
            deps[b].add(a)
    order: List[int] = []
    ready = [p for p in range(parts) if not deps[p]]
    while ready:
        p = ready.pop()
        order.append(p)
        for q in range(parts):
            if p in deps[q]:
                deps[q].discard(p)
                if not deps[q]:
                    ready.append(q)
    if len(order) != parts:
        raise ValueError(
            "cyclic partition graph: in-process execution needs a "
            "feed-forward topology (use the worker pool)"
        )
    return order


# ---------------------------------------------------------------------------
# The multi-machine worker entry point (``python -m repro serve``).
# ---------------------------------------------------------------------------
def serve_worker(
    address: str, authkey: bytes = _transport.DEFAULT_AUTHKEY
) -> int:
    """Connect to a ``socket:HOST:PORT`` coordinator and serve space
    partitions until it hangs up.  ``address`` is ``HOST:PORT``."""
    host, _, port = address.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return _transport._serve_client(
        (host or "127.0.0.1", int(port)), authkey, _space_worker
    )
