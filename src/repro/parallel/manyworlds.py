"""Vectorized many-worlds fabric engine: N seeds as one array program.

A Monte Carlo sweep over seeds has, until now, meant ``n_worlds`` full
scalar runs -- one Python quantum loop each -- so confidence intervals
at useful scale (hundreds to thousands of seeds) were unaffordable.
This module advances ``n_worlds`` *independent* runs in lock-step:
queue state, traffic counters, and per-world statistics live in numpy
arrays of shape ``(n_worlds, ...)``, and each routing quantum is one
vectorized step (refill -> batch allocation -> stats scatter) instead
of ``n_worlds`` interpreter loops.

What makes this exact rather than approximate:

* every traffic draw is counter-based (:mod:`repro.traffic.rng`): a
  pure function of ``(seed, stream, counter)``, so a ``[n_worlds]``
  lane of seeds plus ``[n_worlds, ports]`` counter arrays reproduces
  each world's scalar draw stream bit-for-bit
  (:class:`VecSpecModel`, :class:`VecCounterUniform`);
* the allocation rule is shared lookup tensors
  (:meth:`~repro.core.allocator.CompiledAllocator.lookup_tensors`)
  indexed per world: the token is global (all worlds rotate in
  lock-step from quantum 0), so one ``[n, n, C]`` tensor serves every
  world (:meth:`~repro.core.allocator.CompiledAllocator.batch_grants`);
* packets are single-fragment whenever the size distribution fits one
  quantum, so a world x port queue slot is just (valid, dest, words).

Correctness contract (the same one every fast path in this repo
honors): **world 0 is bit-identical to the scalar fabric engine** with
``force_counter=True`` sources, and world ``w`` to a scalar run seeded
``seeds.world_seed(config.seed, w)`` -- property-tested in
``tests/test_manyworlds.py``.  Configurations the array program cannot
represent (fault plans, telemetry recording, replay traces,
multi-fragment packets, >64 link bits) **fall back loudly** to per-world
scalar runs via :func:`run_worlds`; :func:`supports` is the fallback
matrix (documented in DESIGN.md section 12).
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.config import SimConfig
from repro.core.allocator import CompiledAllocator
from repro.core.fabricsim import FabricStats
from repro.core.phases import (
    DEFAULT_TIMING,
    PhaseTiming,
    idle_quantum_cycles,
    quantum_cycles,
)
from repro.core.ring import RingGeometry
from repro.engines import FabricEngine, RunResult, WorkloadSpec
from repro.seeds import counter_seed, spec_seed, world_seed
from repro.traffic.model import (
    _S_ARRIVAL,
    _S_BURST,
    _S_DURATION,
    _S_PATTERN,
    _S_SIZE,
    _STRIDE,
)
from repro.traffic.rng import draw_float, geometric_length, pareto_length
from repro.traffic.spec import TrafficSpec, resolve_traffic

#: Schema tag on :meth:`ManyWorldsResult.to_dict`.
RESULT_SCHEMA = "repro-manyworlds/1"

#: Metrics an envelope is computed over by default.
ENVELOPE_METRICS = ("gbps", "mpps", "delivered_packets", "delivered_words")

# ---------------------------------------------------------------------------
# Vectorized counter-based randomness (repro.traffic.rng over world lanes).
# ---------------------------------------------------------------------------
_M64 = (1 << 64) - 1
_A = np.uint64(0x9E3779B97F4A7C15)
_B_INT = 0xBF58476D1CE4E5B9
_C = np.uint64(0x94D049BB133111EB)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)
_S30, _S27, _S31 = np.uint64(30), np.uint64(27), np.uint64(31)


def _mix64(x: np.ndarray) -> np.ndarray:
    """:func:`repro.traffic.rng.mix64` over a uint64 array."""
    x = (x ^ (x >> _S30)) * _MIX_B
    x = (x ^ (x >> _S27)) * _MIX_C
    return x ^ (x >> _S31)


def _vdraw_u64(seeds: np.ndarray, stream: int, k: np.ndarray) -> np.ndarray:
    """:func:`repro.traffic.rng.draw_u64` with array ``seeds``/``k``.

    The stream term is folded in Python ints (a 0-d numpy multiply would
    emit overflow warnings; array ops wrap silently like the scalar
    ``& _M64`` does)."""
    base = np.uint64((stream * _B_INT + 1) & _M64)
    return _mix64(seeds * _A + k.astype(np.uint64) * _C + base)


def _vdraw_float(seeds: np.ndarray, stream: int, k: np.ndarray) -> np.ndarray:
    """[0, 1) floats, bit-identical to :func:`repro.traffic.rng.draw_float`
    (uint64 -> float64 rounding and the 2**-64 scale are both exact)."""
    return _vdraw_u64(seeds, stream, k) / np.float64(1 << 64)


def _vdraw_int(seeds: np.ndarray, stream: int, k: np.ndarray, n: int) -> np.ndarray:
    """[0, n) ints, bit-identical to :func:`repro.traffic.rng.draw_int`."""
    return (_vdraw_u64(seeds, stream, k) % np.uint64(n)).astype(np.int64)


class VecSpecModel:
    """:class:`~repro.traffic.model.SpecModel` over ``n_worlds`` lanes.

    Same spec, same per-port draw streams and counters -- but the
    counters are ``[n_worlds, ports]`` arrays and a poll is one masked
    column operation.  Lane ``w`` consumes exactly the draws the scalar
    model seeded ``seeds[w]`` consumes (the draw-count bookkeeping in
    each ``_*_col`` helper mirrors the scalar branch structure, including
    the quirks: hotspot consumes 1 draw when hot else 2, bursty's burst
    draw is short-circuited away while no train is active, on/off
    duration draws happen only at state flips).

    The one scalar escape hatch: on/off *durations* go through
    ``math.log`` / ``**`` in the scalar model, and numpy's
    transcendentals are not guaranteed ULP-identical to libm's -- so the
    rare worlds needing a new duration this poll (one draw per on/off
    period) take a per-element Python loop through the exact scalar
    functions.
    """

    def __init__(self, spec: TrafficSpec, n: int, seeds: Sequence[int]):
        if spec.kind != "synthetic":
            raise ValueError("VecSpecModel realizes synthetic specs only")
        if n < 2:
            raise ValueError("need at least two ports")
        pat = spec.pattern
        if pat.kind in ("hotspot",) and pat.hot_port >= n:
            raise ValueError(
                f"hot_port {pat.hot_port} out of range for {n} ports"
            )
        self.spec = spec
        self.n = n
        self.seeds = np.array([spec_seed(s) for s in seeds], dtype=np.uint64)
        self.w = len(seeds)
        self.gate = spec.arrivals.kind != "saturated"
        w = self.w
        # Per-(world, port) counters -- the entire mutable state, int64
        # (cast to uint64 at draw time; they never approach 2**63).
        self._pat = np.zeros((w, n), dtype=np.int64)
        self._size = np.zeros((w, n), dtype=np.int64)
        self._arr = np.zeros((w, n), dtype=np.int64)
        self._dur = np.zeros((w, n), dtype=np.int64)
        self._offered = np.zeros((w, n), dtype=np.int64)
        self._cur = np.full((w, n), -1, dtype=np.int64)  #: bursty train (-1 = None)
        self._on = np.zeros((w, n), dtype=bool)
        self._left = np.zeros((w, n), dtype=np.int64)
        # Whole-grid draw machinery: precompute the seed term per world
        # and the (stream * _B + 1) term per (port, sub-stream), so one
        # [w, n] grid draw is a handful of array ops instead of n column
        # loops (the step loop's cost is numpy call count, not data).
        self._seed_term = (self.seeds * _A)[:, None]  # [w, 1]
        self._cols = np.arange(n, dtype=np.int64)[None, :]  # [1, n]

        def bases(sub: int) -> np.ndarray:
            return np.array(
                [((p * _STRIDE + sub) * _B_INT + 1) & _M64 for p in range(n)],
                dtype=np.uint64,
            )[None, :]

        self._base_pat = bases(_S_PATTERN)
        self._base_size = bases(_S_SIZE)
        self._base_arr = bases(_S_ARRIVAL)
        self._base_burst = bases(_S_BURST)

    # -- whole-grid draws ----------------------------------------------
    def _grid_u64(self, base: np.ndarray, k: np.ndarray) -> np.ndarray:
        """draw_u64 over the full (world, port) grid: ``k`` is the per-
        lane counter, ``base`` one of the per-column stream terms."""
        return _mix64(self._seed_term + k.astype(np.uint64) * _C + base)

    def _grid_float(self, base: np.ndarray, k: np.ndarray) -> np.ndarray:
        return self._grid_u64(base, k) / np.float64(1 << 64)

    def _grid_int(self, base: np.ndarray, k: np.ndarray, n: int) -> np.ndarray:
        return (self._grid_u64(base, k) % np.uint64(n)).astype(np.int64)

    # -- arrival gate ---------------------------------------------------
    def _offers_grid(self, m: np.ndarray) -> np.ndarray:
        """Arrival gate over the grid under poll mask ``m``; returned
        lanes are meaningful only where ``m`` (counters advance exactly
        on the lanes the scalar model would consume draws for)."""
        a = self.spec.arrivals
        if not self.gate:
            return m
        if a.kind == "bernoulli":
            u = self._grid_float(self._base_arr, self._arr)
            self._arr += m
            return u < a.p
        # onoff: flip state + draw a fresh duration where exhausted.
        # Durations go through math.log/** in the scalar model, whose
        # libm results numpy does not promise to match ULP-for-ULP, so
        # the (rare: once per on/off period) lanes needing a new duration
        # run the exact scalar functions.
        need = m & (self._left == 0)
        if need.any():
            for w, p in zip(*(idx.tolist() for idx in np.nonzero(need))):
                on = not self._on[w, p]
                self._on[w, p] = on
                mean = a.mean_on if on else a.mean_off
                k = int(self._dur[w, p])
                self._dur[w, p] = k + 1
                u = draw_float(int(self.seeds[w]), p * _STRIDE + _S_DURATION, k)
                self._left[w, p] = (
                    pareto_length(u, mean, a.alpha)
                    if a.heavy
                    else geometric_length(u, mean)
                )
        self._left -= m
        on = self._on
        if a.p >= 1.0:
            return on
        u = self._grid_float(self._base_arr, self._arr)
        self._arr += m & on
        return on & (u < a.p)

    # -- destinations ---------------------------------------------------
    def _uniform_dest_grid(self, k: np.ndarray, exclude_self: bool) -> np.ndarray:
        if not exclude_self:
            return self._grid_int(self._base_pat, k, self.n)
        d = self._grid_int(self._base_pat, k, self.n - 1)
        return d + (d >= self._cols)

    def _dest_grid(self, mo: np.ndarray) -> np.ndarray:
        pat = self.spec.pattern
        if pat.kind == "permutation":
            return np.broadcast_to((self._cols + pat.shift) % self.n, mo.shape)
        if pat.kind == "uniform":
            d = self._uniform_dest_grid(self._pat, pat.exclude_self)
            self._pat += mo
            return d
        if pat.kind == "hotspot":
            if pat.drift_packets:
                hot = (pat.hot_port + self._offered // pat.drift_packets) % self.n
            else:
                hot = pat.hot_port
            is_hot = self._grid_float(self._base_pat, self._pat) < pat.p_hot
            spill = self._grid_int(self._base_pat, self._pat + 1, self.n)
            # Scalar consumption: 1 draw on the hot branch, 2 otherwise.
            self._pat += np.where(is_hot, 1, 2) * mo
            return np.where(is_hot, hot, spill)
        # bursty: the burst-continuation draw exists only while a train
        # is active (the scalar `cur is None or ...` short-circuit).
        has_train = self._cur >= 0
        u_b = self._grid_float(self._base_burst, self._pat)
        burst_drawn = mo & has_train
        trigger = mo & (~has_train | (u_b < 1.0 / pat.mean_burst))
        fresh = self._uniform_dest_grid(
            self._pat + burst_drawn, pat.exclude_self
        )
        self._pat += burst_drawn
        self._pat += trigger
        self._cur = np.where(trigger, fresh, self._cur)
        return self._cur

    # -- packet sizes ---------------------------------------------------
    def _size_grid(self, mo: np.ndarray) -> np.ndarray:
        s = self.spec.sizes
        if s.kind == "fixed":
            return np.broadcast_to(np.int64(s.bytes), mo.shape)
        if s.kind == "imix":
            u = self._grid_float(self._base_size, self._size) * float(
                sum(s.IMIX_WEIGHTS)
            )
            self._size += mo
            w0, w1 = s.IMIX_WEIGHTS[0], s.IMIX_WEIGHTS[0] + s.IMIX_WEIGHTS[1]
            return np.where(
                u < w0,
                s.IMIX_SIZES[0],
                np.where(u < w1, s.IMIX_SIZES[1], s.IMIX_SIZES[2]),
            ).astype(np.int64)
        if s.kind == "uniform":
            span = s.hi // 4 - s.lo // 4 + 1
            d = self._grid_int(self._base_size, self._size, span)
            self._size += mo
            return (s.lo // 4 + d) * 4
        u = self._grid_float(self._base_size, self._size)
        self._size += mo
        return np.where(u < s.p_small, s.small, s.large).astype(np.int64)

    # -- the vector poll -----------------------------------------------
    def poll(self, need: np.ndarray):
        """One ``next_packet`` per (world, port) where ``need``.

        Returns ``(offered, dest, nbytes)``: a bool ``[w, n]`` mask of
        lanes that produced a packet this poll, with destination and
        size valid (and possibly read-only views) where the mask holds.
        """
        # Saturated arrivals offer on every poll -- skip the gate (and
        # the [w, n] mask op) entirely.
        mo = need if not self.gate else need & self._offers_grid(need)
        if not mo.any():
            z = np.zeros((self.w, self.n), dtype=np.int64)
            return mo, z, z
        dest = self._dest_grid(mo)
        nbytes = self._size_grid(mo)
        self._offered += mo
        return mo, dest, nbytes


# ---------------------------------------------------------------------------
# Vectorized CounterUniformSource (the shard-protocol uniform workload).
# ---------------------------------------------------------------------------
def _crc32_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
        table[i] = c
    return table


_CRC_TABLE = _crc32_table()
_U8, _U24, _FF = np.uint32(8), np.uint32(24), np.uint32(0xFF)


class VecCounterUniform:
    """:class:`~repro.core.fabricsim.CounterUniformSource` over world lanes.

    The scalar source hashes ``zlib.crc32(pack("<III", seed, port, k))``
    per draw.  Here the CRC over the constant 8-byte ``(seed, port)``
    prefix is precomputed per (world, port); a draw is then four
    table-driven byte steps over ``k``'s little-endian bytes -- all
    vectorized -- with the same masked rejection loop for
    ``exclude_self``.  Draw streams are bit-identical per lane
    (property-tested against ``zlib.crc32`` in the test suite).
    """

    deterministic = False

    def __init__(self, words: int, seeds: Sequence[int], n: int = 4,
                 exclude_self: bool = True):
        if exclude_self and n < 2:
            raise ValueError("exclude_self needs at least 2 ports")
        self.words = words
        self.n = n
        self.w = len(seeds)
        self.exclude_self = exclude_self
        self.seeds = [counter_seed(s) for s in seeds]
        # CRC state after the (seed, port) prefix, before final xor-out.
        prefix = np.zeros((self.w, n), dtype=np.uint32)
        for wi, seed in enumerate(self.seeds):
            for p in range(n):
                c = 0xFFFFFFFF
                for b in seed.to_bytes(4, "little") + p.to_bytes(4, "little"):
                    c = (c >> 8) ^ int(_CRC_TABLE[(c ^ b) & 0xFF])
                prefix[wi, p] = c
        self._prefix = prefix
        self._draws = np.zeros((self.w, n), dtype=np.int64)

    def _crc_finish(self, p: int, k: np.ndarray) -> np.ndarray:
        """Fold ``k``'s 4 little-endian bytes into the prefix CRC."""
        crc = self._prefix[:, p].copy()
        ku = k.astype(np.uint32)
        for shift in (np.uint32(0), _U8, np.uint32(16), _U24):
            b = (ku >> shift) & _FF
            crc = (crc >> _U8) ^ _CRC_TABLE[(crc ^ b) & _FF]
        return crc ^ np.uint32(0xFFFFFFFF)

    def draw_col(self, p: int, m: np.ndarray) -> np.ndarray:
        """One destination draw per world where ``m`` (with rejection)."""
        k = self._draws[:, p].copy()
        dest = np.zeros(self.w, dtype=np.int64)
        active = m.copy()
        while active.any():
            d = (self._crc_finish(p, k) % np.uint32(self.n)).astype(np.int64)
            k += active.astype(np.int64)
            settled = active & (
                np.ones(self.w, dtype=bool) if not self.exclude_self else d != p
            )
            dest[settled] = d[settled]
            active &= ~settled
        self._draws[m, p] = k[m]
        return dest


# ---------------------------------------------------------------------------
# The fallback matrix.
# ---------------------------------------------------------------------------
def supports(config: SimConfig, workload: WorkloadSpec) -> Optional[str]:
    """None when the vectorized engine can run this cell bit-exactly;
    otherwise the human-readable reason it must fall back to scalar runs
    (the DESIGN.md section-12 fallback matrix, in code)."""
    if config.fidelity != "fabric":
        return f"fidelity {config.fidelity!r} (the vector engine is fabric-only)"
    from repro.faults.plan import resolve_plan

    if resolve_plan(workload.fault_plan) is not None:
        return "fault plan armed (quantum-granular fault state is per-world)"
    from repro.telemetry import runtime as _telemetry

    if _telemetry.RECORDER is not None:
        return "telemetry recording active (events are per-scalar-run)"
    spec = resolve_traffic(workload.effective_traffic())
    if spec is None or spec.kind != "synthetic":
        return "replay traces poll a shared cursor (synthetic specs only)"
    costs = config.cost_model()
    max_bytes = costs.max_quantum_words * costs.word_bytes
    if spec.sizes.max_bytes() > max_bytes:
        return (
            f"multi-fragment packets (sizes reach {spec.sizes.max_bytes()}B "
            f"> {max_bytes}B per quantum); queue lanes hold one fragment"
        )
    bits = config.networks * 2 * config.ports
    if bits > 64:
        return f"link bitmask needs {bits} bits; uint64 lanes top out at 64"
    return None


# ---------------------------------------------------------------------------
# The scalar reference (and fallback) path.
# ---------------------------------------------------------------------------
class _ScalarWorldEngine(FabricEngine):
    """The per-world scalar reference: the stock fabric engine, with
    counter-based sources forced so draws match the vector lanes."""

    force_counter = True


def _effective_warmup(workload: WorkloadSpec) -> int:
    return (
        workload.warmup_quanta
        if workload.warmup_quanta is not None
        else max(50, workload.quanta // 20)
    )


def scalar_world_stats(
    config: SimConfig, workload: WorkloadSpec, world: int = 0
) -> FabricStats:
    """Run one world through the scalar fabric loop; full counters.

    This is the bit-identity reference: same simulator assembly as
    :class:`~repro.engines.FabricEngine`, with ``force_counter=True``
    sources and the world's derived seed.
    """
    from repro.core.allocator import Allocator
    from repro.core.fabricsim import FabricSimulator
    from repro.traffic.build import fabric_source

    cfg = config.replace(seed=world_seed(config.seed, world))
    costs = cfg.cost_model()
    ring = RingGeometry(cfg.ports)
    allocator = Allocator(ring, networks=cfg.networks, cache_size=cfg.alloc_cache)
    sim = FabricSimulator(
        ring=ring,
        allocator=allocator,
        pipelined=cfg.pipelined,
        costs=costs,
        fast_forward=cfg.fast_forward,
    )
    sim.install_faults(workload.fault_plan)
    source = fabric_source(workload.effective_traffic(), cfg, force_counter=True)
    return sim.run(
        source, quanta=workload.quanta, warmup_quanta=_effective_warmup(workload)
    )


def run_scalar_world(
    config: SimConfig, workload: WorkloadSpec, world: int = 0
) -> RunResult:
    """One world as a full :class:`~repro.engines.RunResult` (the shape
    sweep rows carry)."""
    cfg = config.replace(seed=world_seed(config.seed, world))
    return _ScalarWorldEngine(cfg).run(workload)


# ---------------------------------------------------------------------------
# The vectorized engine.
# ---------------------------------------------------------------------------
class _VecWorlds:
    """State and step loop for ``n_worlds`` lock-step fabric runs."""

    def __init__(self, config: SimConfig, workload: WorkloadSpec, n_worlds: int):
        spec = resolve_traffic(workload.effective_traffic())
        self.config = config
        self.costs = costs = config.cost_model()
        self.n = n = config.ports
        self.w = n_worlds
        self.seeds = [world_seed(config.seed, w) for w in range(n_worlds)]
        self.model = VecSpecModel(spec, n, self.seeds)
        self.compiled = CompiledAllocator(RingGeometry(n), config.networks)
        self.compiled.lookup_tensors()  # build (and range-check) eagerly
        timing = (
            DEFAULT_TIMING
            if costs.quantum_ctl_overhead == DEFAULT_TIMING.control_total
            else PhaseTiming.for_model(costs)
        )
        self.ctl = quantum_cycles(0, 0, timing, config.pipelined, costs=costs)
        self.idle_cycles = idle_quantum_cycles(timing)
        self.word_bytes = costs.word_bytes
        self.token = 0  # scalar: every world rotates in lock-step
        w = n_worlds
        # Queue lanes: one head-of-line fragment per (world, port).
        self.q_valid = np.zeros((w, n), dtype=bool)
        self.q_dest = np.zeros((w, n), dtype=np.int64)
        self.q_words = np.zeros((w, n), dtype=np.int64)
        # Per-world statistics (FabricStats counters as arrays).
        self.quanta = np.zeros(w, dtype=np.int64)
        self.idle_quanta = np.zeros(w, dtype=np.int64)
        self.cycles = np.zeros(w, dtype=np.int64)
        self.delivered_words = np.zeros(w, dtype=np.int64)
        self.delivered_packets = np.zeros(w, dtype=np.int64)
        self.blocked_events = np.zeros(w, dtype=np.int64)
        self.per_port_words = np.zeros((w, n), dtype=np.int64)
        self.per_port_packets = np.zeros((w, n), dtype=np.int64)
        self.grant_histogram = np.zeros((w, n + 1), dtype=np.int64)
        self._rows = np.arange(w)

    def _step(self, measure: bool) -> None:
        # Refill: one source poll per empty (world, port) lane -- the
        # scalar loop's per-quantum _refill pass.
        need = ~self.q_valid
        if need.any():
            got, dest, nbytes = self.model.poll(need)
            if got.any():
                words = (nbytes + self.word_bytes - 1) // self.word_bytes
                self.q_valid |= got
                np.copyto(self.q_dest, dest, where=got)
                np.copyto(self.q_words, words, where=got)
        dests = np.where(self.q_valid, self.q_dest, -1)
        busy = self.q_valid.any(axis=1)
        granted, hops = self.compiled.batch_grants(dests, self.token)
        body = ((self.q_words + hops) * granted).max(axis=1)
        if measure:
            ng = granted.sum(axis=1)
            self.quanta += 1
            self.idle_quanta += ~busy
            self.cycles += np.where(busy, self.ctl + body, self.idle_cycles)
            self.blocked_events += self.q_valid.sum(axis=1) - ng
            np.add.at(
                self.grant_histogram, (self._rows[busy], ng[busy]), 1
            )
            gw = self.q_words * granted
            self.delivered_words += gw.sum(axis=1)
            self.per_port_words += gw
            self.delivered_packets += ng
            self.per_port_packets += granted
        self.q_valid &= ~granted
        self.token = (self.token + 1) % self.n

    def run(self, quanta: int, warmup_quanta: int) -> None:
        for i in range(warmup_quanta + quanta):
            self._step(measure=i >= warmup_quanta)

    def stats(self) -> List[FabricStats]:
        """Per-world :class:`FabricStats` (so gbps/mpps float semantics
        match the scalar engine exactly)."""
        out = []
        for w in range(self.w):
            st = FabricStats(num_ports=self.n, costs=self.costs)
            st.quanta = int(self.quanta[w])
            st.idle_quanta = int(self.idle_quanta[w])
            st.cycles = int(self.cycles[w])
            st.delivered_words = int(self.delivered_words[w])
            st.delivered_packets = int(self.delivered_packets[w])
            st.blocked_events = int(self.blocked_events[w])
            st.per_port_words = [int(v) for v in self.per_port_words[w]]
            st.per_port_packets = [int(v) for v in self.per_port_packets[w]]
            st.grant_histogram = [int(v) for v in self.grant_histogram[w]]
            out.append(st)
        return out


# ---------------------------------------------------------------------------
# Results: per-world stats reduced to statistical envelopes.
# ---------------------------------------------------------------------------
def envelope(values: Sequence[float]) -> Dict[str, float]:
    """mean / stddev / 95% CI half-width / percentiles over world values.

    ``ci95`` is the normal-approximation half-width ``1.96 * s / sqrt(K)``
    (sample stddev, ddof=1); 0.0 for a single world."""
    arr = np.asarray(values, dtype=np.float64)
    k = len(arr)
    std = float(arr.std(ddof=1)) if k > 1 else 0.0
    return {
        "n": k,
        "mean": float(arr.mean()),
        "std": std,
        "ci95": 1.96 * std / math.sqrt(k) if k > 1 else 0.0,
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


@dataclass
class ManyWorldsResult:
    """K independent seeds' worth of fabric statistics, plus envelopes."""

    config: SimConfig
    workload: WorkloadSpec
    n_worlds: int
    vectorized: bool
    fallback_reason: Optional[str]
    elapsed_s: float
    seeds: List[int]
    #: Per-world measurements: :class:`FabricStats` on the vectorized /
    #: fabric-scalar paths, full :class:`~repro.engines.RunResult` on the
    #: generic-engine fallback -- both expose the envelope metrics.
    stats: List[Any] = field(default_factory=list)

    def metric(self, name: str) -> np.ndarray:
        """Per-world values of a :class:`FabricStats` field/property."""
        return np.array([getattr(s, name) for s in self.stats], dtype=np.float64)

    def envelope(self, name: str) -> Dict[str, float]:
        return envelope(self.metric(name))

    def envelopes(
        self, metrics: Sequence[str] = ENVELOPE_METRICS
    ) -> Dict[str, Dict[str, float]]:
        return {m: self.envelope(m) for m in metrics}

    @property
    def world0(self) -> FabricStats:
        return self.stats[0]

    def world_result(self, w: int = 0) -> RunResult:
        """World ``w`` as the :class:`~repro.engines.RunResult` schema
        sweep rows carry (so ``--worlds`` rows keep a ``result`` entry
        shaped exactly like single-run rows)."""
        st = self.stats[w]
        if isinstance(st, RunResult):
            return st
        return RunResult(
            fidelity="fabric",
            cycles=st.cycles,
            delivered_packets=st.delivered_packets,
            delivered_words=st.delivered_words,
            gbps=st.gbps,
            mpps=st.mpps,
            per_port_packets=list(st.per_port_packets),
            latency={},
            config=self.config.replace(seed=self.seeds[w]),
            workload=self.workload,
            extra={
                "quanta": st.quanta,
                "idle_quanta": st.idle_quanta,
                "blocked_events": st.blocked_events,
                "mean_grants_per_quantum": st.mean_grants_per_quantum,
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESULT_SCHEMA,
            "n_worlds": self.n_worlds,
            "vectorized": self.vectorized,
            "fallback_reason": self.fallback_reason,
            "elapsed_s": self.elapsed_s,
            "base_seed": self.config.seed,
            "envelopes": self.envelopes(),
            "worlds": [
                {
                    "seed": seed,
                    "gbps": st.gbps,
                    "mpps": st.mpps,
                    "cycles": st.cycles,
                    "delivered_packets": st.delivered_packets,
                    "delivered_words": st.delivered_words,
                }
                for seed, st in zip(self.seeds, self.stats)
            ],
        }


def _world_under_telemetry(config: SimConfig, world: int, run_fn):
    """Run one scalar world; with an outer recorder active, record it
    into a fresh world-local recorder and fold the state back in tagged
    ``worker=world`` -- K worlds' telemetry merges exactly like K
    distributed workers' (the many-worlds half of the distributed
    telemetry plane)."""
    from repro.telemetry import runtime as _telemetry

    outer = _telemetry.RECORDER
    if outer is None:
        return run_fn()
    with _telemetry.capture(**outer.config()) as tel:
        if outer.journeys.port_classes:
            tel.journeys.set_port_classes(outer.journeys.port_classes)
        result = run_fn()
    outer.merge_state(
        tel.to_state(
            worker=world,
            meta={"world": world, "seed": world_seed(config.seed, world)},
        )
    )
    return result


def run_worlds(
    config: SimConfig,
    workload: WorkloadSpec,
    n_worlds: int,
    force_scalar: bool = False,
) -> ManyWorldsResult:
    """Run ``n_worlds`` independent seeds of one (config, workload) cell.

    Vectorized when :func:`supports` allows; otherwise (or with
    ``force_scalar``) falls back -- loudly, via a ``UserWarning`` naming
    the reason -- to ``n_worlds`` scalar runs with the same derived
    seeds, so callers always get the same :class:`ManyWorldsResult`
    shape and the same world seeds either way.  An active telemetry
    recorder is one such reason (the uint lanes have no event stream);
    each fallback world then records into a world-local recorder whose
    state folds back into the active one tagged ``worker=world``.
    """
    if n_worlds < 1:
        raise ValueError("need at least one world")
    reason = "forced scalar" if force_scalar else supports(config, workload)
    seeds = [world_seed(config.seed, w) for w in range(n_worlds)]
    start = time.perf_counter()
    if reason is None:
        worlds = _VecWorlds(config, workload, n_worlds)
        worlds.run(workload.quanta, _effective_warmup(workload))
        stats = worlds.stats()
    else:
        if not force_scalar:
            warnings.warn(
                f"many-worlds engine cannot vectorize this cell ({reason}); "
                f"falling back to {n_worlds} scalar runs",
                stacklevel=2,
            )
        if config.fidelity == "fabric":
            stats = [
                _world_under_telemetry(
                    config, w, lambda: scalar_world_stats(config, workload, w)
                )
                for w in range(n_worlds)
            ]
        else:
            # Non-fabric cells run each world through the cell's actual
            # engine (router/wordlevel/... dispatch), not the fabric loop.
            from repro.engines import run_config

            stats = [
                _world_under_telemetry(
                    config, w,
                    lambda: run_config(config.replace(seed=s), workload),
                )
                for w, s in enumerate(seeds)
            ]
    elapsed = time.perf_counter() - start
    return ManyWorldsResult(
        config=config,
        workload=workload,
        n_worlds=n_worlds,
        vectorized=reason is None,
        fallback_reason=reason,
        elapsed_s=elapsed,
        seeds=seeds,
        stats=stats,
    )
