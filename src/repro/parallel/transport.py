"""Pluggable boundary-flit transports for the space-partitioned fabric.

:mod:`repro.parallel.space_shard`'s token-window protocol only ever
touches its peers through three per-peer callables -- ``recv()`` (block
until the peer's next window batch), ``send(batch)`` (ship one), and
``poll()`` (is a batch already waiting?) -- so *how* the batches move is
a free choice.  This module provides that choice behind one interface:

``pipe`` (the compatibility default)
    One simplex :func:`multiprocessing.Pipe` per ordered partition
    pair, exactly the PR 8 wiring, now with explicit pickle framing so
    the bytes crossing each pipe are counted.

``shm``
    A single-producer/single-consumer ring buffer in
    :mod:`multiprocessing.shared_memory` per ordered pair.  Each window
    batch is packed into fixed-layout int64 records -- one row
    ``(cid, send_quantum, dest, words, flags, tag)`` per boundary flit,
    :data:`FLIT_FIELDS` fields of :data:`FLIT_ITEMSIZE` bytes -- so the
    hot path never pickles: senders flatten the batch and
    ``struct.pack_into`` it straight into the mapped ring, receivers
    ``struct.unpack_from`` it back out; both sides are one C call plus
    one comprehension, which undercuts pickle-over-pipe for every
    batch size the fabric actually ships (empty and small batches by
    3-5x).  Batch framing is a second ring of batch lengths, so empty
    windows (length 0) still frame rounds.  Writers publish the length
    first and stream flits behind it in chunks, which makes ring
    capacity a throughput knob rather than a correctness bound.

``socket``
    The same message protocol over TCP via
    :class:`multiprocessing.connection.Listener`/``Client``: the
    coordinator listens, ``P`` workers connect (either auto-spawned
    local processes, or ``python -m repro serve HOST:PORT`` processes
    on other machines), and boundary batches are relayed hub-and-spoke
    through the coordinator over each worker's single command
    connection.  ``"socket"`` spawns loopback workers;
    ``"socket:HOST:PORT"`` listens there and waits for external
    ``repro serve`` workers instead.

Every backend counts the bytes it moves (pickled frame sizes for
pipe/socket, exact record sizes for shm); the counters ride back with
each worker's result and surface as ``bytes_moved`` in
``RunResult.extra["space_shard"]`` and the telemetry summary.

The SPSC rings synchronize through monotonic int64 counters in shared
memory with sleep-escalating spin waits (``sched_yield`` first, then
short sleeps).  Plain int64 stores are not portable memory barriers,
but each counter has exactly one writer and CPython bytecode boundaries
keep the store order on the strongly-ordered platforms CI runs on --
the same pragmatic contract firesim-style token queues make.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from collections import deque
from itertools import chain
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Transport names accepted by :func:`create` (``"socket:HOST:PORT"``
#: selects the socket backend in listen-for-external-workers mode).
TRANSPORTS = ("pipe", "shm", "socket")

#: int64 fields per boundary-flit record in the shm layout:
#: (cid, send_quantum, dest, words, flags, tag); ``flags`` bit 0 is
#: ``is_last``, bit 1 marks a journey tag riding in ``tag``.
FLIT_FIELDS = 6
FLIT_ITEMSIZE = 8 * FLIT_FIELDS

_PICKLE = pickle.HIGHEST_PROTOCOL


def transport_name(transport: str) -> str:
    """The backend family of a transport spec string."""
    base = transport.split(":", 1)[0]
    if base not in TRANSPORTS:
        raise ValueError(
            f"unknown space transport {transport!r}; expected one of "
            f"{TRANSPORTS} (or 'socket:HOST:PORT')"
        )
    return base


# ---------------------------------------------------------------------------
# The worker-side view: per-peer callables plus byte counters.
# ---------------------------------------------------------------------------
class LinkPorts:
    """What a worker sees of its transport once opened: per-peer
    ``recv``/``send``/``poll`` callables and the bytes moved so far."""

    def __init__(
        self,
        recv_fns: Dict[int, Callable[[], Any]],
        send_fns: Dict[int, Callable[[Any], None]],
        poll_fns: Dict[int, Callable[[], bool]],
        bytes_box: List[int],
        close_fn: Optional[Callable[[], None]] = None,
    ):
        self.recv_fns = recv_fns
        self.send_fns = send_fns
        self.poll_fns = poll_fns
        self._bytes = bytes_box  # [sent, received]
        self._close = close_fn

    def bytes_sent(self) -> int:
        return self._bytes[0]

    def bytes_received(self) -> int:
        return self._bytes[1]

    def reset_counters(self) -> None:
        self._bytes[0] = self._bytes[1] = 0

    def close(self) -> None:
        if self._close is not None:
            self._close()


class PipeWorkerLink:
    """Per-worker bundle of simplex pipe connections (picklable through
    ``multiprocessing.Process`` args)."""

    def __init__(self, recv_conns: Dict[int, Any], send_conns: Dict[int, Any]):
        self.recv_conns = recv_conns
        self.send_conns = send_conns

    def open(self) -> LinkPorts:
        counters = [0, 0]

        def make_send(conn):
            def _send(batch):
                payload = pickle.dumps(batch, _PICKLE)
                counters[0] += len(payload)
                conn.send_bytes(payload)

            return _send

        def make_recv(conn):
            def _recv():
                payload = conn.recv_bytes()
                counters[1] += len(payload)
                return pickle.loads(payload)

            return _recv

        def make_poll(conn):
            return lambda: conn.poll(0)

        return LinkPorts(
            recv_fns={p: make_recv(c) for p, c in self.recv_conns.items()},
            send_fns={p: make_send(c) for p, c in self.send_conns.items()},
            poll_fns={p: make_poll(c) for p, c in self.recv_conns.items()},
            bytes_box=counters,
        )


# ---------------------------------------------------------------------------
# Shared-memory flit rings.
# ---------------------------------------------------------------------------
def _spin(predicate, yields: int = 64, nap: float = 0.0002) -> None:
    """Wait for ``predicate()`` without holding the CPU hostage: yield
    the scheduler first (essential when workers oversubscribe cores),
    then escalate to short sleeps."""
    spins = 0
    while not predicate():
        spins += 1
        if spins < yields:
            if hasattr(os, "sched_yield"):
                os.sched_yield()
            else:  # pragma: no cover - non-posix fallback
                time.sleep(0)
        else:
            time.sleep(nap)


# Header slot indices (int64 each, one writer per slot).
_FLIT_WR, _FLIT_RD, _BATCH_WR, _BATCH_RD = range(4)
_HDR_BYTES = 8 * 4


class ShmRingHandle:
    """A picklable descriptor of one directed shm flit ring; workers
    (and the creating parent) attach with :meth:`attach`."""

    def __init__(self, name: str, flit_capacity: int, batch_capacity: int):
        self.name = name
        self.flit_capacity = flit_capacity
        self.batch_capacity = batch_capacity

    @property
    def nbytes(self) -> int:
        return (
            _HDR_BYTES
            + 8 * self.batch_capacity
            + FLIT_ITEMSIZE * self.flit_capacity
        )

    def attach(self) -> "ShmRing":
        return ShmRing(self)


class ShmRing:
    """One single-producer/single-consumer boundary-batch ring.

    Layout: 4 int64 header counters | ``batch_capacity`` int64 batch
    lengths | ``flit_capacity`` x :data:`FLIT_FIELDS` int64 flit
    records.  The producer owns ``flit_wr``/``batch_wr``, the consumer
    ``flit_rd``/``batch_rd``; all four only ever grow.  A batch's
    length is published before its flits, so batches larger than the
    flit ring stream through in chunks while the consumer drains.
    """

    def __init__(self, handle: ShmRingHandle):
        from multiprocessing import shared_memory

        self.handle = handle
        # Attaching re-registers the segment name with the resource
        # tracker the forked children share with the creating parent;
        # the tracker cache is a set, so that is a no-op and the
        # parent's close()-time unlink clears the single entry.
        self._shm = shared_memory.SharedMemory(name=handle.name)
        # One int64 view over the whole segment: cells [0:4] are the
        # header, [4:4+batch_capacity] the length ring; the flit ring
        # is addressed by byte offset for struct.pack_into.
        self._mv = self._shm.buf.cast("q")
        self._flit_byte_base = _HDR_BYTES + 8 * handle.batch_capacity

    # -- producer side --------------------------------------------------
    def send_batch(self, batch: List[Tuple[int, int, Any]]) -> int:
        """Pack ``batch`` into the ring; returns the bytes moved."""
        mv = self._mv
        bcap = self.handle.batch_capacity
        if mv[_BATCH_WR] - mv[_BATCH_RD] >= bcap:
            _spin(lambda: mv[_BATCH_WR] - mv[_BATCH_RD] < bcap)
        n = len(batch)
        mv[4 + mv[_BATCH_WR] % bcap] = n
        mv[_BATCH_WR] += 1
        if not n:
            return 8
        cap = self.handle.flit_capacity
        buf = self._shm.buf
        base = self._flit_byte_base
        # Fast path: untagged 3-field fragments flatten to exactly six
        # ints per flit (is_last lands in the flags slot as 0/1), and
        # when the batch fits the ring without wrapping the generator
        # streams straight into one pack_into.  A journey tag makes the
        # flattened count ragged -- pack_into rejects the argument
        # count before writing anything -- and routes the batch through
        # the generic chunked path below.
        wr = mv[_FLIT_WR]
        pos = wr % cap
        if cap - (wr - mv[_FLIT_RD]) >= n and cap - pos >= n:
            try:
                struct.pack_into(
                    "%dq" % (FLIT_FIELDS * n),
                    buf,
                    base + pos * FLIT_ITEMSIZE,
                    *chain.from_iterable(
                        (t[0], t[1], *t[2], 0) for t in batch
                    ),
                )
                mv[_FLIT_WR] = wr + n
                return 8 + n * FLIT_ITEMSIZE
            except struct.error:
                pass
        flat = list(
            chain.from_iterable((t[0], t[1], *t[2], 0) for t in batch)
        )
        if len(flat) != FLIT_FIELDS * n:
            flat = list(
                chain.from_iterable(
                    (
                        cid,
                        send_q,
                        frag[0],
                        frag[1],
                        (1 if frag[2] else 0) | (2 if len(frag) > 3 else 0),
                        frag[3] if len(frag) > 3 else 0,
                    )
                    for cid, send_q, frag in batch
                )
            )
        written = 0
        while written < n:
            if mv[_FLIT_WR] - mv[_FLIT_RD] >= cap:
                _spin(lambda: mv[_FLIT_WR] - mv[_FLIT_RD] < cap)
            wr = mv[_FLIT_WR]
            avail = cap - (wr - mv[_FLIT_RD])
            chunk = min(avail, n - written)
            pos = wr % cap
            first = min(chunk, cap - pos)
            lo = FLIT_FIELDS * written
            struct.pack_into(
                "%dq" % (FLIT_FIELDS * first),
                buf,
                base + pos * FLIT_ITEMSIZE,
                *flat[lo: lo + FLIT_FIELDS * first],
            )
            if chunk > first:
                struct.pack_into(
                    "%dq" % (FLIT_FIELDS * (chunk - first)),
                    buf,
                    base,
                    *flat[lo + FLIT_FIELDS * first: lo + FLIT_FIELDS * chunk],
                )
            mv[_FLIT_WR] = wr + chunk
            written += chunk
        return 8 + n * FLIT_ITEMSIZE

    # -- consumer side --------------------------------------------------
    def poll(self) -> bool:
        mv = self._mv
        return mv[_BATCH_WR] > mv[_BATCH_RD]

    def recv_batch(self) -> List[Tuple[int, int, Any]]:
        mv = self._mv
        if mv[_BATCH_WR] <= mv[_BATCH_RD]:
            _spin(self.poll)
        bcap = self.handle.batch_capacity
        n = mv[4 + mv[_BATCH_RD] % bcap]
        mv[_BATCH_RD] += 1
        if not n:
            return []
        cap = self.handle.flit_capacity
        buf = self._shm.buf
        base = self._flit_byte_base
        vals: Tuple[int, ...] = ()
        read = 0
        while read < n:
            if mv[_FLIT_WR] <= mv[_FLIT_RD]:
                _spin(lambda: mv[_FLIT_WR] > mv[_FLIT_RD])
            rd = mv[_FLIT_RD]
            avail = mv[_FLIT_WR] - rd
            chunk = min(avail, n - read)
            pos = rd % cap
            first = min(chunk, cap - pos)
            part = struct.unpack_from(
                "%dq" % (FLIT_FIELDS * first), buf, base + pos * FLIT_ITEMSIZE
            )
            if chunk > first:
                part += struct.unpack_from(
                    "%dq" % (FLIT_FIELDS * (chunk - first)), buf, base
                )
            vals = part if read == 0 else vals + part
            mv[_FLIT_RD] = rd + chunk
            read += chunk
        rows = zip(*[iter(vals)] * FLIT_FIELDS)
        if max(vals[4::FLIT_FIELDS]) < 2:
            return [(c, q, (d, w, f == 1)) for c, q, d, w, f, _ in rows]
        return [
            (
                c,
                q,
                (d, w, (f & 1) == 1, t) if f & 2 else (d, w, f == 1),
            )
            for c, q, d, w, f, t in rows
        ]

    def close(self) -> None:
        # The cast view must be released before SharedMemory.close() or
        # the exported buffer keeps the mapping alive and warns.
        self._mv.release()
        self._mv = None
        self._shm.close()


class ShmWorkerLink:
    """Per-worker bundle of shm ring handles (picklable; attaches in
    :meth:`open`)."""

    def __init__(
        self,
        recv_rings: Dict[int, ShmRingHandle],
        send_rings: Dict[int, ShmRingHandle],
    ):
        self.recv_rings = recv_rings
        self.send_rings = send_rings

    def open(self) -> LinkPorts:
        counters = [0, 0]
        recv = {p: h.attach() for p, h in self.recv_rings.items()}
        send = {p: h.attach() for p, h in self.send_rings.items()}

        def make_send(ring):
            def _send(batch):
                counters[0] += ring.send_batch(batch)

            return _send

        def make_recv(ring):
            def _recv():
                batch = ring.recv_batch()
                counters[1] += 8 + len(batch) * FLIT_ITEMSIZE
                return batch

            return _recv

        def _close():
            for ring in list(recv.values()) + list(send.values()):
                ring.close()

        return LinkPorts(
            recv_fns={p: make_recv(r) for p, r in recv.items()},
            send_fns={p: make_send(r) for p, r in send.items()},
            poll_fns={p: r.poll for p, r in recv.items()},
            bytes_box=counters,
            close_fn=_close,
        )


# ---------------------------------------------------------------------------
# The socket hub: command + data share one connection per worker.
# ---------------------------------------------------------------------------
class HubEndpoint:
    """Worker-side view of the coordinator socket.

    The connection carries both command messages (``("run", ...)`` /
    ``None``) and relayed boundary data (``("data", peer, payload)``);
    :meth:`recv_cmd` and the per-peer ``recv`` callables demultiplex by
    buffering whatever the other is waiting behind.  Data payloads stay
    pickled through the relay, so the coordinator routes without
    deserializing the hot path.
    """

    def __init__(self, conn):
        self.conn = conn
        self.pending: Dict[int, deque] = {}
        self._counters = [0, 0]

    def recv_cmd(self):
        while True:
            msg = self.conn.recv()
            if isinstance(msg, tuple) and msg and msg[0] == "data":
                self.pending.setdefault(msg[1], deque()).append(msg[2])
                continue
            return msg

    def send(self, msg) -> None:
        self.conn.send(msg)

    def open(self) -> LinkPorts:
        counters = self._counters
        pending = self.pending
        conn = self.conn

        def _pump_until(peer):
            box = pending.setdefault(peer, deque())
            while not box:
                msg = conn.recv()
                if not (isinstance(msg, tuple) and msg and msg[0] == "data"):
                    raise RuntimeError(
                        f"unexpected {msg!r} on the hub connection while "
                        f"waiting for peer {peer}'s window batch"
                    )
                pending.setdefault(msg[1], deque()).append(msg[2])
            return box

        def make_recv(peer):
            def _recv():
                payload = _pump_until(peer).popleft()
                counters[1] += len(payload)
                return pickle.loads(payload)

            return _recv

        def make_send(peer):
            def _send(batch):
                payload = pickle.dumps(batch, _PICKLE)
                counters[0] += len(payload)
                conn.send(("data", peer, payload))

            return _send

        def make_poll(peer):
            def _poll():
                box = pending.setdefault(peer, deque())
                while not box and conn.poll(0):
                    msg = conn.recv()
                    if not (
                        isinstance(msg, tuple) and msg and msg[0] == "data"
                    ):
                        raise RuntimeError(
                            f"unexpected {msg!r} on the hub connection"
                        )
                    pending.setdefault(msg[1], deque()).append(msg[2])
                return bool(box)

            return _poll

        # The hub is a full mesh: any peer id may appear.
        class _PeerMap(dict):
            def __init__(self, factory):
                super().__init__()
                self._factory = factory

            def __missing__(self, peer):
                fn = self._factory(peer)
                self[peer] = fn
                return fn

        return LinkPorts(
            recv_fns=_PeerMap(make_recv),
            send_fns=_PeerMap(make_send),
            poll_fns=_PeerMap(make_poll),
            bytes_box=counters,
        )


#: Default authentication key for socket transports / ``repro serve``.
DEFAULT_AUTHKEY = b"repro-space"


# ---------------------------------------------------------------------------
# Coordinator-side backends.
# ---------------------------------------------------------------------------
class _ProcessBackend:
    """Shared skeleton for backends that fork local worker processes
    and talk to them over duplex command pipes."""

    name = "?"

    def __init__(self, partitions: int):
        self.partitions = partitions
        self._procs: List[Any] = []
        self.cmd_conns: List[Any] = []

    def _make_links(self, ctx) -> List[Any]:
        raise NotImplementedError

    def launch(self, worker_main) -> None:
        import multiprocessing as mp

        ctx = mp.get_context()
        links = self._make_links(ctx)
        cmd_children = []
        for _ in range(self.partitions):
            parent_end, child_end = ctx.Pipe(duplex=True)
            self.cmd_conns.append(parent_end)
            cmd_children.append(child_end)
        for p in range(self.partitions):
            proc = ctx.Process(
                target=worker_main,
                args=(p, cmd_children[p], links[p]),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        for end in cmd_children:
            end.close()
        self._release_parent_ends()

    def _release_parent_ends(self) -> None:
        pass

    def route_data(self, src: int, msg) -> None:
        raise RuntimeError(
            f"{self.name} transport does not relay data through the "
            "coordinator"
        )

    def close(self) -> None:
        for conn in self.cmd_conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.cmd_conns:
            conn.close()
        self.cmd_conns = []
        self._procs = []


class PipeBackend(_ProcessBackend):
    """The compatibility default: one simplex pipe per ordered pair."""

    name = "pipe"

    def _make_links(self, ctx) -> List[PipeWorkerLink]:
        P = self.partitions
        recv_ends: List[Dict[int, Any]] = [{} for _ in range(P)]
        send_ends: List[Dict[int, Any]] = [{} for _ in range(P)]
        self._data_ends: List[Any] = []
        for src in range(P):
            for dst in range(P):
                if src == dst:
                    continue
                r_end, s_end = ctx.Pipe(duplex=False)
                recv_ends[dst][src] = r_end
                send_ends[src][dst] = s_end
                self._data_ends.extend((r_end, s_end))
        return [PipeWorkerLink(recv_ends[p], send_ends[p]) for p in range(P)]

    def _release_parent_ends(self) -> None:
        # Workers inherited the pipe ends; dropping the parent's copies
        # lets worker exit close them cleanly.
        for end in self._data_ends:
            end.close()
        self._data_ends = []


class ShmBackend(_ProcessBackend):
    """Shared-memory flit rings: no pickling, no syscalls on the hot
    path.  The parent owns the segments and unlinks them at close."""

    name = "shm"

    def __init__(
        self,
        partitions: int,
        flit_capacity: int = 8192,
        batch_capacity: int = 1024,
    ):
        super().__init__(partitions)
        self.flit_capacity = flit_capacity
        self.batch_capacity = batch_capacity
        self._segments: List[Any] = []

    def _make_links(self, ctx) -> List[ShmWorkerLink]:
        from multiprocessing import shared_memory

        P = self.partitions
        recv_rings: List[Dict[int, ShmRingHandle]] = [{} for _ in range(P)]
        send_rings: List[Dict[int, ShmRingHandle]] = [{} for _ in range(P)]
        for src in range(P):
            for dst in range(P):
                if src == dst:
                    continue
                handle = ShmRingHandle(
                    name="", flit_capacity=self.flit_capacity,
                    batch_capacity=self.batch_capacity,
                )
                seg = shared_memory.SharedMemory(
                    create=True, size=handle.nbytes
                )
                seg.buf[:_HDR_BYTES] = b"\x00" * _HDR_BYTES
                handle.name = seg.name
                self._segments.append(seg)
                recv_rings[dst][src] = handle
                send_rings[src][dst] = handle
        return [ShmWorkerLink(recv_rings[p], send_rings[p]) for p in range(P)]

    def close(self) -> None:
        super().close()  # joins the workers first
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._segments = []


class SocketBackend:
    """TCP hub: the coordinator listens, workers connect, boundary
    batches relay through the coordinator connection of each worker.

    ``listen=None`` binds a loopback ephemeral port and spawns local
    worker processes (so the socket path is testable on one machine);
    ``listen="HOST:PORT"`` binds there and waits for ``partitions``
    external ``python -m repro serve`` workers instead.
    """

    name = "socket"

    def __init__(
        self,
        partitions: int,
        listen: Optional[str] = None,
        authkey: bytes = DEFAULT_AUTHKEY,
    ):
        self.partitions = partitions
        self.listen = listen
        self.authkey = authkey
        self.cmd_conns: List[Any] = []
        self._procs: List[Any] = []
        self._listener = None

    def launch(self, worker_main) -> None:
        from multiprocessing.connection import Listener

        if self.listen:
            host, _, port = self.listen.rpartition(":")
            address = (host or "0.0.0.0", int(port))
        else:
            address = ("127.0.0.1", 0)
        # backlog must cover every worker connecting at once: the
        # default of 1 drops simultaneous SYNs and leaves stragglers in
        # multi-second kernel retry backoff.
        self._listener = Listener(
            address, backlog=self.partitions, authkey=self.authkey
        )
        if not self.listen:
            import multiprocessing as mp

            ctx = mp.get_context()
            addr = self._listener.address
            for _ in range(self.partitions):
                proc = ctx.Process(
                    target=_serve_client,
                    args=(addr, self.authkey, worker_main),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        else:  # pragma: no cover - exercised by multi-machine runs
            print(
                f"space coordinator: waiting for {self.partitions} "
                f"`repro serve` worker(s) on {self._listener.address}",
                flush=True,
            )
        for part_id in range(self.partitions):
            conn = self._listener.accept()
            conn.send(("init", part_id, self.partitions))
            self.cmd_conns.append(conn)

    def route_data(self, src: int, msg) -> None:
        # msg = ("data", dst, payload): re-address with the sender and
        # forward; the payload bytes pass through un-unpickled.
        self.cmd_conns[msg[1]].send(("data", src, msg[2]))

    def close(self) -> None:
        for conn in self.cmd_conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self.cmd_conns:
            conn.close()
        self.cmd_conns = []
        self._procs = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None


def _serve_client(address, authkey: bytes, worker_main) -> int:
    """Connect to a coordinator and serve runs until it hangs up: the
    body of ``python -m repro serve`` and of the local socket workers.
    """
    from multiprocessing.connection import Client

    conn = Client(address, authkey=authkey)
    try:
        hub = HubEndpoint(conn)
        msg = hub.recv_cmd()
        if not (isinstance(msg, tuple) and msg and msg[0] == "init"):
            raise RuntimeError(f"expected coordinator init, got {msg!r}")
        _, part_id, _partitions = msg
        worker_main(part_id, hub, hub)
        return 0
    finally:
        conn.close()


def create(
    transport: str,
    partitions: int,
    authkey: bytes = DEFAULT_AUTHKEY,
):
    """Instantiate the backend for a transport spec string."""
    base = transport_name(transport)
    if base == "pipe":
        return PipeBackend(partitions)
    if base == "shm":
        return ShmBackend(partitions)
    listen = transport.split(":", 1)[1] if ":" in transport else None
    return SocketBackend(partitions, listen=listen, authkey=authkey)
