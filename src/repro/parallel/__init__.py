"""Within-run parallelism: split one simulation's timeline across
processes (:mod:`~repro.parallel.fabric_shard`, time axis), or the
topology itself across token-window worker processes
(:mod:`~repro.parallel.space_shard`, space axis) -- unlike
:mod:`repro.sweep`, which only parallelizes *across* independent
cells."""

from repro.parallel.fabric_shard import (  # noqa: F401
    ShardedRunInfo,
    ShardSpec,
    merge_stats,
    run_serial,
    run_sharded,
)
from repro.parallel.space_shard import (  # noqa: F401
    SpaceRunInfo,
    SpaceSpec,
    SpaceWorkerPool,
    run_space,
    run_space_inprocess,
    run_space_serial,
)

__all__ = [
    "ShardSpec",
    "ShardedRunInfo",
    "merge_stats",
    "run_serial",
    "run_sharded",
    "SpaceSpec",
    "SpaceRunInfo",
    "SpaceWorkerPool",
    "run_space",
    "run_space_inprocess",
    "run_space_serial",
]
