"""Within-run parallelism: split one simulation's timeline across
processes (:mod:`~repro.parallel.fabric_shard`, time axis), or the
topology itself across token-window worker processes
(:mod:`~repro.parallel.space_shard`, space axis) -- unlike
:mod:`repro.sweep`, which only parallelizes *across* independent
cells."""

from repro.parallel.fabric_shard import (  # noqa: F401
    ShardedRunInfo,
    ShardSpec,
    merge_stats,
    run_serial,
    run_sharded,
)
from repro.parallel.space_shard import (  # noqa: F401
    SpaceRunInfo,
    SpaceSpec,
    SpaceWorkerPool,
    auto_partitions,
    backend_counters,
    merge_backend_counters,
    run_space,
    run_space_inprocess,
    run_space_serial,
    serve_worker,
)
from repro.parallel.transport import (  # noqa: F401
    DEFAULT_AUTHKEY,
    TRANSPORTS,
    transport_name,
)

__all__ = [
    "ShardSpec",
    "ShardedRunInfo",
    "merge_stats",
    "run_serial",
    "run_sharded",
    "SpaceSpec",
    "SpaceRunInfo",
    "SpaceWorkerPool",
    "auto_partitions",
    "backend_counters",
    "merge_backend_counters",
    "run_space",
    "run_space_inprocess",
    "run_space_serial",
    "serve_worker",
    "DEFAULT_AUTHKEY",
    "TRANSPORTS",
    "transport_name",
]
