"""Within-run parallelism: split one simulation's timeline across
processes (unlike :mod:`repro.sweep`, which only parallelizes *across*
independent cells)."""

from repro.parallel.fabric_shard import (  # noqa: F401
    ShardedRunInfo,
    ShardSpec,
    merge_stats,
    run_serial,
    run_sharded,
)

__all__ = [
    "ShardSpec",
    "ShardedRunInfo",
    "merge_stats",
    "run_serial",
    "run_sharded",
]
