"""The Egress Processor (thesis section 4.2).

Collects a packet's crossbar fragments (they interleave with other
inputs' quanta), and once complete streams the reassembled packet to the
output line card at one word per cycle, recording delivery time into the
router's meters.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.sim.kernel import BUSY, Get, Timeout
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import EV_PKT_DEPART, EV_PKT_DROP


class EgressProcessor:
    """One port's egress pipeline stage."""

    def __init__(self, port: int, router):
        self.port = port
        self.router = router
        self._have: Dict[int, int] = {}  # packet id -> fragments received

    def run(self) -> Generator:
        router = self.router
        queue = router.egress_queues[self.port]
        stats = router.stats
        tel = _telemetry.RECORDER
        port_s = f"port{self.port}"
        while True:
            frag = yield Get(queue)
            pid = id(frag.packet)
            got = self._have.get(pid, 0) + 1
            if got < frag.count:
                self._have[pid] = got
                continue
            self._have.pop(pid, None)
            pkt = frag.packet
            if router.faults_on:
                # Egress-side verification: a header corrupted in flight
                # no longer matches its checksum (ingress re-patched it
                # after the TTL decrement, so healthy packets pass).
                if not pkt.checksum_ok():
                    stats.corrupt_drops += 1
                    router.resilience.record_drop("corrupt")
                    if tel is not None:
                        tel.journeys.drop(pid, "corrupt", router.sim.now)
                        tel.events.emit(
                            router.sim.now, EV_PKT_DROP, port_s, "corrupt"
                        )
                        tel.registry.count("drops.corrupt")
                    continue
            # Stream the complete packet to the line card: 1 word/cycle.
            yield Timeout(pkt.total_words, BUSY)
            pkt.departure_cycle = router.sim.now
            if tel is not None:
                tel.journeys.depart(pid, router.sim.now)
                tel.events.emit(
                    router.sim.now, EV_PKT_DEPART, port_s, pkt.total_length
                )
            stats.record_delivery(
                router.sim.now, self.port, pkt.total_length, pkt.input_port
            )
            if router.faults_on:
                router.resilience.delivered_words += pkt.total_words
            if pkt.arrival_cycle >= 0 and router.sim.now >= stats.warmup_cycles:
                stats.latency.record(pkt.arrival_cycle, pkt.departure_cycle)
