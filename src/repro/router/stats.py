"""Router-level measurement state shared by the pipeline processes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import CostModel
from repro.metrics.latency import LatencyStats
from repro.metrics.throughput import ThroughputMeter

@dataclass
class RouterStats:
    """Counters every stage of the router reports into.

    The throughput meter only counts deliveries after ``warmup_cycles``
    so pipeline fill does not bias the measured rate; drop counters
    record *why* packets died (bad checksum / TTL expiry at the ingress,
    full input queue at the line card -- the thesis assumes external
    dropping, section 4.4).
    """

    num_ports: int
    warmup_cycles: int = 0
    meter: ThroughputMeter = None  # type: ignore[assignment]
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_port_delivered: List[int] = field(default_factory=list)
    per_port_bits: List[int] = field(default_factory=list)
    per_input_bits: List[int] = field(default_factory=list)
    line_drops: int = 0
    checksum_drops: int = 0
    ttl_drops: int = 0
    #: Packets whose checksum broke in flight (fault injection), caught
    #: by the egress-side verification before hitting the line.
    corrupt_drops: int = 0
    #: Traffic lost to a dead port: fragments drained at the fabric,
    #: plus packets unroutable because every port died.
    dead_port_drops: int = 0
    quanta: int = 0
    idle_quanta: int = 0
    blocked_grants: int = 0
    grant_histogram: List[int] = field(default_factory=list)
    costs: CostModel = field(default_factory=CostModel.default)

    def __post_init__(self):
        if self.meter is None:
            self.meter = ThroughputMeter(warmup_cycles=self.warmup_cycles)
        if not self.per_port_delivered:
            self.per_port_delivered = [0] * self.num_ports
        if not self.per_port_bits:
            self.per_port_bits = [0] * self.num_ports
        if not self.per_input_bits:
            self.per_input_bits = [0] * self.num_ports
        if not self.grant_histogram:
            self.grant_histogram = [0] * (self.num_ports + 1)

    # ------------------------------------------------------------------
    def record_delivery(
        self, cycle: int, port: int, nbytes: int, input_port: int = -1
    ) -> None:
        self.meter.record(cycle, nbytes)
        if cycle >= self.warmup_cycles:
            self.per_port_delivered[port] += 1
            self.per_port_bits[port] += nbytes * 8
            if 0 <= input_port < self.num_ports:
                self.per_input_bits[input_port] += nbytes * 8

    def gbps(self, end_cycle: int) -> float:
        return self.meter.gbps(end_cycle, clock_hz=self.costs.clock_hz)

    def mpps(self, end_cycle: int) -> float:
        return self.meter.mpps(end_cycle, clock_hz=self.costs.clock_hz)

    @property
    def delivered_packets(self) -> int:
        return self.meter.packets

    def drop_taxonomy(self) -> dict:
        """Why packets died, by cause (the chaos harness's loss report)."""
        return {
            "line": self.line_drops,
            "checksum": self.checksum_drops,
            "ttl": self.ttl_drops,
            "corrupt": self.corrupt_drops,
            "dead_port": self.dead_port_drops,
        }

    @property
    def total_drops(self) -> int:
        return sum(self.drop_taxonomy().values())

    def port_share(self) -> List[float]:
        """Egress-side bandwidth shares."""
        total = sum(self.per_port_bits)
        if total == 0:
            return [0.0] * self.num_ports
        return [b / total for b in self.per_port_bits]

    def input_share(self) -> List[float]:
        """Ingress-side bandwidth shares (what QoS token weights shift)."""
        total = sum(self.per_input_bits)
        if total == 0:
            return [0.0] * self.num_ports
        return [b / total for b in self.per_input_bits]

    # ------------------------------------------------------------------
    def register_views(self, registry, prefix: str = "router") -> None:
        """Expose these tallies as live gauges in a telemetry
        :class:`~repro.telemetry.registry.MetricsRegistry`.

        The registry holds callables reading this dataclass, so the
        public fields stay the single source of truth (and their values
        bit-identical) while every number gains a flat queryable name.
        """
        views = {
            f"{prefix}.delivered_packets": lambda: self.delivered_packets,
            f"{prefix}.quanta": lambda: self.quanta,
            f"{prefix}.idle_quanta": lambda: self.idle_quanta,
            f"{prefix}.blocked_grants": lambda: self.blocked_grants,
            f"{prefix}.drops.line": lambda: self.line_drops,
            f"{prefix}.drops.checksum": lambda: self.checksum_drops,
            f"{prefix}.drops.ttl": lambda: self.ttl_drops,
            f"{prefix}.drops.corrupt": lambda: self.corrupt_drops,
            f"{prefix}.drops.dead_port": lambda: self.dead_port_drops,
        }
        for p in range(self.num_ports):
            views[f"{prefix}.{p}.delivered"] = lambda p=p: self.per_port_delivered[p]
        for name, fn in views.items():
            registry.gauge(name, fn)
