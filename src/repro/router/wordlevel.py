"""Word-level router: every word crosses the real static network.

This model runs the full Rotating Crossbar protocol on the
:class:`~repro.raw.chip.RawChip`: ingress tile programs send two-word
headers through their crossbar tile's switch, the four Crossbar
Processors exchange headers around the ring (software-pipelined so the
all-or-nothing switch instructions cannot interlock), each tile
*independently* evaluates the allocation rule on identical information
(the distributed-scheduling property of chapter 6), grants flow back to
the ingresses over the reverse links, and the granted bodies stream
word-by-word through compile-time-shaped
:class:`~repro.raw.switchproc.RouteInstruction` windows whose offsets
are exactly the expansion numbers of section 6.2.

It is two orders of magnitude slower than the phase model, so it is used
where per-cycle truth matters: the Fig 7-3 per-tile utilization traces,
and the cross-validation tests that pin the phase model's quantum costs.
Restrictions: 4 ports (the prototype's layout), saturated sources,
packets of at most one quantum (every Fig 7-1 size qualifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.config import CostModel
from repro.core.allocator import Allocation, Allocator
from repro.core.ring import CW, RingGeometry
from repro.ip.packet import IPv4Packet
from repro.metrics.utilization import UtilizationSummary, summarize_trace
from repro.raw.chip import RawChip
from repro.raw.layout import CROSSBAR_RING, ROUTER_LAYOUT
from repro.raw.switchproc import RouteInstruction, SwitchProcessor
from repro.sim.kernel import (
    BUSY,
    Get,
    GetBurst,
    IDLE,
    MEM_BLOCK,
    Put,
    PutBurst,
    Timeout,
)
from repro.sim.trace import Trace
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import (
    EV_PKT_ARRIVE,
    EV_PKT_DEPART,
    EV_PKT_DROP,
    EV_PKT_ENQUEUE,
    EV_PKT_HOP,
    EV_PKT_LOOKUP,
    EV_TOKEN_PASS,
    EV_XBAR_CONFIG,
)

#: Tile-processor cycles each Crossbar Processor spends computing the
#: jump-table index after the header exchange -- the same budget as
#: :attr:`repro.core.phases.PhaseTiming.choose_config`.  The word-level
#: model's total per-quantum control comes out ~60-70 cycles versus the
#: phase model's calibrated 48, because the generated ingress program
#: serializes header prep that the thesis's hand-scheduled assembly
#: overlaps; the decomposition is documented in EXPERIMENTS.md.
ALLOC_COMPUTE_CYCLES = 8

#: A per-port source of (destination port, packet).  Called when the
#: ingress needs its next packet; word-level runs are saturated.
WordSource = Callable[[int], Tuple[int, IPv4Packet]]


@dataclass
class _Header:
    """The two-word local header exchanged between crossbar tiles."""

    dest: Optional[int]
    words: int


@dataclass
class _FragMeta:
    """First body word: lets the line-card sink delimit packets."""

    src_port: int
    dest_port: int
    nwords: int
    nbytes: int
    packet: IPv4Packet


@dataclass
class WordLevelResult:
    cycles: int
    delivered_packets: int
    delivered_words: int
    per_port_packets: List[int]
    trace: Optional[Trace]
    costs: CostModel = CostModel.default()

    @property
    def gbps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.costs.gbps(self.delivered_words * self.costs.word_bits, self.cycles)

    @property
    def mpps(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.costs.mpps(self.delivered_packets, self.cycles)

    def utilization(self, start: int = 0, stop: Optional[int] = None) -> Dict[str, UtilizationSummary]:
        if self.trace is None:
            raise RuntimeError("run was not traced")
        return summarize_trace(self.trace, start, stop)


class WordLevelRouter:
    """The 4-port router on the word-level chip model."""

    def __init__(
        self,
        source: WordSource,
        trace: Optional[Trace] = None,
        verify_payloads: bool = False,
        costs: CostModel = CostModel.default(),
        use_bursts: bool = True,
        faults=None,
    ):
        self.costs = costs
        # Burst channel ops are cycle-for-cycle identical to the word
        # loops (tests/test_burst_equivalence.py); the flag exists for
        # A/B validation and as an escape hatch.
        self.use_bursts = use_bursts
        self.chip = RawChip(trace=trace, num_static_networks=1, costs=costs)
        self.trace = trace
        self.source = source
        self.verify_payloads = verify_payloads
        self.ring = RingGeometry(4)
        self.allocator = Allocator(self.ring)
        self.delivered_packets = 0
        self.delivered_words = 0
        self.per_port_packets = [0, 0, 0, 0]
        self.payload_errors = 0
        self.corrupt_drops = 0
        # Compiled body programs keyed by segment signature: traffic
        # repeats allocations (permutation traffic literally reuses one
        # forever), so each distinct program is compiled once per run.
        self._program_cache: Dict[tuple, List[RouteInstruction]] = {}
        self.injector = None
        self.resilience = None
        self._fault_plan = faults
        self._build()
        self._install_faults(faults)

    # ------------------------------------------------------------------
    # Channel plumbing.
    # ------------------------------------------------------------------
    def _build(self) -> None:
        chip = self.chip
        net = chip.network
        n = 4
        self.in_link = []
        self.grant_link = []
        self.out_link = []
        self.lk_req = []
        self.lk_resp = []
        self.line_out = []
        self.cw_link = []
        self.ccw_link = []
        self.cfg_chan = []
        self.done_chan = []
        self.sw2proc = []
        self.proc2sw = []
        for r, layout in enumerate(ROUTER_LAYOUT):
            xb = layout.crossbar
            self.in_link.append(net.link(layout.ingress, xb))
            self.grant_link.append(net.link(xb, layout.ingress))
            self.out_link.append(net.link(xb, layout.egress))
            self.lk_req.append(net.link(layout.ingress, layout.lookup))
            self.lk_resp.append(net.link(layout.lookup, layout.ingress))
            edge_dir = net.edge_directions(layout.egress)[0]
            self.line_out.append(net.edge(layout.egress, edge_dir))
            self.cw_link.append(net.link(xb, CROSSBAR_RING[(r + 1) % n]))
            self.ccw_link.append(net.link(xb, CROSSBAR_RING[(r - 1) % n]))
            # $csto/$csti between the crossbar tile processor and switch.
            self.sw2proc.append(chip.sim.channel(f"csti{r}", capacity=1, latency=1))
            self.proc2sw.append(chip.sim.channel(f"csto{r}", capacity=1, latency=1))
            # Switch program-counter load + end-of-body confirmation.
            self.cfg_chan.append(chip.sim.channel(f"swpc{r}", capacity=1))
            self.done_chan.append(chip.sim.channel(f"swdone{r}", capacity=1))

        for r, layout in enumerate(ROUTER_LAYOUT):
            chip.add_tile_program(layout.ingress, self._ingress(r), role="ingress")
            chip.add_tile_program(layout.lookup, self._lookup(r), role="lookup")
            chip.add_tile_program(layout.crossbar, self._crossbar(r), role="crossbar")
            chip.add_switch_program(layout.crossbar, self._crossbar_switch(r))
            chip.add_switch_program(layout.egress, self._egress_switch(r))
            chip.add_tile_program(layout.egress, self._egress(r), role="egress")
            chip.add_io_program(self._line_sink(r), name=f"sink{r}")

    # ------------------------------------------------------------------
    # Fault injection (repro.faults).
    # ------------------------------------------------------------------
    def _install_faults(self, plan) -> None:
        from repro.faults.inject import FaultInjector
        from repro.faults.plan import resolve_plan
        from repro.metrics.resilience import ResilienceMetrics

        self._burst_gate = None
        plan = resolve_plan(plan)
        if plan is None:
            return
        registry = {}
        for p in range(4):
            registry[f"input:{p}"] = self.in_link[p]
            registry[f"grant:{p}"] = self.grant_link[p]
            registry[f"egress:{p}"] = self.out_link[p]
            registry[f"line:{p}"] = self.line_out[p]
        net_channels = self.chip.network.channels()

        def channel_for(ev):
            ch = registry.get(ev.target)
            if ch is not None:
                return ch
            if ev.target.startswith("link:"):
                # Any raw static-network channel by its kernel name,
                # e.g. "link:sn1.t5->t6" -- word-level only.
                return net_channels.get(ev.target[len("link:"):])
            p = ev.port
            if p is not None and 0 <= p < 4 and ev.kind in (
                "stall",
                "link_down",
                "corrupt",
            ):
                return self.in_link[p]
            return None

        self.resilience = ResilienceMetrics()
        # No on_token_loss / on_port_down hooks: the word-level prototype
        # has no fabric-global recovery state, so validate() rejects
        # plans asking for those kinds with a clear error.
        self.injector = FaultInjector(
            plan,
            channels=registry,
            channel_for=channel_for,
            corrupt=self._fault_corrupt,
            metrics=self.resilience,
        )
        self.injector.attach(self.chip.sim, name="fault-injector")
        self._burst_gate = lambda span: self.injector.burst_ok(
            self.chip.sim.now, span
        )

    @staticmethod
    def _fault_corrupt(value, param: int):
        """Flip one bit of an in-flight data word.  Control words
        (headers, fragment meta) pass through untouched: corrupting the
        protocol itself would model a different failure class."""
        if isinstance(value, int):
            return value ^ (1 << (param % 32))
        return value

    def _bursts_ok(self, span: int) -> bool:
        """Burst fallback gate for the ingress/sink programs."""
        if self._burst_gate is None:
            return True
        return self._burst_gate(span)

    # ------------------------------------------------------------------
    # Tile programs.
    # ------------------------------------------------------------------
    def _ingress(self, port: int) -> Generator:
        """Ingress Processor: prep packets, follow the quantum protocol."""
        cache = self.chip.caches[ROUTER_LAYOUT[port].ingress]
        sim = self.chip.sim
        tel = _telemetry.RECORDER
        port_s = f"port{port}"
        buf_addr = 0
        pending: Optional[Tuple[int, List[object]]] = None  # (dest, body words)
        announced = False
        while True:
            if pending is None:
                dest, pkt = self.source(port)
                if tel is not None:
                    tel.journeys.arrive(id(pkt), port, sim.now)
                    tel.events.emit(
                        sim.now, EV_PKT_ARRIVE, port_s, pkt.total_length
                    )
                # Route lookup on the neighboring Lookup Processor; the
                # reply carries the output port (here verified against
                # the traffic intent by the lookup program itself).
                yield Put(self.lk_req[port], pkt.dst)
                looked_up = yield Get(self.lk_resp[port])
                dest = looked_up if looked_up is not None else dest
                yield Timeout(self.costs.ingress_header_cycles, BUSY)
                if not pkt.checksum_ok():
                    if tel is not None:
                        tel.journeys.drop(id(pkt), "checksum", sim.now)
                        tel.events.emit(sim.now, EV_PKT_DROP, port_s, "checksum")
                        tel.registry.count("drops.checksum")
                    continue
                if tel is not None:
                    tel.journeys.lookup(id(pkt), dest, pkt.total_length, sim.now)
                    tel.events.emit(sim.now, EV_PKT_LOOKUP, port_s, dest)
                pkt.decrement_ttl()
                words = pkt.to_words()
                nwords = len(words)
                if nwords > self.costs.max_quantum_words:
                    raise ValueError(
                        "word-level model handles single-quantum packets only"
                    )
                # Buffer the payload in local memory.  The ring buffer is
                # sized at two quanta so it stays cache-resident: only
                # the first pass takes compulsory misses.
                buf_region = 2 * self.costs.max_quantum_words * 4
                stall = cache.touch_range(buf_addr, nwords * 4)
                buf_addr = (buf_addr + nwords * 4) % buf_region
                if stall:
                    yield Timeout(stall, MEM_BLOCK)
                meta = _FragMeta(
                    src_port=port,
                    dest_port=dest,
                    nwords=nwords,
                    nbytes=pkt.total_length,
                    packet=pkt,
                )
                if self.resilience is not None:
                    self.resilience.offered_words += nwords
                pending = (dest, [meta] + words[1:])
                announced = False
            dest, body = pending
            yield Put(self.in_link[port], _Header(dest=dest, words=len(body)))
            yield Put(self.in_link[port], 0)  # header pad word
            if tel is not None and not announced:
                # First header offer = fabric-entry mark; re-offers after
                # a denied grant repeat the protocol, not the journey.
                announced = True
                tel.journeys.enqueue(id(pkt), sim.now)
                tel.events.emit(sim.now, EV_PKT_ENQUEUE, port_s, dest)
            yield Timeout(2, BUSY)  # the two header sends are instructions
            granted = yield Get(self.grant_link[port])
            if granted:
                if tel is not None:
                    tel.journeys.hop(id(pkt), sim.now)
                    tel.events.emit(sim.now, EV_PKT_HOP, port_s, dest)
                # Each word is a register-mapped load-and-send
                # (``lw $csto, 0(r)``): one instruction per word, so the
                # streaming shows up as busy cycles in the Fig 7-3 trace;
                # back-pressure appears as transmit-blocked.
                if self.use_bursts and self._bursts_ok(2 * len(body)):
                    yield PutBurst(self.in_link[port], body, gap=1, state=BUSY)
                else:
                    for w in body:
                        yield Put(self.in_link[port], w)
                        yield Timeout(1, BUSY)
                pending = None

    def _lookup(self, port: int) -> Generator:
        """Lookup Processor: LPM walk priced through the tile cache."""
        from repro.ip.lookup import LookupCostModel, RoutingTable

        table = RoutingTable.uniform_split(4)
        cache = self.chip.caches[ROUTER_LAYOUT[port].lookup]
        model = LookupCostModel(cache)
        while True:
            dst = yield Get(self.lk_req[port])
            out, visits = table.lookup_with_path(dst)
            cost = model.cost(
                visits, (v * self.costs.cache_line_bytes for v in range(visits))
            )
            yield Timeout(cost, BUSY)
            yield Put(self.lk_resp[port], out)

    def _crossbar(self, ring_index: int) -> Generator:
        """Crossbar Processor: header exchange + distributed allocation."""
        i = ring_index
        sim = self.chip.sim
        # Every tile computes the identical allocation; ring tile 0 alone
        # reports it so the telemetry stream is not quadruplicated.
        tel = _telemetry.RECORDER if i == 0 else None
        token = 0
        while True:
            # Own header arrives via the switch ($csti).
            own = yield Get(self.sw2proc[i])
            yield Get(self.sw2proc[i])  # pad
            headers: Dict[int, _Header] = {i: own}
            # Inject the local header clockwise; the switch's fanout
            # instructions then stream the other tiles' headers in
            # (each word forwarded downstream the same cycle it is
            # delivered to this processor -- no processor round trips).
            yield Put(self.proc2sw[i], own)
            yield Put(self.proc2sw[i], 0)
            for rnd in range(3):
                incoming = yield Get(self.sw2proc[i])
                yield Get(self.sw2proc[i])  # pad
                headers[(i - 1 - rnd) % 4] = incoming
            # choose_new_config: jump-table address computation.  Every
            # crossbar tile evaluates the same deterministic rule on the
            # same headers -- the distributed schedule.
            yield Timeout(ALLOC_COMPUTE_CYCLES, BUSY)
            requests = tuple(headers[p].dest for p in range(4))
            words_by_src = {p: headers[p].words for p in range(4)}
            alloc = self.allocator.allocate(requests, token)
            if tel is not None:
                tel.events.emit(
                    sim.now, EV_XBAR_CONFIG, "fabric",
                    (token,
                     tuple(sorted((g.src, g.dst) for g in alloc.grants.values()))),
                )
                tel.registry.count("fabric.xbar_configs")
            granted = i in alloc.grants
            yield Put(self.grant_link[i], 1 if granted else 0)
            program = self._body_instructions(alloc, words_by_src, i)
            yield Put(self.cfg_chan[i], program)
            yield Get(self.done_chan[i])
            token = (token + 1) % 4
            if tel is not None:
                # The word-level token is a per-tile local int, so the
                # pass is counted here rather than in core.token.
                tel.registry.count("fabric.tokens_passed")
                tel.events.emit(sim.now, EV_TOKEN_PASS, "fabric", token)
                tel.registry.maybe_snapshot(sim.now)

    def _crossbar_switch(self, ring_index: int) -> Generator:
        """Switch Processor: fixed header program + per-quantum body."""
        i = ring_index
        sp = SwitchProcessor(
            CROSSBAR_RING[i], use_bursts=self.use_bursts, burst_gate=self._burst_gate
        )
        header_in = RouteInstruction(
            moves=((self.in_link[i], self.sw2proc[i]),), repeat=2, label="hdr-in"
        )
        # Exchange: inject the local header clockwise, then fan each
        # arriving upstream word out to both the processor and the
        # clockwise-next tile in the same cycle (Raw's one-read/
        # two-write route instruction).  Dependencies point strictly
        # upstream around the ring, so the all-or-nothing instructions
        # cannot interlock.
        ex_inject = RouteInstruction(
            moves=((self.proc2sw[i], self.cw_link[i]),), repeat=2, label="ex-inj"
        )
        cw_in = self.cw_link[(i - 1) % 4]
        ex_forward = RouteInstruction(
            moves=((cw_in, self.sw2proc[i]), (cw_in, self.cw_link[i])),
            repeat=4,
            label="ex-fwd",
        )
        ex_last = RouteInstruction(
            moves=((cw_in, self.sw2proc[i]),), repeat=2, label="ex-last"
        )
        while True:
            yield from sp.execute_one(header_in)
            yield from sp.execute_one(ex_inject)
            yield from sp.execute_one(ex_forward)
            yield from sp.execute_one(ex_last)
            program = yield Get(self.cfg_chan[i])
            for instr in program:
                yield from sp.execute_one(instr)
            yield Put(self.done_chan[i], 1)

    def _body_instructions(
        self, alloc: Allocation, words_by_src: Dict[int, int], ring_index: int
    ) -> List[RouteInstruction]:
        """Compile the quantum's body for one tile: per-cycle move sets
        shaped by each flow's expansion window, run-length compressed."""
        i = ring_index
        # Collect (start_offset, length, src_channel, dst_channel).
        segments = []
        for grant in alloc.grants.values():
            path = grant.path
            tiles = self.ring.ring_tiles_on_path(path)
            if i not in tiles:
                continue
            pos = tiles.index(i)
            length = words_by_src[grant.src]
            # Incoming side at this tile.
            if pos == 0:
                src_ch = self.in_link[i]
            elif path.direction == CW:
                src_ch = self.cw_link[(i - 1) % 4]
            else:
                src_ch = self.ccw_link[(i + 1) % 4]
            # Outgoing side.
            if i == grant.dst:
                dst_ch = self.out_link[i]
            elif path.direction == CW:
                dst_ch = self.cw_link[i]
            else:
                dst_ch = self.ccw_link[i]
            segments.append((pos, length, src_ch, dst_ch))
        if not segments:
            return []
        # The program is a pure function of the segment list (channel
        # identities included); reuse the compiled form when this
        # allocation shape has been seen before.
        key = tuple(
            (pos, length, id(src), id(dst)) for pos, length, src, dst in segments
        )
        cached = self._program_cache.get(key)
        if cached is not None:
            return cached
        duration = max(pos + length for pos, length, _, _ in segments)
        program: List[RouteInstruction] = []
        current_moves: Optional[Tuple] = None
        run = 0
        for t in range(duration):
            moves = tuple(
                (src, dst)
                for pos, length, src, dst in segments
                if pos <= t < pos + length
            )
            if moves == current_moves:
                run += 1
            else:
                if run:
                    program.append(
                        RouteInstruction(moves=current_moves, repeat=run, label="body")
                    )
                current_moves = moves
                run = 1
        if run:
            program.append(
                RouteInstruction(moves=current_moves, repeat=run, label="body")
            )
        self._program_cache[key] = program
        return program

    def _egress_switch(self, port: int) -> Generator:
        """Egress switch: permanent cut-through route to the line out."""
        sp = SwitchProcessor(
            ROUTER_LAYOUT[port].egress,
            use_bursts=self.use_bursts,
            burst_gate=self._burst_gate,
        )
        # The relay runs forever, so how many repetitions one instruction
        # carries is unobservable (the word stream is identical for any
        # subdivision); a whole-quantum repeat lets the burst path hand
        # the kernel one command per quantum of words instead of per word.
        forward = RouteInstruction(
            moves=((self.out_link[port], self.line_out[port]),),
            repeat=self.costs.max_quantum_words,
            label="egress-fwd",
        )
        while True:
            yield from sp.execute_one(forward)

    def _egress(self, port: int) -> Generator:
        """Egress Processor: idle on the single-quantum fast path.

        (Reassembly of multi-quantum packets is the phase model's and
        :class:`~repro.ip.fragment.Reassembler`'s job; word-level runs
        are restricted to single-quantum packets.)
        """
        while True:
            yield Timeout(1 << 20, IDLE)

    def _line_sink(self, port: int) -> Generator:
        """Off-chip line card: delimit packets, count deliveries."""
        sim = self.chip.sim
        tel = _telemetry.RECORDER
        port_s = f"port{port}"
        while True:
            meta = yield Get(self.line_out[port])
            if not isinstance(meta, _FragMeta):
                raise RuntimeError(
                    f"egress {port}: expected fragment meta, got {meta!r}"
                )
            if self.use_bursts and self._bursts_ok(meta.nwords):
                received = yield GetBurst(self.line_out[port], meta.nwords - 1)
            else:
                received = []
                for _ in range(meta.nwords - 1):
                    w = yield Get(self.line_out[port])
                    received.append(w)
            if self.verify_payloads or self.injector is not None:
                expected = meta.packet.to_words()[1:]
                if received != expected:
                    self.payload_errors += 1
                    if self.injector is not None:
                        # Line-card CRC catches the in-flight corruption;
                        # the packet is discarded, not delivered.
                        self.corrupt_drops += 1
                        self.resilience.record_drop("corrupt")
                        if tel is not None:
                            tel.journeys.drop(id(meta.packet), "corrupt", sim.now)
                            tel.events.emit(
                                sim.now, EV_PKT_DROP,
                                f"port{meta.src_port}", "corrupt",
                            )
                            tel.registry.count("drops.corrupt")
                        continue
            self.delivered_packets += 1
            self.delivered_words += meta.nwords
            self.per_port_packets[port] += 1
            if tel is not None:
                tel.journeys.depart(id(meta.packet), sim.now)
                tel.events.emit(sim.now, EV_PKT_DEPART, port_s, meta.nbytes)
            if self.resilience is not None:
                self.resilience.delivered_words += meta.nwords

    # ------------------------------------------------------------------
    def run(self, until_cycles: int, warmup_cycles: int = 0) -> WordLevelResult:
        """Run to ``until_cycles``; measure after ``warmup_cycles`` (cache
        warm-up and pipeline fill excluded from the reported rate)."""
        if warmup_cycles:
            self.chip.run(until=warmup_cycles)
            base_packets = self.delivered_packets
            base_words = self.delivered_words
            base_per_port = list(self.per_port_packets)
        else:
            base_packets = base_words = 0
            base_per_port = [0, 0, 0, 0]
        self.chip.run(until=until_cycles)
        return WordLevelResult(
            cycles=self.chip.now - warmup_cycles,
            delivered_packets=self.delivered_packets - base_packets,
            delivered_words=self.delivered_words - base_words,
            per_port_packets=[
                a - b for a, b in zip(self.per_port_packets, base_per_port)
            ],
            trace=self.trace,
            costs=self.costs,
        )


# ---------------------------------------------------------------------------
# Canned word-level sources.
# ---------------------------------------------------------------------------
def permutation_source(packet_bytes: int, shift: int = 2) -> WordSource:
    """Conflict-free peak traffic with real synthesized packets."""
    counter = [0]

    def source(port: int) -> Tuple[int, IPv4Packet]:
        dest = (port + shift) % 4
        counter[0] += 1
        pkt = IPv4Packet.synthesize(
            src=(10 << 24) | port,
            dst=(dest << 30) | counter[0] % (1 << 24),
            size_bytes=packet_bytes,
            ident=counter[0],
        )
        return dest, pkt

    return source


def uniform_source(packet_bytes: int, rng, exclude_self: bool = True) -> WordSource:
    """Uniform destinations with real synthesized packets."""
    counter = [0]

    def source(port: int) -> Tuple[int, IPv4Packet]:
        if exclude_self:
            d = int(rng.integers(0, 3))
            dest = d if d < port else d + 1
        else:
            dest = int(rng.integers(0, 4))
        counter[0] += 1
        pkt = IPv4Packet.synthesize(
            src=(10 << 24) | port,
            dst=(dest << 30) | counter[0] % (1 << 24),
            size_bytes=packet_bytes,
            ident=counter[0],
        )
        return dest, pkt

    return source
