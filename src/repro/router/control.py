"""The Network Processor role: managing forwarding tables at run time.

Chapter 2's case studies give the control plane's job description: "the
network processor builds a forwarding table for each forwarding engine"
and keeps it updated while the data plane forwards (MGR, section 2.2.1).
The thesis's router takes routing tables as given; this module adds the
missing piece so the repository is usable as a *router*, not just a
switch: a :class:`NetworkProcessor` process that applies a schedule of
route add/withdraw events to the live table while packets flow.

Updates are atomic per route (a property of the PATRICIA insert/delete),
so a concurrent lookup sees either the old or the new next hop, never a
torn state -- asserted by the integration tests, which also check that
every packet is delivered to the table's answer *as of its lookup time*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.ip.addr import Prefix
from repro.ip.lookup import RoutingTable
from repro.raw.network import DynamicNetwork
from repro.sim.kernel import BUSY, Timeout


@dataclass(frozen=True)
class RouteUpdate:
    """One control-plane event."""

    cycle: int  #: when the update is applied
    prefix: Prefix
    port: Optional[int]  #: new next hop, or None to withdraw the route

    @property
    def is_withdraw(self) -> bool:
        return self.port is None


@dataclass
class UpdateLog:
    """What the network processor actually did, for test assertions."""

    applied: List[Tuple[int, RouteUpdate]] = field(default_factory=list)

    def count(self) -> int:
        return len(self.applied)


class NetworkProcessor:
    """Applies a schedule of updates to a live routing table.

    The update path is priced like the MGR's: the (off-fabric) control
    processor computes the new entry, then pushes it to each Lookup
    Processor's table memory over the dynamic network -- the static
    networks and the crossbar never see control traffic.

    Parameters
    ----------
    router:
        A :class:`~repro.router.router.RawRouter`; updates mutate its
        shared table (the thesis's per-port tables are identical copies,
        so one shared structure models four synchronized ones, with the
        push cost charged per port).
    updates:
        Schedule, in any order (sorted internally by cycle).
    compute_cycles:
        Control-plane work per update (route selection, table build).
    """

    def __init__(
        self,
        router,
        updates: List[RouteUpdate],
        compute_cycles: int = 200,
    ):
        self.router = router
        self.updates = sorted(updates, key=lambda u: u.cycle)
        self.compute_cycles = compute_cycles
        self.log = UpdateLog()

    def run(self) -> Generator:
        sim = self.router.sim
        table: RoutingTable = self.router.table
        for update in self.updates:
            delay = update.cycle - sim.now
            if delay > 0:
                yield Timeout(delay, BUSY)
            yield Timeout(self.compute_cycles, BUSY)
            # Push the new entry to every port's table copy over the
            # dynamic network (per-port message latency, serialized).
            push = sum(
                DynamicNetwork.latency(0, layout_tile, words=3)
                for layout_tile in self._lookup_tiles()
            )
            yield Timeout(push, BUSY)
            if update.is_withdraw:
                table.remove_route(update.prefix)
            else:
                table.add_route(update.prefix, update.port)
            self.log.applied.append((sim.now, update))

    def _lookup_tiles(self):
        from repro.raw.layout import LOOKUP_TILES

        if self.router.num_ports == 4:
            return LOOKUP_TILES
        return tuple(range(self.router.num_ports))

    def attach(self) -> None:
        """Register with the router's simulator."""
        self.router.sim.add_process(self.run(), name="netproc")
