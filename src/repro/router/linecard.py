"""Line-card processes: paced packet sources feeding the ingress.

A :class:`LineCardSource` injects packets at a configurable fraction of
the line rate (1 word/cycle in, per the static network's edge
bandwidth); when the ingress-side buffer is full it *drops* -- the
thesis assumes dropping happens externally to the Raw chip (section
4.4).  Used by the load/latency sweeps; the saturated throughput runs
bypass it by supplying packets directly.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.ip.packet import IPv4Packet
from repro.sim.channel import Channel
from repro.sim.kernel import BUSY, Timeout


class LineCardSource:
    """Feeds ``count`` packets into ``line_in`` at ``offered_load``.

    ``offered_load`` is a fraction of line rate: a ``W``-word packet
    occupies the wire for ``W`` cycles, so at load ``rho`` the mean gap
    between packet starts is ``W / rho`` cycles (geometric jitter around
    it unless ``deterministic``).
    """

    def __init__(
        self,
        port: int,
        line_in: Channel,
        make_packet: Callable[[], Optional[IPv4Packet]],
        offered_load: float,
        rng: np.random.Generator,
        count: Optional[int] = None,
        deterministic: bool = False,
        stats=None,
        resilience=None,
    ):
        if not 0.0 < offered_load <= 1.0:
            raise ValueError("offered_load must be in (0, 1]")
        self.port = port
        self.line_in = line_in
        self.make_packet = make_packet
        self.load = offered_load
        self.rng = rng
        self.count = count
        self.deterministic = deterministic
        self.stats = stats
        self.resilience = resilience
        self.sent = 0
        self.dropped = 0

    def run(self, sim) -> Generator:
        while self.count is None or self.sent < self.count:
            pkt = self.make_packet()
            if pkt is None:
                return
            words = pkt.total_words
            # Wire occupancy plus idle gap to hit the offered load.
            idle = words * (1.0 - self.load) / self.load
            if not self.deterministic and idle > 0:
                idle = self.rng.exponential(idle)
            yield Timeout(words + int(round(idle)), BUSY)
            pkt.arrival_cycle = sim.now
            self.sent += 1
            if not sim.try_put(self.line_in, pkt):
                self.dropped += 1
                if self.stats is not None:
                    self.stats.line_drops += 1
                if self.resilience is not None:
                    self.resilience.record_drop("line")
