"""The Raw router (thesis chapter 4): ingress, lookup, fabric, egress.

Two models of the same design:

* :class:`~repro.router.router.RawRouter` -- the *phase-level* model:
  every functional unit is a kernel process, the Rotating Crossbar
  advances in routing quanta priced by :mod:`repro.core.phases`.  Fast
  enough for the throughput/latency sweeps of the benchmark harness.
* :mod:`repro.router.wordlevel` -- the *word-level* model: real words
  cross real static-network channels through switch-processor route
  instructions on the 4x4 chip model.  Slow but cycle-faithful; it
  produces the per-tile utilization traces of thesis Fig 7-3 and
  cross-validates the phase model's cycle counts.
"""

from repro.router.frags import QuantumFragment, fragment_packet
from repro.router.stats import RouterStats
from repro.router.router import RawRouter, RouterResult
from repro.router.wordlevel import WordLevelRouter, WordLevelResult
from repro.router.control import NetworkProcessor, RouteUpdate

__all__ = [
    "QuantumFragment",
    "fragment_packet",
    "RouterStats",
    "RawRouter",
    "RouterResult",
    "WordLevelRouter",
    "WordLevelResult",
    "NetworkProcessor",
    "RouteUpdate",
]
