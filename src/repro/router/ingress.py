"""The Ingress Processor (thesis section 4.2).

Per packet: stream the words in from the line card (one word per cycle),
verify the IP header checksum, decrement TTL (with the incremental
checksum patch), hand the header to the Lookup Processor -- whose
latency hides under the payload streaming except for tiny packets --
fragment if the packet exceeds the crossbar transfer block, and enqueue
the fragments toward the Crossbar Processor, blocking when the input
queue is full (back-pressure to the external buffer).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.ip.packet import IPv4Packet
from repro.router.frags import fragment_packet
from repro.sim.channel import Channel
from repro.sim.kernel import BUSY, Get, Put, Timeout
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import (
    EV_PKT_ARRIVE,
    EV_PKT_DROP,
    EV_PKT_ENQUEUE,
    EV_PKT_LOOKUP,
)

#: Supplies the next packet for a port, or None when the source is done.
PacketSupply = Callable[[], Optional[IPv4Packet]]


class IngressProcessor:
    """One port's ingress pipeline stage."""

    def __init__(
        self,
        port: int,
        router,  # RawRouter (kept loose to avoid an import cycle)
        supply: Optional[PacketSupply] = None,
        line_in: Optional[Channel] = None,
    ):
        if (supply is None) == (line_in is None):
            raise ValueError("ingress needs exactly one of supply / line_in")
        self.port = port
        self.router = router
        self.supply = supply
        self.line_in = line_in
        self.packets_in = 0

    def run(self) -> Generator:
        router = self.router
        stats = router.stats
        tel = _telemetry.RECORDER
        port_s = f"port{self.port}"
        while True:
            if self.supply is not None:
                pkt = self.supply()
                if pkt is None:
                    return
            else:
                pkt = yield Get(self.line_in)
                if pkt is None:  # sentinel: line card finished
                    return
            self.packets_in += 1
            if pkt.arrival_cycle < 0:
                pkt.arrival_cycle = router.sim.now
            if tel is not None:
                tel.journeys.arrive(id(pkt), self.port, router.sim.now)
                tel.events.emit(
                    router.sim.now, EV_PKT_ARRIVE, port_s, pkt.total_length
                )
            words = pkt.total_words
            if router.faults_on:
                router.resilience.offered_words += words

            # Stream the packet in from the line (1 word/cycle); the
            # route lookup runs on the Lookup Processor concurrently and
            # only extends the critical path when it outlasts the payload.
            lookup_extra = max(0, router.costs.lookup_cycles - words)
            yield Timeout(words + lookup_extra, BUSY)
            yield Timeout(router.costs.ingress_header_cycles, BUSY)

            # Functional header path: these really run on the packet.
            if not pkt.checksum_ok():
                stats.checksum_drops += 1
                if tel is not None:
                    self._drop(tel, pkt, "checksum", router.sim.now)
                continue
            if pkt.ttl <= 1:
                stats.ttl_drops += 1
                if tel is not None:
                    self._drop(tel, pkt, "ttl", router.sim.now)
                continue
            pkt.decrement_ttl()
            out_port = router.table.lookup(pkt.dst)
            if out_port is None or not 0 <= out_port < router.num_ports:
                stats.ttl_drops += 1  # unroutable; folded into drop count
                if tel is not None:
                    self._drop(tel, pkt, "unroutable", router.sim.now)
                continue
            if router.faults_on and router.degraded.any_dead:
                # Degraded mode: the routing layer has reconverged around
                # dead ports, steering their traffic to the next live one.
                out_port = router.degraded.remap(out_port)
                if out_port is None:  # every port is dead
                    stats.dead_port_drops += 1
                    router.resilience.record_drop("dead_port")
                    if tel is not None:
                        self._drop(tel, pkt, "dead_port", router.sim.now)
                    continue
            pkt.output_port = out_port
            if tel is not None:
                tel.journeys.lookup(
                    id(pkt), out_port, pkt.total_length, router.sim.now
                )
                tel.events.emit(
                    router.sim.now, EV_PKT_LOOKUP, port_s, out_port
                )

            first = True
            for frag in fragment_packet(pkt, out_port, router.max_quantum_words):
                yield Put(router.input_queues[self.port], frag)
                if first:
                    first = False
                    if tel is not None:
                        tel.journeys.enqueue(id(pkt), router.sim.now)
                        tel.events.emit(
                            router.sim.now, EV_PKT_ENQUEUE, port_s, out_port
                        )
                router.sim.try_put(router.fabric_wake, 1)

    @staticmethod
    def _drop(tel, pkt, cause: str, now: int) -> None:
        tel.journeys.drop(id(pkt), cause, now)
        tel.events.emit(now, EV_PKT_DROP, f"port{pkt.input_port}", cause)
        tel.registry.count(f"drops.{cause}")
