"""The Rotating Crossbar fabric loop inside the full router.

One synchronous process models the four Crossbar Processors advancing in
lockstep routing quanta (the thesis's tiles each evaluate the identical
deterministic rule on the exchanged headers, so a single evaluation per
quantum is exact).  Each quantum: inspect the four head-of-line
fragments, run the :class:`~repro.core.allocator.Allocator` (or index
the compiled jump table, when configured to demonstrate the chapter-6
artifact), advance the clock by the phase cost, deliver the granted
fragments to the egress queues, rotate the token.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.core.phases import idle_quantum_cycles, quantum_cycles
from repro.router.frags import QuantumFragment
from repro.sim.kernel import BUSY, Get, Put, Timeout
from repro.telemetry import runtime as _telemetry
from repro.telemetry.events import EV_PKT_HOP, EV_TOKEN_PASS, EV_XBAR_CONFIG


class RotatingCrossbarFabric:
    """The fabric stage of :class:`~repro.router.router.RawRouter`."""

    def __init__(self, router):
        self.router = router

    def _fault_quantum_prologue(self) -> Generator:
        """Per-quantum fault bookkeeping; only runs with faults armed.

        Three jobs, in dependency order: acknowledge freshly dead ports
        (closing their reconvergence records), detect and repair a lost
        token (the fixed-length regeneration protocol of
        :class:`~repro.faults.recovery.TokenRecovery`), and clear
        dead-port traffic -- everything queued *at* a dead input, and any
        live input's stale head still addressed *to* a dead port from
        before the routing layer reconverged.
        """
        router = self.router
        sim = router.sim
        stats = router.stats
        timing = router.timing
        recovery = router.token_recovery
        degraded = router.degraded
        resilience = router.resilience

        if router._dead_pending:
            for port in router._dead_pending:
                degraded.converged(port, sim.now)
            router._dead_pending.clear()

        if recovery.lost:
            for _ in range(recovery.recovery_quanta()):
                stats.quanta += 1
                stats.idle_quanta += 1
                yield Timeout(idle_quantum_cycles(timing), BUSY)
            recovery.recover(router.token, sim.now)

        if degraded.any_dead:
            for port in range(router.num_ports):
                queue = router.input_queues[port]
                if not degraded.alive(port):
                    while True:
                        ok, _frag = sim.try_get(queue)
                        if not ok:
                            break
                        stats.dead_port_drops += 1
                        resilience.record_drop("dead_port")
                else:
                    while True:
                        ready, frag = sim.peek(queue)
                        if not ready or degraded.alive(frag.dest):
                            break
                        sim.try_get(queue)
                        stats.dead_port_drops += 1
                        resilience.record_drop("dead_port")

    def run(self) -> Generator:
        router = self.router
        sim = router.sim
        stats = router.stats
        allocator = router.allocator
        token = router.token
        timing = router.timing
        n = router.num_ports
        transform = router.transform
        tel = _telemetry.RECORDER

        while True:
            if router.faults_on:
                yield from self._fault_quantum_prologue()

            # Headers phase: inspect (do not consume) each input's HOL.
            heads: List[Optional[QuantumFragment]] = []
            for port in range(n):
                ready, frag = sim.peek(router.input_queues[port])
                heads.append(frag if ready else None)
            requests = tuple(f.dest if f is not None else None for f in heads)

            if all(r is None for r in requests):
                # One idle control quantum (headers exchanged, all empty),
                # then park until an ingress enqueues something -- the
                # real tiles would keep spinning header exchanges, which
                # changes nothing observable but would keep the event
                # queue alive forever after finite sources drain.
                stats.quanta += 1
                stats.idle_quanta += 1
                yield Timeout(idle_quantum_cycles(timing), BUSY)
                token.advance()
                if tel is not None:
                    tel.events.emit(sim.now, EV_TOKEN_PASS, "fabric", token.master)
                    tel.registry.maybe_snapshot(sim.now)
                ready, _ = sim.peek(router.fabric_wake)
                if ready:
                    sim.try_get(router.fabric_wake)
                    continue
                if all(not router.input_queues[p].occupancy for p in range(n)):
                    yield Get(router.fabric_wake)
                continue
            sim.try_get(router.fabric_wake)  # absorb stale wake tokens

            if router.schedule is not None:
                _, alloc = router.schedule.lookup(requests, token.master)
            else:
                alloc = allocator.allocate(requests, token.master)

            body = 0
            for grant in alloc.grants.values():
                frag = heads[grant.src]
                w = frag.words * (transform.cycles_per_word if transform else 1)
                body = max(body, w + grant.expansion)
            duration = (
                quantum_cycles(0, 0, timing, router.pipelined, costs=router.costs)
                + body
            )
            stats.quanta += 1
            stats.blocked_grants += len(alloc.blocked)
            stats.grant_histogram[alloc.num_granted] += 1
            if tel is not None:
                tel.events.emit(
                    sim.now, EV_XBAR_CONFIG, "fabric",
                    (token.master,
                     tuple(sorted((g.src, g.dst) for g in alloc.grants.values()))),
                )
                tel.registry.count("fabric.xbar_configs")
            yield Timeout(duration, BUSY)

            for grant in alloc.grants.values():
                ok, frag = sim.try_get(router.input_queues[grant.src])
                if not ok:
                    # Only reachable under fault injection: the input
                    # link went down after the headers phase, deferring
                    # the granted fragment past this quantum.  It stays
                    # queued and re-arbitrates once the link restores.
                    assert router.faults_on, "granted input queue emptied mid-quantum"
                    continue
                if transform is not None and frag.is_last:
                    frag.packet.payload = tuple(
                        transform.apply(frag.packet.payload)
                    )
                # Blocks when the egress queue is full: output blocking.
                yield Put(router.egress_queues[grant.dst], frag)
                if tel is not None:
                    tel.journeys.hop(id(frag.packet), sim.now)
                    tel.events.emit(sim.now, EV_PKT_HOP, "fabric", grant.dst)
            token.advance()
            if tel is not None:
                tel.events.emit(sim.now, EV_TOKEN_PASS, "fabric", token.master)
                tel.registry.maybe_snapshot(sim.now)
