"""Assembly of the phase-level Raw router.

:class:`RawRouter` wires one ingress, one egress, the shared Rotating
Crossbar fabric, the routing table, and the measurement state into a
kernel simulation; two feeding modes cover the thesis's experiments:

* ``attach_saturated`` -- every input always has the next packet ready
  (the peak / average throughput regime of sections 7.2-7.3);
* ``attach_linecards`` -- paced line-card sources at a chosen offered
  load (latency-vs-load sweeps, drop behaviour).

The design generalizes the prototype along the axes the thesis's future
work names: ``num_ports`` beyond 4 (section 8.5), a
:class:`~repro.core.token.WeightedToken` for QoS (8.7), a payload
:class:`~repro.core.compute.StreamTransform` (8.3), and the second
static network via ``networks=2`` (8.1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import CostModel, SimConfig
from repro.faults.inject import FaultInjector
from repro.faults.plan import PlanLike, resolve_plan
from repro.faults.recovery import DegradedRouting, TokenRecovery
from repro.metrics.resilience import ResilienceMetrics
from repro.core.allocator import Allocator
from repro.core.compute import StreamTransform
from repro.core.phases import DEFAULT_TIMING, PhaseTiming
from repro.core.ring import RingGeometry
from repro.core.scheduler import CompiledSchedule
from repro.core.token import RotatingToken
from repro.ip.lookup import RoutingTable
from repro.router.egress import EgressProcessor
from repro.router.fabric import RotatingCrossbarFabric
from repro.router.ingress import IngressProcessor
from repro.router.linecard import LineCardSource
from repro.router.stats import RouterStats
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.telemetry import runtime as _telemetry
from repro.traffic.workload import PacketFactory, Workload


class RouterResult:
    """What a router run measured."""

    def __init__(self, stats: RouterStats, cycles: int):
        self.stats = stats
        self.cycles = cycles

    @property
    def gbps(self) -> float:
        return self.stats.gbps(self.cycles)

    @property
    def mpps(self) -> float:
        return self.stats.mpps(self.cycles)

    @property
    def packets(self) -> int:
        return self.stats.delivered_packets

    def latency_summary(self):
        return self.stats.latency.summary()


class RawRouter:
    """The 4-port (or N-port) single-chip router, phase-level model."""

    def __init__(
        self,
        num_ports: int = 4,
        table: Optional[RoutingTable] = None,
        trace: Optional[Trace] = None,
        networks: int = 1,
        max_quantum_words: Optional[int] = None,
        timing: Optional[PhaseTiming] = None,
        pipelined: bool = True,
        transform: Optional[StreamTransform] = None,
        token: Optional[RotatingToken] = None,
        schedule: Optional[CompiledSchedule] = None,
        input_queue_frags: int = 64,
        egress_queue_frags: int = 8,
        warmup_cycles: int = 0,
        costs: CostModel = CostModel.default(),
    ):
        self.costs = costs
        self.num_ports = num_ports
        self.table = table or RoutingTable.uniform_split(num_ports)
        self.sim = Simulator(trace=trace)
        self.ring = RingGeometry(num_ports)
        self.allocator = Allocator(self.ring, networks=networks)
        self.token = token or RotatingToken(num_ports)
        if timing is None:
            timing = (
                DEFAULT_TIMING
                if costs.quantum_ctl_overhead == DEFAULT_TIMING.control_total
                else PhaseTiming.for_model(costs)
            )
        self.timing = timing
        self.pipelined = pipelined
        self.transform = transform
        self.schedule = schedule
        self.max_quantum_words = (
            costs.max_quantum_words if max_quantum_words is None else max_quantum_words
        )
        self.stats = RouterStats(
            num_ports=num_ports, warmup_cycles=warmup_cycles, costs=costs
        )

        self.input_queues = [
            self.sim.channel(f"inq{p}", capacity=input_queue_frags)
            for p in range(num_ports)
        ]
        self.egress_queues = [
            self.sim.channel(f"eq{p}", capacity=egress_queue_frags)
            for p in range(num_ports)
        ]
        #: Doorbell the ingresses ring so a parked (all-idle) fabric wakes.
        self.fabric_wake = self.sim.channel("fabric_wake", capacity=1)
        self._fabric_started = False
        self._attached = False

        tel = _telemetry.RECORDER
        if tel is not None:
            for p, q in enumerate(self.input_queues):
                tel.registry.gauge(
                    f"ingress.{p}.queue_depth", lambda q=q: q.occupancy
                )
            for p, q in enumerate(self.egress_queues):
                tel.registry.gauge(
                    f"egress.{p}.queue_depth", lambda q=q: q.occupancy
                )
            self.stats.register_views(tel.registry)

        # Fault-injection state: all None/False until install_faults(),
        # so the fault-free pipeline takes zero extra branches that matter.
        self.faults_on = False
        self.injector: Optional[FaultInjector] = None
        self.resilience: Optional[ResilienceMetrics] = None
        self.degraded: Optional[DegradedRouting] = None
        self.token_recovery: Optional[TokenRecovery] = None
        self._dead_pending: List[int] = []
        self._injector_started = False

    @classmethod
    def from_config(
        cls,
        config: SimConfig,
        trace: Optional[Trace] = None,
        warmup_cycles: int = 0,
        **overrides,
    ) -> "RawRouter":
        """Build a router from a :class:`~repro.config.SimConfig` value."""
        return cls(
            num_ports=config.ports,
            trace=trace,
            networks=config.networks,
            pipelined=config.pipelined,
            input_queue_frags=config.input_queue_frags,
            egress_queue_frags=config.egress_queue_frags,
            warmup_cycles=warmup_cycles,
            costs=config.cost_model(),
            **overrides,
        )

    # -- fault injection (repro.faults) --------------------------------
    def install_faults(
        self, plan: PlanLike, metrics: Optional[ResilienceMetrics] = None
    ) -> Optional[FaultInjector]:
        """Arm a fault plan; call before attaching sources.

        None or an empty plan is a no-op (the router stays on its
        fault-free fast path).  Returns the injector, whose process is
        attached lazily on the first :meth:`run` so that late-built
        channels (line cards) are targetable.
        """
        plan = resolve_plan(plan)
        if plan is None:
            return None
        if self._attached:
            raise RuntimeError("install_faults() must precede source attach")
        self.resilience = metrics if metrics is not None else ResilienceMetrics()
        tel = _telemetry.RECORDER
        if tel is not None:
            self.resilience.register_views(tel.registry)
        self.degraded = DegradedRouting(self.num_ports, self.resilience)
        self.token_recovery = TokenRecovery(self.num_ports, self.resilience)
        registry = {}
        for p in range(self.num_ports):
            registry[f"input:{p}"] = self.input_queues[p]
            registry[f"egress:{p}"] = self.egress_queues[p]
        self.injector = FaultInjector(
            plan,
            channels=registry,
            channel_for=self._fault_channel_for,
            corrupt=self._fault_corrupt,
            on_token_loss=lambda ev, cycle: self.token_recovery.lose(cycle),
            on_port_down=self._fault_port_down,
            metrics=self.resilience,
        )
        self.faults_on = True
        return self.injector

    def _fault_channel_for(self, ev):
        """Resolve an event's channel: registry first, then the port-scoped
        conventions (a stalled tile silences its ingress feed; an overrun
        line card stops draining its egress queue)."""
        ch = self.injector.channels.get(ev.target)
        if ch is not None:
            return ch
        p = ev.port
        if p is not None and 0 <= p < self.num_ports:
            if ev.kind in ("stall", "link_down", "corrupt"):
                return self.input_queues[p]
            if ev.kind == "overload":
                return self.egress_queues[p]
        return None

    def _fault_corrupt(self, frag, param: int):
        """Single-word header corruption: flip one bit of the in-flight
        fragment's destination address *without* patching the checksum --
        exactly what the egress-side verification exists to catch."""
        frag.packet.dst ^= 1 << (param % 32)
        return frag

    def _fault_port_down(self, ev, cycle: int) -> None:
        port = ev.port
        if port is None or not 0 <= port < self.num_ports:
            return
        if self.degraded.kill(port):
            # The fabric acknowledges (and closes the recovery record)
            # at its next quantum boundary -- the reconvergence delay.
            self._dead_pending.append(port)

    # ------------------------------------------------------------------
    def _start_fabric_and_egress(self) -> None:
        if self._fabric_started:
            return
        fabric = RotatingCrossbarFabric(self)
        self.sim.add_process(fabric.run(), name="fabric", trace_key="fabric")
        for port in range(self.num_ports):
            eg = EgressProcessor(port, self)
            self.sim.add_process(
                eg.run(), name=f"egress{port}", trace_key=f"egress{port}"
            )
        self._fabric_started = True

    def attach_saturated(self, workload: Workload, factory: PacketFactory) -> None:
        """Every ingress always has its next packet ready (peak regime)."""
        if self._attached:
            raise RuntimeError("router already has attached sources")
        self._start_fabric_and_egress()
        for port in range(self.num_ports):

            def supply(p: int = port):
                pkt = factory.from_workload(workload, p)
                if pkt is not None:
                    pkt.arrival_cycle = self.sim.now
                return pkt

            ing = IngressProcessor(port, self, supply=supply)
            self.sim.add_process(
                ing.run(), name=f"ingress{port}", trace_key=f"ingress{port}"
            )
        self._attached = True

    def attach_linecards(
        self,
        workload: Workload,
        factory: PacketFactory,
        offered_load: float,
        rng: np.random.Generator,
        packets_per_port: Optional[int] = None,
        line_buffer_packets: int = 32,
    ) -> List[LineCardSource]:
        """Paced line-card sources at ``offered_load`` of line rate."""
        if self._attached:
            raise RuntimeError("router already has attached sources")
        self._start_fabric_and_egress()
        sources: List[LineCardSource] = []
        for port in range(self.num_ports):
            line_in = self.sim.channel(f"line{port}", capacity=line_buffer_packets)
            if self.injector is not None:
                self.injector.channels[f"line:{port}"] = line_in

            def make(p: int = port):
                return factory.from_workload(workload, p)

            src = LineCardSource(
                port,
                line_in,
                make,
                offered_load,
                rng,
                count=packets_per_port,
                stats=self.stats,
                resilience=self.resilience,
            )
            self.sim.add_process(src.run(self.sim), name=f"linecard{port}")
            ing = IngressProcessor(port, self, line_in=line_in)
            self.sim.add_process(
                ing.run(), name=f"ingress{port}", trace_key=f"ingress{port}"
            )
            sources.append(src)
        self._attached = True
        return sources

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        target_packets: Optional[int] = None,
        chunk: int = 20_000,
    ) -> RouterResult:
        """Advance until ``max_cycles`` or ``target_packets`` deliveries.

        ``target_packets`` runs in ``chunk``-cycle slices, so the result
        may overshoot the target by up to one slice's worth of packets.
        """
        if not self._attached:
            raise RuntimeError("attach a traffic source before running")
        if max_cycles is None and target_packets is None:
            raise ValueError("need a stopping condition")
        if self.injector is not None and not self._injector_started:
            self.injector.attach(self.sim)
            self._injector_started = True
        while True:
            if max_cycles is not None:
                self.sim.run(until=max_cycles, raise_on_deadlock=False)
                break
            before = self.stats.delivered_packets
            before_now = self.sim.now
            self.sim.run(until=self.sim.now + chunk, raise_on_deadlock=False)
            if self.stats.delivered_packets >= target_packets:
                break
            if self.stats.delivered_packets == before and self.sim.now == before_now:
                # Sources exhausted and the pipeline has fully drained.
                break
        return RouterResult(self.stats, self.sim.now)
