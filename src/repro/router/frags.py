"""Crossbar quanta of packets, as moved by the phase-level fabric.

The phase model prices transfers by word *counts*; the fragment keeps a
reference to the parent packet so the egress can reassemble, timestamp,
and (in the compute extension) verify the transformed payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ip.packet import IPv4Packet
from repro.raw import costs


@dataclass
class QuantumFragment:
    """One routing quantum's worth of one packet."""

    dest: int
    words: int
    index: int
    count: int
    packet: IPv4Packet

    def __post_init__(self):
        if self.words < 1:
            raise ValueError("fragment must carry at least one word")
        if not 0 <= self.index < self.count:
            raise ValueError("fragment index out of range")

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1


def fragment_packet(
    packet: IPv4Packet,
    dest: int,
    max_quantum_words: int = costs.MAX_QUANTUM_WORDS,
) -> List[QuantumFragment]:
    """Split a packet into crossbar quanta (thesis section 4.3)."""
    total = packet.total_words
    count = (total + max_quantum_words - 1) // max_quantum_words
    frags = []
    remaining = total
    for i in range(count):
        w = min(remaining, max_quantum_words)
        remaining -= w
        frags.append(
            QuantumFragment(dest=dest, words=w, index=i, count=count, packet=packet)
        )
    return frags
