"""One interface over the three simulation engines.

The repository evaluates the thesis's cost model at three fidelities:

* ``fabric`` -- the quantum-level loop (:mod:`repro.core.fabricsim`):
  no kernel processes, fastest, used by throughput/fairness sweeps;
* ``router`` -- the phase-level pipelined router
  (:mod:`repro.router.router`): ingress/lookup/egress stages as kernel
  processes, per-packet latency;
* ``wordlevel`` -- the word-level chip model
  (:mod:`repro.router.wordlevel`): every word crosses the simulated
  static network, per-cycle truth.

Historically each exposed a different constructor and result type, so
comparing fidelities or sweeping configurations meant bespoke glue per
engine.  This module gives all three the same shape: build from a
:class:`~repro.config.SimConfig`, feed a declarative
:class:`WorkloadSpec`, get back a :class:`RunResult` with a shared
schema (throughput, latency percentiles, per-port counters, trace
handle).  ``run_config(config, workload)`` is the one-call entry point
the sweep runner (:mod:`repro.sweep`) fans across processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.config import CostModel, SimConfig

#: Traffic pattern names understood by every engine (the deprecated
#: flat-kwargs surface; the ``traffic=`` spec supersedes it).
PATTERNS = ("permutation", "uniform", "hotspot")

#: Schema tag on :meth:`WorkloadSpec.to_dict`; bump on breaking changes.
WORKLOAD_SCHEMA = "repro-workload/1"


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative, picklable workload description.

    ``traffic`` is the workload proper: a
    :class:`~repro.traffic.spec.TrafficSpec` (or anything
    :func:`~repro.traffic.spec.resolve_traffic` accepts -- a spec dict,
    a preset name like ``"imix_onoff"``, a ``.json`` spec path, or a
    ``.csv``/``.jsonl`` trace path).  The flat ``pattern`` / ``shift``
    / ``hot_port`` / ``p_hot`` / ``packet_bytes`` kwargs are the
    deprecated compat shim: when ``traffic`` is None they map onto the
    equivalent spec via :meth:`effective_traffic`, bit-identical to the
    historical engines.  The budget fields are interpreted by fidelity:
    ``quanta`` bounds the fabric engine, ``packets`` the phase-level
    router (defaults to ``quanta`` deliveries), ``cycles`` the
    word-level model.  ``None`` warmups pick each engine's historical
    default so results stay comparable with the seed's experiment
    harness.
    """

    pattern: str = "permutation"
    packet_bytes: int = 1024
    shift: int = 2  #: permutation: port i -> (i + shift) mod N
    exclude_self: bool = True  #: uniform: redraw self-destinations
    hot_port: int = 0
    p_hot: float = 0.7
    quanta: int = 2000
    warmup_quanta: Optional[int] = None  #: default max(50, quanta // 20)
    packets: Optional[int] = None
    cycles: int = 120_000
    warmup_cycles: int = 20_000
    #: Optional :mod:`repro.faults` chaos schedule: a
    #: :class:`~repro.faults.plan.FaultPlan`, its dict form, or a JSON
    #: path.  None / an empty plan keeps every engine on its fault-free
    #: fast path (bit-for-bit identical to the field not existing).
    fault_plan: Any = None
    #: The declarative workload (see class docstring); overrides the
    #: flat pattern kwargs when set.
    traffic: Any = None

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; expected one of {PATTERNS}"
            )
        if self.packet_bytes < 24:
            raise ValueError("packet must at least hold an IPv4 header + word")
        if not 0.0 <= self.p_hot <= 1.0:
            raise ValueError(f"p_hot must be in [0, 1], got {self.p_hot}")
        if self.shift < 0:
            raise ValueError(f"shift must be >= 0, got {self.shift}")
        if self.hot_port < 0:
            # The upper bound depends on the engine's port count, which
            # is unknown here; traffic.build range-checks it at build time.
            raise ValueError(f"hot_port must be >= 0, got {self.hot_port}")

    def replace(self, **changes: Any) -> "WorkloadSpec":
        return dataclasses.replace(self, **changes)

    def effective_traffic(self):
        """The workload as a TrafficSpec: ``traffic`` if set, else the
        deprecated flat kwargs mapped onto the equivalent spec."""
        from repro.traffic.spec import resolve_traffic, spec_from_legacy

        if self.traffic is not None:
            return resolve_traffic(self.traffic)
        return spec_from_legacy(
            pattern=self.pattern,
            packet_bytes=self.packet_bytes,
            shift=self.shift,
            exclude_self=self.exclude_self,
            hot_port=self.hot_port,
            p_hot=self.p_hot,
        )

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["schema"] = WORKLOAD_SCHEMA
        if hasattr(self.fault_plan, "to_dict"):
            # Canonical schema-tagged form, so workload dicts round-trip
            # through resolve_plan().
            d["fault_plan"] = self.fault_plan.to_dict()
        if hasattr(self.traffic, "to_dict"):
            # Same for traffic specs and resolve_traffic().
            d["traffic"] = self.traffic.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadSpec":
        """Round-trip a :meth:`to_dict` form (schema-checked).

        Nested ``fault_plan`` / ``traffic`` dicts ride through as-is --
        ``resolve_plan()`` / ``resolve_traffic()`` normalize them at
        engine build time."""
        d = dict(d)
        schema = d.pop("schema", WORKLOAD_SCHEMA)
        if schema != WORKLOAD_SCHEMA:
            raise ValueError(
                f"workload schema is {schema!r}, expected {WORKLOAD_SCHEMA!r}"
            )
        unknown = set(d) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown workload fields: {sorted(unknown)}")
        return cls(**d)


@dataclass
class RunResult:
    """What any engine run measured, in one schema.

    ``latency`` is empty for engines that do not track per-packet
    latency (the fabric loop has no notion of a packet's arrival time);
    ``trace`` is a live :class:`~repro.sim.trace.Trace` handle when the
    run was traced, and is dropped by :meth:`to_dict` so results stay
    JSON- and pickle-friendly.
    """

    fidelity: str
    cycles: int
    delivered_packets: int
    delivered_words: int
    gbps: float
    mpps: float
    per_port_packets: List[int]
    latency: Dict[str, float] = field(default_factory=dict)
    config: Optional[SimConfig] = None
    workload: Optional[WorkloadSpec] = None
    trace: Any = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fidelity": self.fidelity,
            "cycles": self.cycles,
            "delivered_packets": self.delivered_packets,
            "delivered_words": self.delivered_words,
            "gbps": self.gbps,
            "mpps": self.mpps,
            "per_port_packets": list(self.per_port_packets),
            "latency": dict(self.latency),
            "config": self.config.to_dict() if self.config else None,
            "workload": self.workload.to_dict() if self.workload else None,
            "extra": dict(self.extra),
        }


@runtime_checkable
class Engine(Protocol):
    """The common engine contract: configure, then run workloads."""

    fidelity: str

    def configure(self, config: SimConfig) -> "Engine":
        """Bind a configuration; returns self for chaining."""
        ...

    def run(self, workload: WorkloadSpec) -> RunResult:
        """Simulate ``workload`` under the bound configuration."""
        ...


def _install_port_classes(workload: "WorkloadSpec", ports: int) -> None:
    """Thread ``TrafficSpec.classes`` into an active telemetry recorder
    so completed journeys also bucket under their traffic class."""
    from repro.telemetry import runtime as _telemetry

    tel = _telemetry.RECORDER
    if tel is None:
        return
    from repro.traffic.spec import resolve_traffic

    spec = resolve_traffic(workload.effective_traffic())
    if spec is not None and spec.classes:
        tel.journeys.set_port_classes(spec.port_class_labels(ports))


class _BaseEngine:
    fidelity = "?"

    def __init__(self, config: Optional[SimConfig] = None):
        self.config = config or SimConfig()

    def configure(self, config: SimConfig) -> "_BaseEngine":
        self.config = config
        return self

    # ------------------------------------------------------------------
    def _rng(self):
        import numpy as np

        return np.random.default_rng(self.config.seed)


class FabricEngine(_BaseEngine):
    """Quantum-level fidelity: :class:`~repro.core.fabricsim.FabricSimulator`."""

    fidelity = "fabric"

    #: Build counter-based models even for legacy specs.  The many-worlds
    #: scalar reference path (:mod:`repro.parallel.manyworlds`) flips this
    #: on: only counter-based draws vectorize, so its per-world scalar
    #: runs must consume the same streams the vectorized engine does.
    force_counter = False

    def _source(self, workload: WorkloadSpec):
        from repro.traffic.build import fabric_source

        return fabric_source(
            workload.effective_traffic(), self.config,
            force_counter=self.force_counter,
        )

    def run(self, workload: WorkloadSpec) -> RunResult:
        from repro.core.fabricsim import FabricSimulator
        from repro.core.ring import RingGeometry

        costs = self.config.cost_model()
        ring = RingGeometry(self.config.ports)
        from repro.core.allocator import Allocator

        allocator = Allocator(
            ring,
            networks=self.config.networks,
            cache_size=self.config.alloc_cache,
        )
        sim = FabricSimulator(
            ring=ring,
            allocator=allocator,
            pipelined=self.config.pipelined,
            costs=costs,
            fast_forward=self.config.fast_forward,
        )
        faults = sim.install_faults(workload.fault_plan)
        _install_port_classes(workload, self.config.ports)
        warmup = (
            workload.warmup_quanta
            if workload.warmup_quanta is not None
            else max(50, workload.quanta // 20)
        )
        stats = sim.run(
            self._source(workload),
            quanta=workload.quanta,
            warmup_quanta=warmup,
        )
        extra = {
            "quanta": stats.quanta,
            "idle_quanta": stats.idle_quanta,
            "blocked_events": stats.blocked_events,
            "mean_grants_per_quantum": stats.mean_grants_per_quantum,
        }
        if allocator.cache_enabled or self.config.fast_forward:
            info = allocator.cache_info() if allocator.cache_enabled else {}
            extra["fabric_fast_path"] = {
                "cache_hits": info.get("hits", 0),
                "cache_misses": info.get("misses", 0),
                "cache_hit_rate": info.get("hit_rate", 0.0),
                "ff_quanta": sim.ff_quanta,
            }
        if faults is not None:
            extra["resilience"] = faults.metrics.to_dict()
        return RunResult(
            fidelity=self.fidelity,
            cycles=stats.cycles,
            delivered_packets=stats.delivered_packets,
            delivered_words=stats.delivered_words,
            gbps=stats.gbps,
            mpps=stats.mpps,
            per_port_packets=list(stats.per_port_packets),
            latency={},  # the fabric loop does not track per-packet latency
            config=self.config,
            workload=workload,
            extra=extra,
        )


class SpaceEngine(_BaseEngine):
    """Multi-chip fidelity: a Clos of k-port crossbar chips run as
    space partitions (:mod:`repro.parallel.space_shard`).

    ``config.ports`` must be a perfect square ``k*k`` (the Clos wants
    ``3k`` chips of ``k`` ports); ``config.partitions`` workers advance
    ``config.link_latency``-quantum token windows.  A reusable warm
    :class:`~repro.parallel.space_shard.SpaceWorkerPool` can be bound
    via :attr:`pool` to amortize process setup across runs.
    """

    fidelity = "space"

    def __init__(self, config: Optional[SimConfig] = None):
        super().__init__(config)
        self.pool = None  #: optional warm SpaceWorkerPool
        #: Optional ``(part_id, state)`` callback receiving live worker
        #: telemetry snaps during distributed runs (``repro top`` wires
        #: its collector here).
        self.on_snapshot = None

    def _spec(self, workload: WorkloadSpec):
        import math

        from repro.core.spacetopo import build_topology
        from repro.faults.plan import resolve_plan
        from repro.parallel.space_shard import SpaceSpec, auto_partitions
        from repro.traffic.build import shard_source

        ports = self.config.ports
        k = math.isqrt(ports)
        if k * k != ports or k < 2:
            raise ValueError(
                f"space fidelity needs a square port count (k*k), got {ports}"
            )
        partitions = self.config.partitions
        if partitions == 0:
            # Adaptive: as many workers as the Clos's middle stage (= k
            # chips per block boundary cut) and the box's cores allow.
            partitions = auto_partitions(
                build_topology("clos", k, latency=self.config.link_latency)
            )
        source = shard_source(workload.effective_traffic(), seed=self.config.seed)
        warmup = (
            workload.warmup_quanta
            if workload.warmup_quanta is not None
            else max(50, workload.quanta // 20)
        )
        return SpaceSpec(
            k=k,
            latency=self.config.link_latency,
            partitions=partitions,
            costs=self.config.cost_model(),
            source=SpaceSpec.pack_source(source),
            quanta=workload.quanta,
            warmup_quanta=warmup,
            cache_size=self.config.alloc_cache,
            fault_plan=resolve_plan(workload.fault_plan),
        )

    def _check_fault_plan(self, spec) -> None:
        """Accept fault plans the space fabric can realize exactly:
        ``link_down`` events on channels that stay inside one partition.
        Boundary-channel faults are refused loudly -- a deferred arrival
        there would interact with the token-window framing that the
        stall/coalescing accounting assumes fault-free."""
        from repro.core.spacetopo import link_fault_windows

        if spec.fault_plan is None:
            return
        topo = spec.topology()
        windows = link_fault_windows(spec.fault_plan, len(topo.channels))
        boundary = {
            ch.cid
            for ch in topo.boundary_channels(topo.partition(spec.partitions))
        }
        bad = sorted(set(windows) & boundary)
        if bad:
            raise ValueError(
                f"fault plan targets cross-partition channel(s) {bad} at "
                f"partitions={spec.partitions}; the space engine only "
                "realizes faults on intra-partition links (lower "
                "--partitions or move the fault)"
            )

    def run(self, workload: WorkloadSpec) -> RunResult:
        from repro.parallel.space_shard import run_space

        spec = self._spec(workload)
        self._check_fault_plan(spec)
        _install_port_classes(workload, self.config.ports)
        stats, info = run_space(spec, pool=self.pool,
                                on_snapshot=self.on_snapshot,
                                transport=self.config.transport)
        info.partitions_auto = self.config.partitions == 0
        return RunResult(
            fidelity=self.fidelity,
            cycles=stats.cycles,
            delivered_packets=stats.delivered_packets,
            delivered_words=stats.delivered_words,
            gbps=stats.gbps,
            mpps=stats.mpps,
            per_port_packets=list(stats.per_port_packets),
            latency={},  # quantum-level loop; no per-packet latency
            config=self.config,
            workload=workload,
            extra={
                "quanta": stats.quanta,
                "idle_quanta": stats.idle_quanta,
                "blocked_events": stats.blocked_events,
                "space_shard": info.extra_dict(),
            },
        )


class RouterEngine(_BaseEngine):
    """Phase-level fidelity: the full pipelined :class:`RawRouter`."""

    fidelity = "router"
    warmup_cycles = 30_000

    def run(self, workload: WorkloadSpec) -> RunResult:
        from repro.router.router import RawRouter
        from repro.traffic.build import router_traffic

        router = RawRouter.from_config(self.config, warmup_cycles=self.warmup_cycles)
        router.install_faults(workload.fault_plan)
        _install_port_classes(workload, self.config.ports)
        spec = workload.effective_traffic()
        traffic, factory, offered_load = router_traffic(spec, self.config)
        target = workload.packets if workload.packets is not None else workload.quanta
        if offered_load is None:
            router.attach_saturated(traffic, factory)
        else:
            # Non-saturated arrivals: the kernel-process ingress treats a
            # None supply as end-of-stream, so sub-line-rate specs run
            # through the paced line-card sources at the process's mean
            # offered load instead of per-poll gating.  Deliveries inside
            # the warmup window are not measured, so each line card's
            # packet budget must cover the warmup burn plus its share of
            # the target (with slack for pacing jitter).
            costs = self.config.cost_model()
            mean_words = max(1, costs.bytes_to_words(int(spec.sizes.mean_bytes())))
            warmup_burn = int(self.warmup_cycles * offered_load / mean_words) + 1
            share = -(-target // self.config.ports)
            router.attach_linecards(
                traffic,
                factory,
                offered_load=offered_load,
                rng=self._rng(),
                packets_per_port=warmup_burn + share + max(8, share // 4),
            )
        result = router.run(target_packets=target)
        stats = router.stats
        bits = sum(stats.per_port_bits)
        extra = {
            "quanta": stats.quanta,
            "idle_quanta": stats.idle_quanta,
            "line_drops": stats.line_drops,
            "checksum_drops": stats.checksum_drops,
            "ttl_drops": stats.ttl_drops,
            "kernel_events": router.sim.events_processed,
        }
        if router.faults_on:
            extra["drops"] = stats.drop_taxonomy()
            extra["resilience"] = router.resilience.to_dict()
        return RunResult(
            fidelity=self.fidelity,
            cycles=result.cycles,
            delivered_packets=stats.delivered_packets,
            delivered_words=bits // costs_word_bits(router.costs),
            gbps=result.gbps,
            mpps=result.mpps,
            per_port_packets=list(stats.per_port_delivered),
            latency=stats.latency.summary(clock_hz=router.costs.clock_hz),
            config=self.config,
            workload=workload,
            extra=extra,
        )


class WordLevelEngine(_BaseEngine):
    """Word-level fidelity: every word crosses the simulated network.

    Restricted (like the underlying model) to the prototype's 4-port
    layout and single-quantum packets; two orders of magnitude slower
    than the other engines, so budgets are in cycles.
    """

    fidelity = "wordlevel"

    def run(self, workload: WorkloadSpec) -> RunResult:
        from repro.router.wordlevel import WordLevelRouter
        from repro.traffic.build import wordlevel_source

        if self.config.ports != 4:
            raise ValueError("the word-level model is fixed at 4 ports")
        costs = self.config.cost_model()
        _install_port_classes(workload, self.config.ports)
        source = wordlevel_source(workload.effective_traffic(), self.config)
        router = WordLevelRouter(source, costs=costs, faults=workload.fault_plan)
        res = router.run(
            until_cycles=workload.cycles, warmup_cycles=workload.warmup_cycles
        )
        extra = {
            "payload_errors": router.payload_errors,
            "kernel_events": router.chip.sim.events_processed,
        }
        if router.resilience is not None:
            extra["corrupt_drops"] = router.corrupt_drops
            extra["resilience"] = router.resilience.to_dict()
        return RunResult(
            fidelity=self.fidelity,
            cycles=res.cycles,
            delivered_packets=res.delivered_packets,
            delivered_words=res.delivered_words,
            gbps=res.gbps,
            mpps=res.mpps,
            per_port_packets=list(res.per_port_packets),
            latency={},
            config=self.config,
            workload=workload,
            trace=res.trace,
            extra=extra,
        )


def costs_word_bits(costs: CostModel) -> int:
    return costs.word_bits


ENGINES = {
    FabricEngine.fidelity: FabricEngine,
    SpaceEngine.fidelity: SpaceEngine,
    RouterEngine.fidelity: RouterEngine,
    WordLevelEngine.fidelity: WordLevelEngine,
}


def make_engine(config: SimConfig) -> Engine:
    """An engine of ``config.fidelity``, already configured."""
    try:
        cls = ENGINES[config.fidelity]
    except KeyError:
        raise ValueError(
            f"unknown fidelity {config.fidelity!r}; expected one of {tuple(ENGINES)}"
        ) from None
    return cls(config)


def run_config(config: SimConfig, workload: WorkloadSpec) -> RunResult:
    """Build the right engine for ``config`` and run ``workload``.

    This is the top-level function the sweep runner dispatches to
    ``multiprocessing`` workers (both arguments and the result pickle)."""
    return make_engine(config).run(workload)
