"""Fixed-size cells vs variable-length packets on a crossbar backplane.

Section 2.2.2's design argument: segmenting variable-length packets into
fixed cells lets the scheduler allocate the whole fabric every slot
(~100% usable bandwidth), while scheduling variable-length packets
directly -- holding an input-output connection for a packet's full
duration -- strands bandwidth on the waiting inputs/outputs and caps
system throughput around 60%.

Both backplanes here see the *same* packet arrival sequence; only the
transfer discipline differs.  ``CellModeBackplane`` chops packets into
cells and schedules per slot with a supplied matcher (iSLIP by default);
``PacketModeBackplane`` allocates free input/output pairs greedily at
packet boundaries and holds them for the packet duration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.baselines.schedulers import Scheduler, iSLIPScheduler
from repro.traffic.sizes import SizeDistribution

#: Cell payload in bytes (OC-rate backplanes use ~64-byte cells).
CELL_BYTES = 64


@dataclass
class BackplaneResult:
    slots: int
    delivered_cells: int
    delivered_packets: int
    num_ports: int

    @property
    def utilization(self) -> float:
        """Fraction of fabric slot capacity carrying data (saturated)."""
        return self.delivered_cells / (self.num_ports * self.slots) if self.slots else 0.0


class CellModeBackplane:
    """Packets segmented into cells; per-slot matching over VOQs."""

    def __init__(
        self,
        num_ports: int,
        sizes: SizeDistribution,
        rng: np.random.Generator,
        scheduler: Optional[Scheduler] = None,
    ):
        from repro.traffic.build import size_distribution

        self.n = num_ports
        self.sizes = size_distribution(sizes, rng)
        self.rng = rng
        self.scheduler = scheduler or iSLIPScheduler(num_ports, iterations=2)
        # voq[i][j]: deque of remaining-cells counters (one per packet).
        self.voq: List[List[Deque[int]]] = [
            [deque() for _ in range(num_ports)] for _ in range(num_ports)
        ]

    #: Per-input backlog (packets) maintained under saturation; with a
    #: few packets queued the VOQs expose real choices to the matcher,
    #: which is the whole point of segmentation + VOQ.
    BACKLOG = 8

    def _refill(self) -> None:
        for i in range(self.n):
            queued = sum(len(self.voq[i][j]) for j in range(self.n))
            while queued < self.BACKLOG:
                dst = int(self.rng.integers(0, self.n))
                cells = max(1, -(-self.sizes.next_size() // CELL_BYTES))
                self.voq[i][dst].append(cells)
                queued += 1

    def run(self, slots: int) -> BackplaneResult:
        delivered_cells = delivered_packets = 0
        for _ in range(slots):
            self._refill()
            requests = [
                [bool(self.voq[i][j]) for j in range(self.n)] for i in range(self.n)
            ]
            for i, j in self.scheduler.match(requests).items():
                q = self.voq[i][j]
                q[0] -= 1
                delivered_cells += 1
                if q[0] == 0:
                    q.popleft()
                    delivered_packets += 1
        return BackplaneResult(slots, delivered_cells, delivered_packets, self.n)


class PacketModeBackplane:
    """Variable-length packets hold their crossbar connection end to end."""

    def __init__(
        self,
        num_ports: int,
        sizes: SizeDistribution,
        rng: np.random.Generator,
    ):
        from repro.traffic.build import size_distribution

        self.n = num_ports
        self.sizes = size_distribution(sizes, rng)
        self.rng = rng
        self.head: List[Optional[Tuple[int, int]]] = [None] * num_ports  # (dst, cells)
        self.busy_in = [0] * num_ports  # remaining slots of the held transfer
        self.busy_out_until: List[int] = [0] * num_ports
        self._rr = 0

    def _refill(self, i: int) -> None:
        if self.head[i] is None:
            dst = int(self.rng.integers(0, self.n))
            cells = max(1, -(-self.sizes.next_size() // CELL_BYTES))
            self.head[i] = (dst, cells)

    def run(self, slots: int) -> BackplaneResult:
        delivered_cells = delivered_packets = 0
        t = 0
        out_busy = [0] * self.n  # slots remaining on each output
        in_busy = [0] * self.n
        for t in range(slots):
            for i in range(self.n):
                self._refill(i)
            # Start new transfers on idle input/output pairs, greedy RR.
            for k in range(self.n):
                i = (self._rr + k) % self.n
                if in_busy[i] > 0 or self.head[i] is None:
                    continue
                dst, cells = self.head[i]
                if out_busy[dst] > 0:
                    continue  # output busy with another packet: wait
                in_busy[i] = cells
                out_busy[dst] = cells
                self.head[i] = None
                delivered_packets += 1
            self._rr = (self._rr + 1) % self.n
            # Advance ongoing transfers one slot.
            for p in range(self.n):
                if in_busy[p] > 0:
                    in_busy[p] -= 1
                    delivered_cells += 1
                if out_busy[p] > 0:
                    out_busy[p] -= 1
        return BackplaneResult(slots, delivered_cells, delivered_packets, self.n)
