"""A Click-style modular software router (thesis section 2.4, Fig 7-1).

The thesis compares the Raw router against Click (Kohler et al., SOSP'99)
running on an Intel general-purpose processor, quoting ~0.23 Gbps.  This
module rebuilds the relevant slice of Click faithfully enough to *be*
the baseline rather than a constant: a graph of push/pull elements
processing real :class:`~repro.ip.packet.IPv4Packet` objects, with a
per-element cycle cost model for a ~700 MHz PC (per-packet overheads for
device access and header work, per-byte costs for the bus copies).  The
standard IP path -- FromDevice, Classifier, CheckIPHeader, LookupIPRoute,
DecIPTTL, Queue, ToDevice -- is assembled by :func:`standard_ip_router`.

Calibration: the element costs sum to ~1,560 cycles + 2 cycles/byte for
a minimal packet, i.e. ~449 kpps = 0.23 Gbps at 64 B on one 700 MHz CPU,
the number the thesis plots.  Because Click's cost is per *packet*, its
curve stays two orders of magnitude under the Raw router at every size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.ip.lookup import RoutingTable
from repro.ip.packet import IPv4Packet

#: The comparison machine: a ~700 MHz PC-class processor.
CLICK_CPU_HZ: float = 700e6


class ClickContext:
    """Run-time accumulator: CPU cycles spent, packets and drops."""

    def __init__(self):
        self.cycles = 0
        self.forwarded = 0
        self.dropped = 0
        self.counters: Dict[str, int] = {}

    def charge(self, cycles: int) -> None:
        self.cycles += cycles

    def count(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1


class Element:
    """A Click element: named ports, push/pull, per-packet cost."""

    n_inputs = 1
    n_outputs = 1
    #: Fixed cycles charged per packet traversing this element.
    cost_fixed = 0
    #: Additional cycles per payload byte (bus/memory copies).
    cost_per_byte = 0.0

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self._out: List[Optional[Tuple["Element", int]]] = [None] * self.n_outputs

    # -- wiring ----------------------------------------------------------
    def connect(self, out_port: int, downstream: "Element", in_port: int = 0) -> "Element":
        if not 0 <= out_port < self.n_outputs:
            raise ValueError(f"{self.name} has no output {out_port}")
        if not 0 <= in_port < downstream.n_inputs:
            raise ValueError(f"{downstream.name} has no input {in_port}")
        self._out[out_port] = (downstream, in_port)
        return downstream

    def output(self, ctx: ClickContext, pkt: IPv4Packet, out_port: int = 0) -> None:
        nxt = self._out[out_port]
        if nxt is None:
            raise RuntimeError(f"{self.name}: output {out_port} not connected")
        elem, in_port = nxt
        elem._enter(ctx, pkt, in_port)

    def _enter(self, ctx: ClickContext, pkt: IPv4Packet, in_port: int) -> None:
        ctx.charge(self.cost_fixed + int(self.cost_per_byte * pkt.total_length))
        self.push(ctx, pkt, in_port)

    # -- behaviour (override) ---------------------------------------------
    def push(self, ctx: ClickContext, pkt: IPv4Packet, in_port: int) -> None:
        self.output(ctx, pkt)

    def pull(self, ctx: ClickContext) -> Optional[IPv4Packet]:
        raise NotImplementedError(f"{self.name} is not pullable")


class FromDevice(Element):
    """Packet source: DMA ring read + buffer allocation."""

    cost_fixed = 540
    cost_per_byte = 1.0  # NIC -> memory copy over the bus

    def inject(self, ctx: ClickContext, pkt: IPv4Packet) -> None:
        self._enter(ctx, pkt, 0)


class Classifier(Element):
    """Two-way classify: IPv4 to output 0, everything else to output 1."""

    n_outputs = 2
    cost_fixed = 70

    def push(self, ctx, pkt, in_port):
        self.output(ctx, pkt, 0)  # the harness only generates IPv4


class CheckIPHeader(Element):
    """Checksum + sanity verification; bad packets out port 1."""

    n_outputs = 2
    cost_fixed = 140

    def push(self, ctx, pkt, in_port):
        if pkt.checksum_ok() and pkt.ttl > 0:
            self.output(ctx, pkt, 0)
        else:
            ctx.count("checkipheader_drop")
            self.output(ctx, pkt, 1)


class DecIPTTL(Element):
    """TTL decrement with incremental checksum; expired out port 1."""

    n_outputs = 2
    cost_fixed = 60

    def push(self, ctx, pkt, in_port):
        if pkt.ttl <= 1:
            ctx.count("ttl_expired")
            self.output(ctx, pkt, 1)
            return
        pkt.decrement_ttl()
        self.output(ctx, pkt, 0)


class LookupIPRoute(Element):
    """Longest-prefix-match against a routing table; fan out per port."""

    cost_fixed = 140

    def __init__(self, table: RoutingTable, num_ports: int, name=None):
        self.n_outputs = num_ports
        super().__init__(name)
        self.table = table

    def push(self, ctx, pkt, in_port):
        port, visits = self.table.lookup_with_path(pkt.dst)
        ctx.charge(20 * visits)  # dependent loads through the PC cache
        if port is None:
            ctx.count("no_route")
            return
        pkt.output_port = port
        self.output(ctx, pkt, port)


class Queue(Element):
    """Bounded FIFO between the push path and the pull path."""

    cost_fixed = 60

    def __init__(self, capacity: int = 512, name=None):
        super().__init__(name)
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._q: List[IPv4Packet] = []
        self.drops = 0

    def push(self, ctx, pkt, in_port):
        if len(self._q) >= self.capacity:
            self.drops += 1
            ctx.dropped += 1
            return
        self._q.append(pkt)

    def pull(self, ctx) -> Optional[IPv4Packet]:
        if not self._q:
            return None
        ctx.charge(60)
        return self._q.pop(0)


class ToDevice(Element):
    """Packet sink: queue pull + DMA to the NIC."""

    cost_fixed = 360
    cost_per_byte = 1.0  # memory -> NIC copy

    def __init__(self, upstream: Queue, on_deliver: Optional[Callable] = None, name=None):
        super().__init__(name)
        self.upstream = upstream
        self.on_deliver = on_deliver
        self.delivered = 0

    def step(self, ctx: ClickContext) -> bool:
        pkt = self.upstream.pull(ctx)
        if pkt is None:
            return False
        ctx.charge(self.cost_fixed + int(self.cost_per_byte * pkt.total_length))
        self.delivered += 1
        ctx.forwarded += 1
        if self.on_deliver is not None:
            self.on_deliver(pkt)
        return True


class Discard(Element):
    """Swallow packets (error paths)."""

    cost_fixed = 20

    def push(self, ctx, pkt, in_port):
        ctx.dropped += 1


@dataclass
class ClickResult:
    packets: int
    bits: int
    cycles: int
    cpu_hz: float = CLICK_CPU_HZ

    @property
    def seconds(self) -> float:
        return self.cycles / self.cpu_hz

    @property
    def gbps(self) -> float:
        return self.bits / self.seconds / 1e9 if self.cycles else 0.0

    @property
    def kpps(self) -> float:
        return self.packets / self.seconds / 1e3 if self.cycles else 0.0


class ClickRouter:
    """A configured element graph plus its run loop.

    Click on a uniprocessor alternates push work (packet arrival to
    queue) and pull work (queue to device); the run loop models its task
    scheduler: every injected packet is pushed through the graph, then
    output devices drain their queues.
    """

    def __init__(
        self,
        sources: List[FromDevice],
        sinks: List[ToDevice],
        cpu_hz: float = CLICK_CPU_HZ,
    ):
        self.sources = sources
        self.sinks = sinks
        self.cpu_hz = cpu_hz
        self.ctx = ClickContext()

    def process(self, input_port: int, pkt: IPv4Packet) -> None:
        """Push one packet in, then give each device a pull slot."""
        self.sources[input_port].inject(self.ctx, pkt)
        for sink in self.sinks:
            sink.step(self.ctx)

    def drain(self) -> None:
        progressing = True
        while progressing:
            progressing = any(sink.step(self.ctx) for sink in self.sinks)

    def result(self, bits: int) -> ClickResult:
        return ClickResult(
            packets=self.ctx.forwarded, bits=bits, cycles=self.ctx.cycles, cpu_hz=self.cpu_hz
        )

    def run_packets(self, packets: List[Tuple[int, IPv4Packet]]) -> ClickResult:
        """Forward a batch; returns the achieved forwarding rate."""
        bits = 0
        for port, pkt in packets:
            self.process(port, pkt)
        self.drain()
        bits = sum(p.total_length * 8 for _, p in packets)
        # Only forwarded packets count toward goodput.
        if self.ctx.forwarded != len(packets):
            per_pkt = bits // max(len(packets), 1)
            bits = per_pkt * self.ctx.forwarded
        return self.result(bits)


def standard_ip_router(
    num_ports: int = 4, table: Optional[RoutingTable] = None
) -> ClickRouter:
    """The canonical Click IP router configuration (Kohler et al. Fig 8,
    reduced to the L3 fast path the thesis's comparison exercises)."""
    table = table or RoutingTable.uniform_split(num_ports)
    sources: List[FromDevice] = []
    sinks: List[ToDevice] = []
    lookup = LookupIPRoute(table, num_ports)
    discard = Discard()
    for port in range(num_ports):
        src = FromDevice(name=f"FromDevice{port}")
        cls = Classifier(name=f"Classifier{port}")
        chk = CheckIPHeader(name=f"CheckIPHeader{port}")
        src.connect(0, cls)
        cls.connect(0, chk)
        cls.connect(1, discard)
        chk.connect(0, lookup)
        chk.connect(1, discard)
        sources.append(src)
    for port in range(num_ports):
        ttl = DecIPTTL(name=f"DecIPTTL{port}")
        q = Queue(name=f"Queue{port}")
        lookup.connect(port, ttl)
        ttl.connect(0, q)
        ttl.connect(1, discard)
        sinks.append(ToDevice(q, name=f"ToDevice{port}"))
    return ClickRouter(sources, sinks)
