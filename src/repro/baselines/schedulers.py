"""Crossbar matching schedulers (thesis section 2.2.2).

The Cisco 12000 GSR backplane runs iSLIP (McKeown): per-output grant
pointers and per-input accept pointers stepped round-robin, iterated a
few times per slot, desynchronizing under load so the match approaches
maximum size.  PIM (the older DEC scheme) replaces the pointers with
random choices.  Both operate on the VOQ occupancy matrix; the interface
is ``match(requests) -> {input: output}`` where ``requests[i][j]`` is
true when input ``i`` has a cell for output ``j``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np


class Scheduler:
    """Computes a conflict-free input/output matching each slot."""

    def __init__(self, num_ports: int):
        self.n = num_ports

    def match(self, requests: Sequence[Sequence[bool]]) -> Dict[int, int]:
        raise NotImplementedError


class iSLIPScheduler(Scheduler):
    """iSLIP with ``iterations`` request-grant-accept rounds.

    Pointers advance only for matches made in the *first* iteration
    (McKeown's rule), which is what gives iSLIP its desynchronization
    and 100% throughput under uniform traffic.
    """

    def __init__(self, num_ports: int, iterations: int = 1):
        super().__init__(num_ports)
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.iterations = iterations
        self.grant_ptr = [0] * num_ports  # per output
        self.accept_ptr = [0] * num_ports  # per input

    def match(self, requests: Sequence[Sequence[bool]]) -> Dict[int, int]:
        n = self.n
        matched_in: Dict[int, int] = {}
        matched_out: Dict[int, int] = {}
        for it in range(self.iterations):
            # Request: unmatched inputs request all outputs they queue for.
            # Grant: each unmatched output picks the requesting input
            # closest to its pointer.
            grants: Dict[int, List[int]] = {}
            for j in range(n):
                if j in matched_out:
                    continue
                chosen: Optional[int] = None
                for k in range(n):
                    i = (self.grant_ptr[j] + k) % n
                    if i not in matched_in and requests[i][j]:
                        chosen = i
                        break
                if chosen is not None:
                    grants.setdefault(chosen, []).append(j)
            # Accept: each input granted by several outputs picks the one
            # closest to its accept pointer.
            for i, offered in grants.items():
                best = None
                best_rank = n + 1
                for j in offered:
                    rank = (j - self.accept_ptr[i]) % n
                    if rank < best_rank:
                        best_rank = rank
                        best = j
                if best is None:
                    continue
                matched_in[i] = best
                matched_out[best] = i
                if it == 0:
                    self.grant_ptr[best] = (i + 1) % n
                    self.accept_ptr[i] = (best + 1) % n
        return matched_in


class PIMScheduler(Scheduler):
    """Parallel Iterative Matching: random grants and accepts."""

    def __init__(self, num_ports: int, iterations: int = 1, rng: Optional[np.random.Generator] = None):
        super().__init__(num_ports)
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.iterations = iterations
        self.rng = rng or np.random.default_rng(0)

    def match(self, requests: Sequence[Sequence[bool]]) -> Dict[int, int]:
        n = self.n
        matched_in: Dict[int, int] = {}
        matched_out: Dict[int, int] = {}
        for _ in range(self.iterations):
            grants: Dict[int, List[int]] = {}
            for j in range(n):
                if j in matched_out:
                    continue
                candidates = [
                    i for i in range(n) if i not in matched_in and requests[i][j]
                ]
                if candidates:
                    pick = candidates[int(self.rng.integers(0, len(candidates)))]
                    grants.setdefault(pick, []).append(j)
            for i, offered in grants.items():
                j = offered[int(self.rng.integers(0, len(offered)))]
                matched_in[i] = j
                matched_out[j] = i
        return matched_in


class RandomScheduler(Scheduler):
    """Single-iteration uniform-random matching (a weak baseline)."""

    def __init__(self, num_ports: int, rng: Optional[np.random.Generator] = None):
        super().__init__(num_ports)
        self.rng = rng or np.random.default_rng(0)

    def match(self, requests: Sequence[Sequence[bool]]) -> Dict[int, int]:
        n = self.n
        matched: Dict[int, int] = {}
        taken = set()
        order = list(self.rng.permutation(n))
        for i in order:
            options = [j for j in range(n) if requests[i][j] and j not in taken]
            if options:
                j = options[int(self.rng.integers(0, len(options)))]
                matched[i] = j
                taken.add(j)
        return matched
