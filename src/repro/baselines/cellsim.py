"""Slot-level cell-switch simulators: VOQ, FIFO, output-queued.

These reproduce the quantitative claims framing chapter 2: a FIFO
input-queued crossbar saturates at ~58.6% because of head-of-line
blocking, virtual output queueing with a good scheduler restores 100%,
and an output-queued switch is the (unimplementable-at-speed) ideal.
Time advances in cell slots; arrivals are Bernoulli with uniform
destinations; results report throughput (delivered cells per port per
slot) and mean cell delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

import numpy as np

from repro.baselines.schedulers import Scheduler


@dataclass
class SwitchResult:
    """Outcome of a slot-level switch run."""

    num_ports: int
    slots: int
    offered_load: float
    delivered: int
    delays_sum: int
    delay_samples: int
    dropped: int = 0

    @property
    def throughput(self) -> float:
        """Delivered cells per port per slot (1.0 = full line rate)."""
        return self.delivered / (self.num_ports * self.slots) if self.slots else 0.0

    @property
    def utilization(self) -> float:
        """Throughput normalized by offered load (goodput ratio)."""
        if self.offered_load == 0:
            return 0.0
        return min(1.0, self.throughput / self.offered_load)

    @property
    def mean_delay(self) -> float:
        return self.delays_sum / self.delay_samples if self.delay_samples else 0.0


class _BaseSwitch:
    def __init__(self, num_ports: int, rng: np.random.Generator, arrivals=None):
        if num_ports < 2:
            raise ValueError("need at least two ports")
        self.n = num_ports
        self.rng = rng
        if arrivals is None:
            # The historical shared-generator draw order (seeded
            # chapter-2 results depend on it).
            from repro.traffic.build import slot_arrivals

            arrivals = slot_arrivals(num_ports, rng)
        self.arrival_process = arrivals

    def _arrivals(self, load: float) -> List[Optional[int]]:
        """Per-input Bernoulli arrival with a uniform destination."""
        return self.arrival_process.slot(load)


class VOQSwitch(_BaseSwitch):
    """Virtual-output-queued crossbar driven by a matching scheduler."""

    def __init__(
        self,
        num_ports: int,
        scheduler: Scheduler,
        rng: np.random.Generator,
        arrivals=None,
    ):
        super().__init__(num_ports, rng, arrivals=arrivals)
        if scheduler.n != num_ports:
            raise ValueError("scheduler port count mismatch")
        self.scheduler = scheduler
        # voq[i][j] holds arrival slots of cells input i -> output j.
        self.voq: List[List[Deque[int]]] = [
            [deque() for _ in range(num_ports)] for _ in range(num_ports)
        ]

    def run(self, slots: int, load: float, warmup: int = 0) -> SwitchResult:
        delivered = delays = samples = 0
        for t in range(slots + warmup):
            for i, dst in enumerate(self._arrivals(load)):
                if dst is not None:
                    self.voq[i][dst].append(t)
            requests = [
                [bool(self.voq[i][j]) for j in range(self.n)] for i in range(self.n)
            ]
            for i, j in self.scheduler.match(requests).items():
                born = self.voq[i][j].popleft()
                if t >= warmup:
                    delivered += 1
                    delays += t - born
                    samples += 1
        return SwitchResult(
            num_ports=self.n,
            slots=slots,
            offered_load=load,
            delivered=delivered,
            delays_sum=delays,
            delay_samples=samples,
        )

    def occupancy(self) -> int:
        return sum(len(q) for row in self.voq for q in row)


class FIFOSwitch(_BaseSwitch):
    """Single FIFO per input: the head-of-line-blocked design.

    Output contention among the head cells is resolved round-robin.
    Saturated uniform throughput tends to 2 - sqrt(2) ~= 0.586 as N
    grows (Karol et al.), the number the thesis quotes via McKeown.
    """

    def __init__(self, num_ports: int, rng: np.random.Generator, arrivals=None):
        super().__init__(num_ports, rng, arrivals=arrivals)
        self.fifo: List[Deque[tuple]] = [deque() for _ in range(num_ports)]
        self._rr = 0

    def run(self, slots: int, load: float, warmup: int = 0) -> SwitchResult:
        delivered = delays = samples = 0
        for t in range(slots + warmup):
            for i, dst in enumerate(self._arrivals(load)):
                if dst is not None:
                    self.fifo[i].append((dst, t))
            # Heads contend; each output serves one head, chosen round-robin.
            taken_out = set()
            for k in range(self.n):
                i = (self._rr + k) % self.n
                if not self.fifo[i]:
                    continue
                dst, born = self.fifo[i][0]
                if dst in taken_out:
                    continue  # HOL blocking: the whole input stalls
                taken_out.add(dst)
                self.fifo[i].popleft()
                if t >= warmup:
                    delivered += 1
                    delays += t - born
                    samples += 1
            self._rr = (self._rr + 1) % self.n
        return SwitchResult(
            num_ports=self.n,
            slots=slots,
            offered_load=load,
            delivered=delivered,
            delays_sum=delays,
            delay_samples=samples,
        )


class OutputQueuedSwitch(_BaseSwitch):
    """The ideal: every arriving cell reaches its output queue at once.

    Needs N-fold memory speedup in hardware (why real backplanes use
    input queueing); here it bounds what any scheduler can achieve.
    """

    def __init__(self, num_ports: int, rng: np.random.Generator, arrivals=None):
        super().__init__(num_ports, rng, arrivals=arrivals)
        self.outq: List[Deque[int]] = [deque() for _ in range(num_ports)]

    def run(self, slots: int, load: float, warmup: int = 0) -> SwitchResult:
        delivered = delays = samples = 0
        for t in range(slots + warmup):
            for i, dst in enumerate(self._arrivals(load)):
                if dst is not None:
                    self.outq[dst].append(t)
            for j in range(self.n):
                if self.outq[j]:
                    born = self.outq[j].popleft()
                    if t >= warmup:
                        delivered += 1
                        delays += t - born
                        samples += 1
        return SwitchResult(
            num_ports=self.n,
            slots=slots,
            offered_load=load,
            delivered=delivered,
            delays_sum=delays,
            delay_samples=samples,
        )
