"""Baselines and case-study comparators.

* :mod:`repro.baselines.click` -- the Click modular software router on a
  general-purpose PC (the thesis's Fig 7-1 comparison point, ~0.23 Gbps).
* :mod:`repro.baselines.cellsim` / :mod:`repro.baselines.schedulers` --
  slot-level VOQ crossbar with iSLIP / PIM (the Cisco GSR backplane of
  section 2.2.2), the FIFO input-queued switch (HOL-limited to ~58.6%),
  and the ideal output-queued switch.
* :mod:`repro.baselines.cells` -- fixed-size cells versus variable-length
  packets across the backplane (the ~100% vs ~60% claim of section 2.2.2).
"""

from repro.baselines.click import (
    ClickRouter,
    ClickResult,
    standard_ip_router,
    CLICK_CPU_HZ,
)
from repro.baselines.schedulers import (
    iSLIPScheduler,
    PIMScheduler,
    RandomScheduler,
)
from repro.baselines.cellsim import (
    VOQSwitch,
    FIFOSwitch,
    OutputQueuedSwitch,
    SwitchResult,
)
from repro.baselines.cells import CellModeBackplane, PacketModeBackplane

__all__ = [
    "ClickRouter",
    "ClickResult",
    "standard_ip_router",
    "CLICK_CPU_HZ",
    "iSLIPScheduler",
    "PIMScheduler",
    "RandomScheduler",
    "VOQSwitch",
    "FIFOSwitch",
    "OutputQueuedSwitch",
    "SwitchResult",
    "CellModeBackplane",
    "PacketModeBackplane",
]
