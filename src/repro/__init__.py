"""raw-router: the Rotating Crossbar router on a simulated Raw processor.

Reproduction of Chuvpilo, *High-Bandwidth Packet Switching on the Raw
General-Purpose Architecture* (MIT MEng thesis 2002 / ICPP 2003).

Most users want one of:

* :class:`repro.router.RawRouter` -- the full 4-port (or N-port) router.
* :class:`repro.core.Allocator` -- the Rotating Crossbar allocation rule.
* :mod:`repro.experiments` -- regenerate any of the paper's tables/figures.
* :func:`repro.run_config` -- run any engine fidelity from a
  :class:`SimConfig` + :class:`WorkloadSpec` pair (what the sweep CLI
  fans across workers).

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.config import CostModel, SimConfig
from repro.engines import Engine, RunResult, WorkloadSpec, make_engine, run_config

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "CostModel",
    "SimConfig",
    "Engine",
    "RunResult",
    "WorkloadSpec",
    "make_engine",
    "run_config",
]
