"""raw-router: the Rotating Crossbar router on a simulated Raw processor.

Reproduction of Chuvpilo, *High-Bandwidth Packet Switching on the Raw
General-Purpose Architecture* (MIT MEng thesis 2002 / ICPP 2003).

Most users want one of:

* :class:`repro.router.RawRouter` -- the full 4-port (or N-port) router.
* :class:`repro.core.Allocator` -- the Rotating Crossbar allocation rule.
* :mod:`repro.experiments` -- regenerate any of the paper's tables/figures.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
