"""Command-line interface: regenerate any paper artifact from a shell.

::

    python -m repro list                 # what can be regenerated
    python -m repro run fig7_1_peak      # one experiment, full budget
    python -m repro run table6_1 --quick # reduced budget
    python -m repro all --quick          # everything
    python -m repro sweep --grid ports=4 quantum=256,512,1024 --workers 4

Benchmark timing is pytest-benchmark's job; this entry point is for
humans who want the tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablations,
    claims_ch2,
    compute_ext,
    fairness_qos,
    fig5_1,
    fig7_1,
    fig7_3,
    load_latency,
    lookup_ext,
    multicast_ext,
    multichip,
    resilience,
    scaling,
    table6_1,
)

#: name -> (description, full-budget runner, quick-budget runner)
REGISTRY: Dict[str, Tuple[str, Callable, Callable]] = {
    "fig7_1_peak": (
        "Fig 7-1 top: peak throughput vs packet size vs Click",
        lambda: fig7_1.run_peak(quanta=2000, click_packets=2000),
        lambda: fig7_1.run_peak(quanta=500, click_packets=400),
    ),
    "fig7_1_avg": (
        "Fig 7-1 bottom: average throughput (uniform traffic)",
        lambda: fig7_1.run_average(quanta=5000, click_packets=2000),
        lambda: fig7_1.run_average(quanta=1200, click_packets=400),
    ),
    "fig7_3": (
        "Fig 7-3: per-tile utilization timelines (word-level)",
        fig7_3.run,
        fig7_3.run,
    ),
    "fig5_1": (
        "Fig 5-1: the worked Rotating Crossbar example",
        fig5_1.run,
        fig5_1.run,
    ),
    "table6_1": (
        "Table 6.1 / ch.6: configuration space + minimization",
        table6_1.run,
        table6_1.run,
    ),
    "abl_networks": (
        "Ablation: second static network (sections 5.3/8.1)",
        lambda: ablations.run_second_network(quanta=3000),
        lambda: ablations.run_second_network(quanta=800),
    ),
    "abl_quantum": (
        "Ablation: crossbar transfer-block size (section 4.3)",
        lambda: ablations.run_quantum_size(quanta=3000),
        lambda: ablations.run_quantum_size(quanta=800),
    ),
    "abl_pipelining": (
        "Ablation: header/body overlap (sections 5.2/6.5)",
        lambda: ablations.run_pipelining(quanta=3000),
        lambda: ablations.run_pipelining(quanta=800),
    ),
    "hol_voq": (
        "Ch.2 claim: FIFO HOL limit vs VOQ/iSLIP vs OQ",
        lambda: claims_ch2.run_hol_voq(slots=15000, warmup=1500),
        lambda: claims_ch2.run_hol_voq(ports=(4, 16), slots=5000, warmup=500),
    ),
    "cells": (
        "Ch.2 claim: fixed cells vs variable-length packets",
        lambda: claims_ch2.run_cells_vs_packets(slots=25000),
        lambda: claims_ch2.run_cells_vs_packets(slots=8000),
    ),
    "islip": (
        "iSLIP/PIM convergence with iterations",
        lambda: claims_ch2.run_islip_iterations(slots=12000, warmup=1200),
        lambda: claims_ch2.run_islip_iterations(slots=4000, warmup=400),
    ),
    "fairness": (
        "Section 5.4: starvation bound under a hotspot",
        lambda: fairness_qos.run_fairness(quanta=4000),
        lambda: fairness_qos.run_fairness(quanta=1200),
    ),
    "qos": (
        "Section 8.7: weighted-token bandwidth shares",
        lambda: fairness_qos.run_qos(quanta=6000),
        lambda: fairness_qos.run_qos(quanta=2000),
    ),
    "multicast": (
        "Section 8.6: fabric multicast vs ingress replication",
        lambda: multicast_ext.run(quanta=3000),
        lambda: multicast_ext.run(quanta=1000),
    ),
    "scaling": (
        "Section 8.5: N-port scaling (neighbor vs antipodal), space "
        "Clos to N=64",
        lambda: scaling.run(quanta=2000),
        lambda: scaling.run(
            port_counts=(4, 8), quanta=600, space_port_counts=(16,),
            space_partitions=2,
        ),
    ),
    "multichip": (
        "Section 8.5: Clos of k-port crossbars vs one big ring "
        "(space-partitionable)",
        lambda: multichip.run(quanta=2000),
        lambda: multichip.run(quanta=500, partitions=2, latency=2),
    ),
    "lookup": (
        "Section 8.2: route-lookup structures on a tile",
        lambda: lookup_ext.run(table_sizes=(1000, 10000, 50000), lookups=2000),
        lambda: lookup_ext.run(table_sizes=(1000,), lookups=600),
    ),
    "load_latency": (
        "Extension: latency vs offered load (edge-router curve)",
        lambda: load_latency.run(packets_per_port=400),
        lambda: load_latency.run(loads=(0.3, 0.9), packets_per_port=120),
    ),
    "compute": (
        "Section 8.3: computation inside the switch fabric",
        lambda: compute_ext.run(quanta=2000),
        lambda: compute_ext.run(quanta=600),
    ),
    "resilience": (
        "Fault injection: MTTR, degraded goodput, drop taxonomy",
        resilience.run,
        resilience.run_quick,
    ),
}


def _cmd_list() -> int:
    width = max(len(name) for name in REGISTRY)
    for name, (desc, _, _) in REGISTRY.items():
        print(f"{name:<{width}}  {desc}")
    return 0


def _cmd_run(names, quick: bool) -> int:
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in names:
        _, full, fast = REGISTRY[name]
        result = (fast if quick else full)()
        print(result.to_text())
        print()
    return 0


def _cmd_bench(args) -> int:
    from repro import bench

    return bench.main(
        mode="quick" if args.quick else "full",
        engines=args.engines.split(",") if args.engines else None,
        repeats=args.repeats,
        out=args.out,
        set_baseline=args.set_baseline,
        check_only=args.check,
    )


def _cmd_chaos(args) -> int:
    from repro.experiments import resilience

    runner = resilience.run_quick if args.quick else resilience.run
    kwargs = dict(
        seed=args.seed, out=args.out, plan=args.plan, telemetry=args.telemetry
    )
    if args.worlds is not None:
        kwargs["worlds"] = args.worlds
    result = runner(**kwargs)
    print(result.to_text())
    print(f"wrote {args.out}")
    if args.check:
        failed = [c for c in result.checks if not c["passed"]]
        for c in failed:
            print(f"CHECK FAILED: {c['name']}: {c['detail']}", file=sys.stderr)
        return 1 if failed else 0
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import traced

    return traced.main(args)


def _cmd_sweep(args) -> int:
    from repro.config import SimConfig
    from repro.engines import WorkloadSpec
    from repro.sweep import parse_grid, run_sweep, summarize, write_results

    base_config = SimConfig(
        fidelity=args.fidelity,
        partitions=args.partitions,
        link_latency=args.link_latency,
        transport=args.transport,
    )
    base_workload = WorkloadSpec(
        pattern=args.pattern,
        packet_bytes=args.bytes,
        quanta=args.quanta,
        fault_plan=args.fault_plan,
        traffic=args.traffic,
    )
    try:
        table = run_sweep(
            parse_grid(args.grid),
            workers=args.workers,
            base_config=base_config,
            base_workload=base_workload,
            base_seed=args.seed,
            telemetry=args.telemetry,
            worlds=args.worlds,
        )
    except ValueError as exc:
        print(f"bad --grid: {exc}", file=sys.stderr)
        return 2
    write_results(table, args.out)
    print(summarize(table))
    print(f"wrote {args.out}")
    return 0


def _cmd_serve(args) -> int:
    from repro.parallel.space_shard import serve_worker
    from repro.parallel.transport import DEFAULT_AUTHKEY

    authkey = args.authkey.encode() if args.authkey else DEFAULT_AUTHKEY
    print(f"space worker: connecting to {args.address}", flush=True)
    try:
        rc = serve_worker(args.address, authkey=authkey)
    except ConnectionRefusedError:
        print(
            f"no coordinator listening on {args.address}; start a run "
            "with --transport socket:HOST:PORT first",
            file=sys.stderr,
        )
        return 1
    print("space worker: coordinator hung up, exiting", flush=True)
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the Raw router paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+", help="experiment names (see `list`)")
    run.add_argument("--quick", action="store_true", help="reduced budgets")
    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--quick", action="store_true")
    bench = sub.add_parser(
        "bench", help="wall-clock benchmark of the simulation engines"
    )
    bench.add_argument("--quick", action="store_true", help="CI smoke budgets")
    bench.add_argument(
        "--engines",
        "--engine",
        default=None,
        metavar="E1[,E2...]",
        help="comma-separated engine subset (default: all three kernel "
        "engines); 'fabric-large' selects the fabric fast-path suite, "
        "'manyworlds' the vectorized Monte Carlo suite, 'space' the "
        "space-partitioned distributed-Clos suite",
    )
    bench.add_argument("--repeats", type=int, default=1, help="best-of-N timing")
    bench.add_argument(
        "--out", default=None, help="results JSON (default benchmarks/BENCH_results.json)"
    )
    bench.add_argument(
        "--set-baseline",
        action="store_true",
        help="re-pin the stored baseline to this run",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="validate the results file schema and exit (no benchmarking)",
    )
    trace = sub.add_parser(
        "trace",
        help="run one experiment with telemetry on; export a Chrome/"
        "Perfetto trace plus stage-latency and kernel-profile tables",
    )
    trace.add_argument(
        "experiment",
        nargs="?",
        default="fig7_1_peak",
        help="traceable experiment (see repro.telemetry.traced.SPECS)",
    )
    trace.add_argument(
        "--out", default=None, metavar="TRACE.json",
        help="write the Chrome-trace JSON here (load in ui.perfetto.dev)",
    )
    trace.add_argument(
        "--packets", type=int, default=None, help="override the packet budget"
    )
    trace.add_argument(
        "--summary",
        action="store_true",
        help="also print metrics snapshot + first packet journeys",
    )
    trace.add_argument("--quick", action="store_true", help="CI smoke budget")
    trace.add_argument(
        "--check",
        action="store_true",
        help="self-check: schema, determinism, disabled-run identity, "
        "journey completeness, <=5%% disabled overhead",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--snapshot-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="metrics snapshot cadence (default 5000 cycles)",
    )
    trace.add_argument(
        "--bench-results",
        default=None,
        metavar="BENCH.json",
        help="bench results file for the overhead reference "
        "(default benchmarks/BENCH_results.json)",
    )
    trace.add_argument(
        "--stats-out",
        default=None,
        metavar="STATS.json",
        help="write the per-stage latency table as JSON "
        "(schema repro-trace-stats/1)",
    )
    trace.add_argument(
        "--baseline",
        default=None,
        metavar="OLD.json",
        help="diff this run's stage latencies against a prior --stats-out "
        "file and flag the biggest mover",
    )
    trace.add_argument(
        "--engine",
        default=None,
        choices=("router", "fabric", "space", "wordlevel"),
        help="override the spec's engine fidelity",
    )
    trace.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="P",
        help="space-engine worker count (P>1 merges per-worker telemetry)",
    )
    top = sub.add_parser(
        "top",
        help="live telemetry view: per-port/per-class/per-worker throughput,"
        " queue depth, and journey-latency tails while a run executes",
    )
    top.add_argument(
        "experiment",
        nargs="?",
        default="fig7_1_peak",
        help="traceable experiment (see repro.telemetry.traced.SPECS)",
    )
    top.add_argument(
        "--engine",
        default=None,
        choices=("router", "fabric", "space", "wordlevel"),
        help="override the spec's engine fidelity",
    )
    top.add_argument(
        "--partitions", type=int, default=None, metavar="P",
        help="space-engine worker count (adds per-worker rows)",
    )
    top.add_argument("--quick", action="store_true", help="CI smoke budget")
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="refresh period for the live table",
    )
    top.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N refreshes (0 = until the run ends)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="run to completion, render one final table, exit (no ANSI)",
    )
    replay = sub.add_parser(
        "replay",
        help="replay a recorded flow trace (.csv/.jsonl) through the "
        "fabric -- serial, sharded, and (4-port traces) word-level",
    )
    replay.add_argument("trace", help="flow-record trace: .csv or .jsonl")
    replay.add_argument("--quanta", type=int, default=600, help="fabric budget")
    replay.add_argument(
        "--cycles", type=int, default=24_000, help="word-level cycle budget"
    )
    replay.add_argument("--shards", type=int, default=4, help="time slices")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless serial reruns and the sharded run "
        "produce identical stats",
    )
    replay.add_argument(
        "--stats-out",
        default=None,
        metavar="STATS.json",
        help="write the replay stats document "
        "(schema repro-replay-stats/1)",
    )
    sweep = sub.add_parser(
        "sweep", help="fan a config grid across multiprocessing workers"
    )
    sweep.add_argument(
        "--grid",
        nargs="+",
        required=True,
        metavar="KEY=V1[,V2...]",
        help="grid axes over SimConfig / WorkloadSpec / CostModel fields "
        "(aliases: quantum, clock, fifo, engine, bytes)",
    )
    sweep.add_argument("--workers", type=int, default=1, help="pool size")
    sweep.add_argument(
        "--worlds",
        type=int,
        default=1,
        metavar="K",
        help="run every cell as a K-seed Monte Carlo batch through the "
        "vectorized many-worlds engine; rows gain mean ± 95%% CI "
        "envelopes (cells that cannot vectorize fall back to K scalar "
        "runs, with the reason recorded)",
    )
    sweep.add_argument("--out", default="sweep_results.json", help="JSON output path")
    sweep.add_argument("--seed", type=int, default=0, help="base seed")
    sweep.add_argument(
        "--fidelity",
        default="fabric",
        choices=("fabric", "space", "router", "wordlevel"),
        help="default engine for cells that do not sweep it",
    )
    sweep.add_argument(
        "--partitions",
        type=int,
        default=1,
        metavar="P",
        help="default space-engine worker count for cells that do not "
        "sweep it (0 = adaptive min(middle-stage chips, cpu_count); "
        "cells can also sweep `partitions=0,2,4` as an axis; only the "
        "`space` fidelity distributes)",
    )
    sweep.add_argument(
        "--link-latency",
        type=int,
        default=4,
        metavar="L",
        help="inter-chip channel latency in quanta for the space engine "
        "(= the token-window length)",
    )
    sweep.add_argument(
        "--transport",
        default="pipe",
        metavar="T",
        help="space-engine boundary transport: pipe (default), shm "
        "(shared-memory flit rings), socket (localhost TCP hub), or "
        "socket:HOST:PORT to wait for external `repro serve` workers "
        "(cells can also sweep `transport=pipe,shm` as an axis)",
    )
    sweep.add_argument(
        "--pattern",
        default="permutation",
        choices=("permutation", "uniform", "hotspot"),
        help="default traffic pattern",
    )
    sweep.add_argument("--bytes", type=int, default=1024, help="packet size")
    sweep.add_argument("--quanta", type=int, default=2000, help="routing quanta budget")
    sweep.add_argument(
        "--traffic",
        default=None,
        metavar="SPEC",
        help="declarative workload for every cell: a preset name "
        "(imix, imix_onoff, bursty, hotspot_drift, ...), a TrafficSpec "
        ".json path, or a .csv/.jsonl trace to replay; overrides "
        "--pattern/--bytes (cells can also sweep `traffic=...` as an axis)",
    )
    sweep.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="arm this fault plan in every cell (cells can still sweep "
        "`faults=planA.json,planB.json` as a grid axis)",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="enable telemetry in every worker; each cell's result "
        "carries a telemetry summary",
    )
    serve = sub.add_parser(
        "serve",
        help="run one space-fabric worker that serves partitions to a "
        "remote coordinator (a run started with "
        "--transport socket:HOST:PORT)",
    )
    serve.add_argument(
        "address",
        metavar="HOST:PORT",
        help="the coordinator's listen address",
    )
    serve.add_argument(
        "--authkey",
        default=None,
        metavar="KEY",
        help="shared secret for the connection (must match the "
        "coordinator; default: a well-known development key)",
    )
    chaos = sub.add_parser(
        "chaos", help="fault-injection scenarios: MTTR / goodput / drops"
    )
    chaos.add_argument("--quick", action="store_true", help="CI smoke budgets")
    chaos.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any resilience invariant fails",
    )
    chaos.add_argument(
        "--out",
        default="benchmarks/RESILIENCE_results.json",
        help="results JSON (schema repro-resilience/1)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--plan",
        default=None,
        metavar="PLAN.json",
        help="also run this fault-plan file as an extra scenario",
    )
    chaos.add_argument(
        "--worlds",
        type=int,
        default=None,
        metavar="K",
        help="size the many-worlds baseline envelope (default 200, "
        "64 with --quick; 0 disables the envelope and its checks)",
    )
    chaos.add_argument(
        "--telemetry",
        action="store_true",
        help="run scenarios with telemetry on; the results JSON gains "
        "per-scenario event/journey summaries",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names, args.quick)
    if args.command == "all":
        return _cmd_run(list(REGISTRY), args.quick)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        from repro.telemetry import top as top_mod

        return top_mod.main(args)
    if args.command == "replay":
        from repro.traffic import replay as replay_mod

        return replay_mod.main(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover
