"""Internet checksum (RFC 1071) and incremental update (RFC 1141/1624).

The Ingress Processor verifies the header checksum and, after
decrementing TTL, patches it incrementally instead of recomputing -- the
standard fast-path trick the thesis's 20-instruction header budget
assumes.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fold(value: int) -> int:
    """Fold carries until the value fits in 16 bits."""
    while value > 0xFFFF:
        value = (value & 0xFFFF) + (value >> 16)
    return value


def internet_checksum(halfwords: Iterable[int]) -> int:
    """One's-complement checksum over 16-bit words (checksum field = 0)."""
    total = 0
    for hw in halfwords:
        if not 0 <= hw <= 0xFFFF:
            raise ValueError(f"halfword {hw:#x} out of 16-bit range")
        total += hw
    return (~_fold(total)) & 0xFFFF


def verify_checksum(halfwords: Sequence[int]) -> bool:
    """True when a header *including its checksum field* sums to all-ones."""
    return _fold(sum(halfwords)) == 0xFFFF


def incremental_update(checksum: int, old_halfword: int, new_halfword: int) -> int:
    """RFC 1624 incremental checksum update: ``HC' = ~(~HC + ~m + m')``.

    One's-complement zero has two representations (0x0000 and 0xFFFF);
    a header carrying 0x0000 fails the all-ones verification when the
    rest of the header sums to zero, while 0xFFFF (= -0) verifies in
    every case, so the degenerate 0x0000 result is canonicalized to
    0xFFFF (the RFC 1624 section 4 discussion).
    """
    if not (0 <= checksum <= 0xFFFF and 0 <= old_halfword <= 0xFFFF and 0 <= new_halfword <= 0xFFFF):
        raise ValueError("checksum arithmetic operands must be 16-bit")
    total = (~checksum & 0xFFFF) + (~old_halfword & 0xFFFF) + new_halfword
    result = (~_fold(total)) & 0xFFFF
    return 0xFFFF if result == 0x0000 else result
