"""Non-blocking route lookup over the dynamic network (thesis section 8.2).

The thesis's argument for Raw as a lookup engine: network processors hide
memory latency with hardware threads, but "the Raw architecture is not
multi-threaded ... its exposed memory system allows for the same
advantages": the program sends read requests as dynamic-network messages
without stalling the cache, keeping several independent lookups in flight
while each lookup's own accesses stay serialized (a trie walk is a chain
of dependent loads).

:class:`LookupEngine` models exactly that: a stream of lookups, each a
chain of ``visits_per_lookup`` dependent memory reads of
``mem_latency_cycles`` each, issued by a single-issue processor that may
have up to ``max_outstanding`` reads in flight.  ``max_outstanding = 1``
is the blocking baseline (a conventional cached load); raising it is the
section-8.2 software-multithreading scheme.  The event-driven simulation
and the closed-form bound agree (tested), and the speedup saturates at
``min(max_outstanding, latency/issue)`` -- the claim, quantified.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.raw import costs


@dataclass(frozen=True)
class LookupEngineResult:
    lookups: int
    cycles: int
    visits_per_lookup: int
    max_outstanding: int

    @property
    def cycles_per_lookup(self) -> float:
        return self.cycles / self.lookups if self.lookups else float("inf")

    @property
    def mlookups_per_sec(self, clock_hz: float = costs.CLOCK_HZ) -> float:
        return costs.CLOCK_HZ / self.cycles_per_lookup / 1e6


class LookupEngine:
    """Single tile processor walking many independent lookup chains."""

    def __init__(
        self,
        visits_per_lookup: int = 3,
        mem_latency_cycles: int = costs.CACHE_MISS_CYCLES,
        issue_cycles: int = 4,
        max_outstanding: int = 1,
    ):
        if visits_per_lookup < 1:
            raise ValueError("a lookup needs at least one memory visit")
        if mem_latency_cycles < 1 or issue_cycles < 1:
            raise ValueError("latencies must be positive")
        if max_outstanding < 1:
            raise ValueError("need at least one outstanding request")
        self.visits = visits_per_lookup
        self.latency = mem_latency_cycles
        self.issue = issue_cycles
        self.window = max_outstanding

    # ------------------------------------------------------------------
    def simulate(self, lookups: int) -> LookupEngineResult:
        """Event-driven run of ``lookups`` independent chains."""
        if lookups < 1:
            raise ValueError("need at least one lookup")
        next_new = 0  # index of the next not-yet-started lookup
        remaining = {}  # active lookup -> visits left after the inflight one
        completions = []  # (ready_cycle, lookup id)
        now = 0
        inflight = 0
        done = 0
        while done < lookups:
            # Issue while the window allows: continue a ready chain or
            # start a new one.
            issued = False
            if inflight < self.window:
                if next_new < lookups:
                    now += self.issue
                    heapq.heappush(completions, (now + self.latency, next_new))
                    remaining[next_new] = self.visits - 1
                    next_new += 1
                    inflight += 1
                    issued = True
            if not issued:
                # Nothing issuable: retire the earliest completion.
                ready, lookup = heapq.heappop(completions)
                now = max(now, ready)
                inflight -= 1
                if remaining[lookup] > 0:
                    # Dependent next access of the same lookup.
                    now += self.issue
                    heapq.heappush(completions, (now + self.latency, lookup))
                    remaining[lookup] -= 1
                    inflight += 1
                else:
                    del remaining[lookup]
                    done += 1
        return LookupEngineResult(
            lookups=lookups,
            cycles=now,
            visits_per_lookup=self.visits,
            max_outstanding=self.window,
        )

    # ------------------------------------------------------------------
    def bound_cycles_per_lookup(self) -> float:
        """Closed-form steady-state cost per lookup.

        A lookup's critical path is ``visits x (issue + latency)``; with
        ``W`` chains interleaved the processor amortizes it W-fold, but
        can never beat the issue bandwidth (``visits x issue``):

            max(visits*(issue+latency)/W, visits*issue)
        """
        serial = self.visits * (self.issue + self.latency)
        issue_bound = self.visits * self.issue
        return max(serial / self.window, issue_bound)

    def speedup_over_blocking(self) -> float:
        blocking = LookupEngine(
            self.visits, self.latency, self.issue, max_outstanding=1
        )
        return (
            blocking.bound_cycles_per_lookup() / self.bound_cycles_per_lookup()
        )
