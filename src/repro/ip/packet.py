"""IPv4 packets serialized as 32-bit words.

The Raw static network moves 32-bit words, so the packet representation
is word-oriented: a 5-word IPv4 header (no options on the fast path)
followed by payload words.  ``to_words``/``from_words`` round-trip, the
checksum helpers implement verification and the incremental TTL patch,
and ``synthesize`` builds deterministic test/benchmark packets of any
size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum
from typing import List, Sequence, Tuple

from repro.ip.checksum import incremental_update, internet_checksum, verify_checksum

#: IPv4 header without options, in 32-bit words.
HEADER_WORDS_IPV4 = 5
HEADER_BYTES_IPV4 = HEADER_WORDS_IPV4 * 4
MAX_TOTAL_LENGTH = 0xFFFF


class PacketField(IntEnum):
    """Word indices of header fields (for the tile programs' bit games)."""

    VERSION_IHL_TOS_LEN = 0
    IDENT_FLAGS_FRAG = 1
    TTL_PROTO_CSUM = 2
    SRC = 3
    DST = 4


@dataclass
class IPv4Packet:
    """A mutable IPv4 packet. All multi-byte fields are host integers."""

    src: int
    dst: int
    ttl: int = 64
    protocol: int = 17  # UDP-ish; the router never looks past L3
    ident: int = 0
    tos: int = 0
    flags: int = 0
    frag_offset: int = 0
    checksum: int = 0
    payload: Tuple[int, ...] = ()
    #: metadata stamped by the harness, not serialized:
    arrival_cycle: int = -1
    departure_cycle: int = -1
    input_port: int = -1
    output_port: int = -1

    # ------------------------------------------------------------------
    @property
    def total_length(self) -> int:
        return HEADER_BYTES_IPV4 + 4 * len(self.payload)

    @property
    def total_words(self) -> int:
        return HEADER_WORDS_IPV4 + len(self.payload)

    def header_halfwords(self, zero_checksum: bool = False) -> List[int]:
        """The ten 16-bit header fields, in wire order."""
        version_ihl = (4 << 4) | 5
        return [
            (version_ihl << 8) | self.tos,
            self.total_length,
            self.ident,
            (self.flags << 13) | self.frag_offset,
            (self.ttl << 8) | self.protocol,
            0 if zero_checksum else self.checksum,
            (self.src >> 16) & 0xFFFF,
            self.src & 0xFFFF,
            (self.dst >> 16) & 0xFFFF,
            self.dst & 0xFFFF,
        ]

    def fill_checksum(self) -> "IPv4Packet":
        """Compute and store the header checksum; returns self."""
        self.checksum = internet_checksum(self.header_halfwords(zero_checksum=True))
        return self

    def checksum_ok(self) -> bool:
        return verify_checksum(self.header_halfwords())

    def decrement_ttl(self) -> None:
        """TTL-1 with the RFC 1624 incremental checksum patch."""
        if self.ttl <= 0:
            raise ValueError("TTL already zero; packet should have been dropped")
        old = (self.ttl << 8) | self.protocol
        self.ttl -= 1
        new = (self.ttl << 8) | self.protocol
        self.checksum = incremental_update(self.checksum, old, new)

    # ------------------------------------------------------------------
    def to_words(self) -> List[int]:
        """Serialize to 32-bit words (header then payload)."""
        hw = self.header_halfwords()
        header = [
            (hw[0] << 16) | hw[1],
            (hw[2] << 16) | hw[3],
            (hw[4] << 16) | hw[5],
            (hw[6] << 16) | hw[7],
            (hw[8] << 16) | hw[9],
        ]
        return header + list(self.payload)

    @classmethod
    def from_words(cls, words: Sequence[int]) -> "IPv4Packet":
        """Parse a word sequence produced by :meth:`to_words`."""
        if len(words) < HEADER_WORDS_IPV4:
            raise ValueError("truncated IPv4 header")
        w = list(words)
        version = (w[0] >> 28) & 0xF
        if version != 4:
            raise ValueError(f"not an IPv4 packet (version={version})")
        ihl = (w[0] >> 24) & 0xF
        if ihl != 5:
            raise ValueError("IP options are not supported on the fast path")
        total_length = w[0] & 0xFFFF
        expected_words = (total_length + 3) // 4
        if expected_words != len(w):
            raise ValueError(
                f"length field says {expected_words} words, got {len(w)}"
            )
        pkt = cls(
            tos=(w[0] >> 16) & 0xFF,
            ident=(w[1] >> 16) & 0xFFFF,
            flags=(w[1] >> 13) & 0x7,
            frag_offset=w[1] & 0x1FFF,
            ttl=(w[2] >> 24) & 0xFF,
            protocol=(w[2] >> 16) & 0xFF,
            checksum=w[2] & 0xFFFF,
            src=w[3],
            dst=w[4],
            payload=tuple(w[HEADER_WORDS_IPV4:]),
        )
        return pkt

    # ------------------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        src: int,
        dst: int,
        size_bytes: int,
        ident: int = 0,
        ttl: int = 64,
    ) -> "IPv4Packet":
        """Build a checksummed packet of ``size_bytes`` (word-aligned).

        Payload words carry a deterministic pattern derived from
        ``ident`` so that egress reassembly and in-fabric computation can
        be verified end to end.
        """
        if size_bytes < HEADER_BYTES_IPV4:
            raise ValueError(f"packet must be >= {HEADER_BYTES_IPV4} bytes")
        if size_bytes % 4:
            raise ValueError("packet size must be word-aligned")
        if size_bytes > MAX_TOTAL_LENGTH:
            raise ValueError("packet exceeds IPv4 maximum length")
        n_payload = size_bytes // 4 - HEADER_WORDS_IPV4
        payload = tuple(((ident * 2654435761) + i * 0x9E3779B9) & 0xFFFFFFFF for i in range(n_payload))
        pkt = cls(src=src, dst=dst, ttl=ttl, ident=ident & 0xFFFF, payload=payload)
        return pkt.fill_checksum()

    def copy(self) -> "IPv4Packet":
        return replace(self)
