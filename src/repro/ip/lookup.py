"""Routing tables: Patricia-backed and Degermark-compressed.

:class:`RoutingTable` is the forwarding structure the Lookup Processors
consult (thesis Fig 4-1: one per port, with the table in off-chip
memory).  :class:`CompressedTable` is the multibit-stride "small
forwarding tables" design (Degermark et al., SIGCOMM'97) the thesis
proposes for core-router lookups (section 8.2): at most three dependent
memory accesses per lookup regardless of table size.
:class:`LookupCostModel` converts either structure's access pattern into
Raw tile cycles through the cache model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.ip.addr import ADDR_BITS, Prefix
from repro.ip.trie import PatriciaTrie
from repro.raw.memory import DataCache


class RoutingTable:
    """Longest-prefix-match table mapping prefixes to output ports."""

    def __init__(self, default_port: Optional[int] = None):
        self._trie = PatriciaTrie()
        self.default_port = default_port

    def __len__(self) -> int:
        return len(self._trie)

    def add_route(self, prefix: Prefix, port: int) -> None:
        if port < 0:
            raise ValueError("output port must be non-negative")
        self._trie.insert(prefix, port)

    def remove_route(self, prefix: Prefix) -> bool:
        return self._trie.delete(prefix)

    def lookup(self, addr: int) -> Optional[int]:
        port = self._trie.lookup(addr)
        return self.default_port if port is None else port

    def lookup_with_path(self, addr: int) -> Tuple[Optional[int], int]:
        """(port, node visits) -- visits drive the lookup cost model."""
        port, visits = self._trie.lookup_with_path(addr)
        return (self.default_port if port is None else port), visits

    def routes(self) -> List[Tuple[Prefix, int]]:
        return list(self._trie.items())

    @classmethod
    def from_routes(
        cls, routes: Iterable[Tuple[Prefix, int]], default_port: Optional[int] = None
    ) -> "RoutingTable":
        table = cls(default_port=default_port)
        for prefix, port in routes:
            table.add_route(prefix, port)
        return table

    @classmethod
    def uniform_split(cls, num_ports: int) -> "RoutingTable":
        """A tiny table splitting the address space evenly over the ports.

        This is the edge-router configuration the throughput experiments
        use -- route decision is constant-cost so the switch fabric is
        the measured quantity, matching the thesis's evaluation setup.
        """
        if num_ports < 1 or (num_ports & (num_ports - 1)):
            raise ValueError("num_ports must be a power of two")
        bits = num_ports.bit_length() - 1
        table = cls()
        for port in range(num_ports):
            table.add_route(Prefix(port << (ADDR_BITS - bits) if bits else 0, bits), port)
        return table


class CompressedTable:
    """16-8-8 multibit-stride forwarding table (Degermark-style).

    Level 1 is a 2^16-entry array indexed by the top 16 address bits;
    entries either resolve directly to a port or point at a 2^8-entry
    level-2 chunk, which may point at a level-3 chunk.  Lookup touches at
    most three memory locations -- the property that makes it fit a
    cache-constrained tile.
    """

    STRIDES = (16, 8, 8)

    def __init__(self, default_port: int = 0):
        self.default_port = default_port
        self._l1 = np.full(1 << 16, -1, dtype=np.int32)
        self._chunks: List[np.ndarray] = []  # level-2/3 chunks, 256 entries
        self._chunk_level: List[int] = []
        self._route_count = 0

    def __len__(self) -> int:
        return self._route_count

    # Encoding: entry >= 0 -> port; entry < -1 -> chunk index -(entry+2).
    @staticmethod
    def _as_chunk(idx: int) -> int:
        return -(idx + 2)

    @staticmethod
    def _chunk_index(entry: int) -> int:
        return -(entry) - 2

    def _new_chunk(self, fill: int, level: int) -> int:
        chunk = np.full(256, fill, dtype=np.int32)
        self._chunks.append(chunk)
        self._chunk_level.append(level)
        return len(self._chunks) - 1

    def build(self, routes: Iterable[Tuple[Prefix, int]]) -> "CompressedTable":
        """Populate from routes (shorter prefixes first = correct overrides)."""
        for prefix, port in sorted(routes, key=lambda r: r[0].length):
            self._insert(prefix, port)
            self._route_count += 1
        return self

    def _insert(self, prefix: Prefix, port: int) -> None:
        addr, plen = prefix.address, prefix.length
        top = addr >> 16
        if plen <= 16:
            span = 1 << (16 - plen)
            for i in range(top, top + span):
                entry = self._l1[i]
                if entry < -1:  # existing chunk: overwrite its default slots
                    self._fill_chunk(self._chunk_index(entry), port, overwrite_only=True)
                else:
                    self._l1[i] = port
            return
        entry = int(self._l1[top])
        if entry < -1:
            chunk_idx = self._chunk_index(entry)
        else:
            chunk_idx = self._new_chunk(entry if entry >= 0 else -1, level=2)
            self._l1[top] = self._as_chunk(chunk_idx)
        mid = (addr >> 8) & 0xFF
        if plen <= 24:
            span = 1 << (24 - plen)
            chunk = self._chunks[chunk_idx]
            for i in range(mid, mid + span):
                sub = int(chunk[i])
                if sub < -1:
                    self._fill_chunk(self._chunk_index(sub), port, overwrite_only=True)
                else:
                    chunk[i] = port
            return
        chunk = self._chunks[chunk_idx]
        sub = int(chunk[mid])
        if sub < -1:
            leaf_idx = self._chunk_index(sub)
        else:
            leaf_idx = self._new_chunk(sub if sub >= 0 else -1, level=3)
            chunk[mid] = self._as_chunk(leaf_idx)
        low = addr & 0xFF
        span = 1 << (32 - plen)
        leaf = self._chunks[leaf_idx]
        leaf[low : low + span] = port

    def _fill_chunk(self, chunk_idx: int, port: int, overwrite_only: bool) -> None:
        chunk = self._chunks[chunk_idx]
        mask = chunk == -1
        chunk[mask] = port
        if self._chunk_level[chunk_idx] == 2:
            for i in np.nonzero(chunk < -1)[0]:
                self._fill_chunk(self._chunk_index(int(chunk[i])), port, overwrite_only)

    def lookup(self, addr: int) -> int:
        port, _ = self.lookup_with_path(addr)
        return port

    def lookup_with_path(self, addr: int) -> Tuple[int, int]:
        """(port, memory touches); touches <= 3 by construction."""
        entry = int(self._l1[addr >> 16])
        touches = 1
        if entry >= -1:
            return (entry if entry >= 0 else self.default_port), touches
        chunk = self._chunks[self._chunk_index(entry)]
        entry = int(chunk[(addr >> 8) & 0xFF])
        touches += 1
        if entry >= -1:
            return (entry if entry >= 0 else self.default_port), touches
        leaf = self._chunks[self._chunk_index(entry)]
        entry = int(leaf[addr & 0xFF])
        touches += 1
        return (entry if entry >= 0 else self.default_port), touches

    def memory_bytes(self) -> int:
        """Structure footprint (the paper's motivation: fit near the tile)."""
        return self._l1.nbytes + sum(c.nbytes for c in self._chunks)


@dataclass
class LookupCostModel:
    """Prices a lookup in Raw tile cycles.

    Each node/array visit is a dependent load: a cache hit costs the
    3-cycle load-to-use latency plus a couple of instructions to extract
    and branch; a miss stalls for the dynamic-network memory round trip.
    """

    cache: DataCache
    instr_per_visit: int = 4  #: extract bits, compare, branch (unrolled)
    fixed_overhead: int = 8  #: header field extraction + result write

    def cost(self, visits: int, node_addrs: Iterable[int]) -> int:
        cycles = self.fixed_overhead + visits * self.instr_per_visit
        for addr in node_addrs:
            cycles += self.cache.access_latency(addr)
        return cycles

    def cost_uniform(self, visits: int, hit_rate: float) -> float:
        """Expected cycles given a flat per-visit hit probability."""
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must be in [0, 1]")
        per_visit = (
            hit_rate * self.cache.hit_cycles + (1 - hit_rate) * self.cache.miss_cycles
        )
        return self.fixed_overhead + visits * (self.instr_per_visit + per_visit)
