"""IP substrate: packets, checksums, longest-prefix-match lookup.

The router forwards real IPv4 packets: :mod:`repro.ip.packet` builds and
parses headers word-by-word (the unit the Raw static network moves),
:mod:`repro.ip.checksum` implements the Internet checksum with the
incremental-update rule used when decrementing TTL (RFC 1141),
:mod:`repro.ip.trie` is a Patricia/radix tree for longest-prefix match
(the thesis cites Morrison's PATRICIA as the traditional structure), and
:mod:`repro.ip.lookup` layers routing tables on top, including the
Degermark et al. "small forwarding tables" compression the thesis points
to for core-router lookups (section 8.2).
"""

from repro.ip.addr import ip_to_int, int_to_ip, Prefix, random_prefixes
from repro.ip.checksum import internet_checksum, incremental_update, verify_checksum
from repro.ip.packet import IPv4Packet, PacketField, HEADER_WORDS_IPV4
from repro.ip.trie import PatriciaTrie
from repro.ip.lookup import RoutingTable, CompressedTable, LookupCostModel
from repro.ip.fragment import fragment_words, Reassembler, Fragment
from repro.ip.nblookup import LookupEngine, LookupEngineResult

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "Prefix",
    "random_prefixes",
    "internet_checksum",
    "incremental_update",
    "verify_checksum",
    "IPv4Packet",
    "PacketField",
    "HEADER_WORDS_IPV4",
    "PatriciaTrie",
    "RoutingTable",
    "CompressedTable",
    "LookupCostModel",
    "fragment_words",
    "Reassembler",
    "Fragment",
    "LookupEngine",
    "LookupEngineResult",
]
