"""IPv4 addresses and prefixes as plain integers.

Everything downstream (tries, tables, packets) works on 32-bit ints --
no per-address object allocation on the lookup fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

ADDR_BITS = 32
ADDR_MASK = 0xFFFFFFFF


def ip_to_int(dotted: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {part!r} out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad."""
    if not 0 <= value <= ADDR_MASK:
        raise ValueError(f"address {value:#x} out of 32-bit range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """A routing prefix ``address/length`` with a canonicalized address."""

    address: int
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= ADDR_BITS:
            raise ValueError(f"prefix length {self.length} out of range")
        masked = self.address & self.mask
        if masked != self.address:
            object.__setattr__(self, "address", masked)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (ADDR_MASK << (ADDR_BITS - self.length)) & ADDR_MASK

    def matches(self, addr: int) -> bool:
        return (addr & self.mask) == self.address

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (bare addresses get /32)."""
        if "/" in text:
            addr, _, length = text.partition("/")
            return cls(ip_to_int(addr), int(length))
        return cls(ip_to_int(text), ADDR_BITS)

    def __str__(self) -> str:
        return f"{int_to_ip(self.address)}/{self.length}"

    def random_member(self, rng: np.random.Generator) -> int:
        """A uniformly random address covered by this prefix."""
        host_bits = ADDR_BITS - self.length
        if host_bits == 0:
            return self.address
        return self.address | int(rng.integers(0, 1 << host_bits))


def random_prefixes(
    n: int,
    rng: Optional[np.random.Generator] = None,
    min_len: int = 8,
    max_len: int = 24,
) -> List[Prefix]:
    """Generate ``n`` distinct random prefixes with BGP-like length skew.

    Real tables are dominated by /16-/24 with a mode at /24; we draw
    lengths from a triangular-ish distribution over ``[min_len, max_len]``
    weighted toward the long end, which is what the lookup benchmarks
    need (deep tries with realistic branching).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if min_len > max_len:
        raise ValueError("min_len must be <= max_len")
    lengths = np.arange(min_len, max_len + 1)
    weights = (lengths - min_len + 1).astype(float)
    weights /= weights.sum()
    seen = set()
    out: List[Prefix] = []
    while len(out) < n:
        length = int(rng.choice(lengths, p=weights))
        addr = int(rng.integers(0, 1 << ADDR_BITS, dtype=np.uint64))
        p = Prefix(addr, length)
        key = (p.address, p.length)
        if key not in seen:
            seen.add(key)
            out.append(p)
    return out
