"""Internal fragmentation across the Rotating Crossbar.

Packets larger than the tile-to-tile transfer block are fragmented by
the Ingress Processor and reassembled by the Egress Processor (thesis
section 4.2/4.3).  These are *internal* fragments -- crossbar quanta --
not IP fragments: each carries (packet id, index, count) so the egress
can rebuild the packet in order even when other inputs' fragments
interleave between its quanta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Fragment:
    """One crossbar quantum's worth of a packet."""

    packet_id: int  #: unique per (input port, packet)
    index: int  #: fragment sequence number, 0-based
    count: int  #: total fragments of this packet
    words: Tuple[int, ...]

    def __post_init__(self):
        if not 0 <= self.index < self.count:
            raise ValueError("fragment index out of range")
        if not self.words:
            raise ValueError("empty fragment")

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1


def fragment_words(
    words: Sequence[int], max_words: int, packet_id: int
) -> List[Fragment]:
    """Split a packet's words into quanta of at most ``max_words``."""
    if max_words < 1:
        raise ValueError("max_words must be >= 1")
    if not words:
        raise ValueError("cannot fragment an empty packet")
    count = (len(words) + max_words - 1) // max_words
    return [
        Fragment(
            packet_id=packet_id,
            index=i,
            count=count,
            words=tuple(words[i * max_words : (i + 1) * max_words]),
        )
        for i in range(count)
    ]


class Reassembler:
    """Egress-side fragment collector.

    ``push`` returns the complete word sequence when the final missing
    fragment of a packet arrives, else None.  Fragments of different
    packets may interleave arbitrarily; fragments of one packet arrive
    in order (FIFO delivery through the crossbar) but the class tolerates
    reordering, which the property tests exercise.
    """

    def __init__(self):
        self._pending: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self._counts: Dict[int, int] = {}
        self.completed = 0

    def push(self, frag: Fragment) -> Optional[List[int]]:
        known = self._counts.setdefault(frag.packet_id, frag.count)
        if known != frag.count:
            raise ValueError(
                f"packet {frag.packet_id}: inconsistent fragment count "
                f"({frag.count} != {known})"
            )
        parts = self._pending.setdefault(frag.packet_id, {})
        if frag.index in parts:
            raise ValueError(
                f"packet {frag.packet_id}: duplicate fragment {frag.index}"
            )
        parts[frag.index] = frag.words
        if len(parts) < frag.count:
            return None
        words: List[int] = []
        for i in range(frag.count):
            words.extend(parts[i])
        del self._pending[frag.packet_id]
        del self._counts[frag.packet_id]
        self.completed += 1
        return words

    @property
    def in_flight(self) -> int:
        return len(self._pending)
