"""PATRICIA (path-compressed radix) trie for longest-prefix match.

The thesis notes that "traditional implementations of routing tables use
a version of Patricia trees with modifications for longest prefix
matching" (section 2.1).  This is that structure: a binary radix tree
with edge-label compression, supporting insert/lookup/delete and --
because the point on Raw is to *price* lookups in tile cycles -- a
``lookup_with_path`` variant that reports how many node visits (i.e.
dependent memory accesses) the search performed.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.ip.addr import ADDR_BITS, Prefix

_SENTINEL = object()


def _bit(addr: int, i: int) -> int:
    """Bit ``i`` of a 32-bit address, MSB first (i=0 is the top bit)."""
    return (addr >> (ADDR_BITS - 1 - i)) & 1


def _bits(addr: int, start: int, length: int) -> int:
    """Extract ``length`` bits of ``addr`` starting at MSB offset ``start``."""
    if length == 0:
        return 0
    return (addr >> (ADDR_BITS - start - length)) & ((1 << length) - 1)


class _Node:
    """Trie node; the edge *into* this node carries (label, label_len)."""

    __slots__ = ("label", "label_len", "depth", "value", "children")

    def __init__(self, label: int, label_len: int, depth: int):
        self.label = label
        self.label_len = label_len
        self.depth = depth  # total bits from the root through this node
        self.value: Any = _SENTINEL
        self.children: List[Optional["_Node"]] = [None, None]

    @property
    def has_value(self) -> bool:
        return self.value is not _SENTINEL


class PatriciaTrie:
    """Longest-prefix-match over 32-bit keys with path compression."""

    def __init__(self):
        self._root = _Node(0, 0, 0)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, value: Any) -> None:
        """Insert or replace the route for ``prefix``."""
        addr, plen = prefix.address, prefix.length
        node = self._root
        depth = 0
        while depth < plen:
            bit = _bit(addr, depth)
            child = node.children[bit]
            if child is None:
                leaf = _Node(_bits(addr, depth, plen - depth), plen - depth, plen)
                leaf.value = value
                node.children[bit] = leaf
                self._count += 1
                return
            # Longest common prefix of the remaining key and the edge label.
            rem = plen - depth
            common = 0
            limit = min(rem, child.label_len)
            while common < limit and _bits(addr, depth, common + 1) == (
                child.label >> (child.label_len - common - 1)
            ):
                common += 1
            if common == child.label_len:
                node = child
                depth += child.label_len
                continue
            # Split the edge at ``common`` bits.
            mid = _Node(child.label >> (child.label_len - common), common, depth + common)
            child_label_rest_len = child.label_len - common
            child.label &= (1 << child_label_rest_len) - 1
            child.label_len = child_label_rest_len
            mid.children[(child.label >> (child_label_rest_len - 1)) & 1] = child
            node.children[bit] = mid
            if common == rem:
                mid.value = value
                self._count += 1
                return
            leaf = _Node(
                _bits(addr, depth + common, rem - common), rem - common, plen
            )
            leaf.value = value
            mid.children[_bit(addr, depth + common)] = leaf
            self._count += 1
            return
        # depth == plen: value lives on the current node.
        if not node.has_value:
            self._count += 1
        node.value = value

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Any:
        """Value of the longest matching prefix, or None."""
        value, _ = self.lookup_with_path(addr)
        return value

    def lookup_with_path(self, addr: int) -> Tuple[Any, int]:
        """LPM result plus the number of node visits (memory touches)."""
        node = self._root
        depth = 0
        visits = 1
        best: Any = node.value if node.has_value else None
        while depth < ADDR_BITS:
            child = node.children[_bit(addr, depth)]
            if child is None:
                break
            visits += 1
            if _bits(addr, depth, child.label_len) != child.label:
                break
            depth += child.label_len
            node = child
            if node.has_value:
                best = node.value
        return best, visits

    # ------------------------------------------------------------------
    def delete(self, prefix: Prefix) -> bool:
        """Remove a route; returns False if it was not present."""
        addr, plen = prefix.address, prefix.length
        path: List[Tuple[_Node, int]] = []
        node = self._root
        depth = 0
        while depth < plen:
            bit = _bit(addr, depth)
            child = node.children[bit]
            if child is None or _bits(addr, depth, child.label_len) != child.label:
                return False
            path.append((node, bit))
            node = child
            depth += child.label_len
        if depth != plen or not node.has_value:
            return False
        node.value = _SENTINEL
        self._count -= 1
        self._prune(node, path)
        return True

    def _prune(self, node: _Node, path: List[Tuple[_Node, int]]) -> None:
        """Merge away valueless single-child / childless nodes."""
        while path and node is not self._root and not node.has_value:
            kids = [c for c in node.children if c is not None]
            parent, bit = path[-1]
            if len(kids) == 0:
                parent.children[bit] = None
            elif len(kids) == 1:
                only = kids[0]
                only.label |= node.label << only.label_len
                only.label_len += node.label_len
                parent.children[bit] = only
            else:
                return
            path.pop()
            node = parent

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Prefix, Any]]:
        """All (prefix, value) pairs, in DFS order."""

        def walk(node: _Node, addr: int, depth: int):
            addr = (addr << node.label_len) | node.label
            depth += node.label_len
            if node.has_value:
                yield Prefix(addr << (ADDR_BITS - depth) if depth else 0, depth), node.value
            for child in node.children:
                if child is not None:
                    yield from walk(child, addr, depth)

        yield from walk(self._root, 0, 0)

    def node_count(self) -> int:
        """Total allocated nodes (memory footprint proxy)."""

        def count(node: _Node) -> int:
            return 1 + sum(count(c) for c in node.children if c is not None)

        return count(self._root)

    def max_depth(self) -> int:
        """Deepest node-visit count any lookup can incur."""

        def depth(node: _Node) -> int:
            kids = [depth(c) for c in node.children if c is not None]
            return 1 + (max(kids) if kids else 0)

        return depth(self._root)
