"""Sections 5.4 / 8.7: fairness of the token and weighted-token QoS.

Fairness: under adversarial traffic (everyone hammering one output) no
input waits more than N-1 quanta while backlogged, and long-run service
is even (Jain's index ~1).  QoS: giving port 0 a weight of w shifts its
share of a contended output toward w/(w+N-1) without starving others.
"""

from __future__ import annotations

from repro.core.fabricsim import FabricSimulator
from repro.core.fairness import analyze_service, jains_index
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken, WeightedToken
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run_fairness(quanta: int = 4000, seed: int = 3, size_bytes: int = 256) -> ExperimentResult:
    """Starvation bound + service evenness under full contention."""
    result = ExperimentResult(
        name="fairness",
        description="Token fairness under single-output hotspot (all->0)",
    )
    words = costs.bytes_to_words(size_bytes)
    ring = RingGeometry(4)
    sim = FabricSimulator(ring=ring, keep_history=True)
    # Adversarial: every input always wants output 0.
    stats = sim.run(lambda port: (0, words), quanta=quanta)
    report = analyze_service(sim.history)
    result.add("worst_starvation_gap", report.worst_starvation_gap(), ring.n - 1)
    result.add("jains_index", report.jains, 1.0)
    result.add("min_service_ratio", min(report.service_ratio))
    result.add("hotspot_throughput_frac", stats.words_per_cycle)
    result.notes = (
        "bound: a backlogged input is master at least once every N "
        "quanta and a requesting master is always granted, so the gap "
        "is at most N-1 = 3."
    )
    return result


def run_qos(
    weights=(4, 1, 1, 1), quanta: int = 6000, seed: int = 4, size_bytes: int = 256
) -> ExperimentResult:
    """Weighted tokens shift bandwidth shares under contention."""
    result = ExperimentResult(
        name="qos_weighted_token",
        description=f"Weighted round-robin token, weights={list(weights)}, all->0 hotspot",
    )
    words = costs.bytes_to_words(size_bytes)
    ring = RingGeometry(len(weights))

    # Plain token: equal shares of the contended output.
    sim_plain = FabricSimulator(ring=ring, token=RotatingToken(ring.n))
    plain = sim_plain.run(lambda port: (0, words), quanta=quanta)
    # Weighted token, recorded so the journey tracker buckets latency by
    # weight class (ports labeled by their token weight).
    from repro.telemetry import runtime as _telemetry

    sim_w = FabricSimulator(ring=ring, token=WeightedToken(list(weights)))
    with _telemetry.capture() as tel:
        tel.journeys.set_port_classes(tuple(f"w{w}" for w in weights))
        weighted = sim_w.run(lambda port: (0, words), quanta=quanta)

    total_plain = sum(plain.per_port_words)
    total_w = sum(weighted.per_port_words)
    expected_share = weights[0] / sum(weights)
    result.add("plain_share_port0", plain.per_port_words[0] / total_plain, 1 / ring.n)
    result.add("weighted_share_port0", weighted.per_port_words[0] / total_w, expected_share)
    result.add(
        "weighted_min_share",
        min(weighted.per_port_words) / total_w,
        min(weights) / sum(weights),
    )
    result.add("weighted_jains", jains_index(weighted.per_port_words))
    # Per-class journey latency tails: the weighted class should see a
    # shorter queueing tail on the contended output than the weight-1
    # classes (the QoS story told in latency, not just bandwidth share).
    for label in tel.journeys.dim_labels("class"):
        h = tel.journeys.dim_hist[("class", label)]
        result.add(f"journey_p50_{label}", h.percentile(50))
        result.add(f"journey_p99_{label}", h.percentile(99))
    result.notes = (
        "the thesis: QoS 'can be done simply by allowing different ports "
        "a weighted amount of differing time with the token' (section 5.4)."
    )
    return result
