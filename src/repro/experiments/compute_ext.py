"""Section 8.3: computation inside the switch fabric.

Header bits select a payload transform the Crossbar Processors apply as
the words stream by; routing through the tile ALU instead of the switch
crossbar costs the transform's cycles-per-word.  The experiment measures
router throughput with each service enabled (the price of encryption /
checksumming in-fabric), and verifies functionally that an encrypt at
one port and decrypt at another round-trips the payload.
"""

from __future__ import annotations

import numpy as np

from repro.core.compute import ByteSwap, Identity, RunningChecksum, XorCipher
from repro.core.fabricsim import FabricSimulator, saturated_permutation
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def _rate_with_transform(cycles_per_word: int, words: int, quanta: int) -> float:
    """Fabric throughput when the body streams at 1/cpw words per cycle."""

    sim = FabricSimulator()
    # Scale words by the transform cost: the body phase lengthens to
    # words * cycles_per_word (the ALU is the streaming bottleneck).
    source = saturated_permutation(words * cycles_per_word, shift=2)
    stats = sim.run(source, quanta=quanta, warmup_quanta=100)
    # Goodput counts original words, not stretched cycles.
    return stats.gbps / cycles_per_word


def run(size_bytes: int = 1024, quanta: int = 2000) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_compute",
        description=f"In-fabric payload computation, {size_bytes}B packets",
    )
    words = costs.bytes_to_words(size_bytes)
    transforms = [
        ("plain_switch", Identity()),
        ("byteswap", ByteSwap()),
        ("xor_cipher", XorCipher(seed=0xC0FFEE)),
        ("running_checksum", RunningChecksum()),
    ]
    base = None
    for label, tf in transforms:
        gbps = _rate_with_transform(tf.cycles_per_word, words, quanta)
        if base is None:
            base = gbps
        result.add(f"{label}_gbps", gbps)
        result.add(f"{label}_relative", gbps / base if base else 0.0, 1.0 / tf.cycles_per_word)

    # Functional round trip: encrypt in the fabric, decrypt at the peer.
    rng = np.random.default_rng(0)
    payload = [int(x) for x in rng.integers(0, 1 << 32, size=256, dtype=np.uint64)]
    cipher = XorCipher(seed=0x5EED)
    roundtrip = cipher.apply(cipher.apply(payload))
    result.add("cipher_roundtrip_ok", roundtrip == payload, True)
    checks = RunningChecksum()
    checks.apply(payload)
    result.add("checksum_nonzero", checks.last_checksum != 0, True)
    result.notes = (
        "a one-instruction-per-word transform is free relative to the "
        "switch path; two instructions per word halve the streaming rate "
        "-- the thesis's motivation for putting compute where the data "
        "already flows."
    )
    return result
