"""Section 8.2: IP route lookup on a Raw tile.

The thesis defers core-router-scale lookup to future work, pointing at
Degermark et al.'s small forwarding tables.  This experiment builds both
structures -- the PATRICIA trie of section 2.1 and the compressed
16-8-8 multibit table -- over synthetic BGP-like prefix sets, prices
lookups through the tile cache model, and reports lookups/second a
single 250 MHz tile sustains, plus the structures' memory footprints
(the compressed table's point is fitting near the tile).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.ip.addr import random_prefixes
from repro.ip.lookup import CompressedTable, LookupCostModel, RoutingTable
from repro.ip.nblookup import LookupEngine
from repro.raw import costs
from repro.raw.memory import DataCache


def run(
    table_sizes=(1000, 10000, 50000),
    lookups: int = 3000,
    seed: int = 6,
) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_lookup",
        description="Route lookup on one tile: PATRICIA trie vs compressed table",
    )
    for n_routes in table_sizes:
        rng = np.random.default_rng(seed)
        prefixes = random_prefixes(n_routes, rng)
        routes = [(p, i % 4) for i, p in enumerate(prefixes)]
        trie_table = RoutingTable.from_routes(routes, default_port=0)
        comp_table = CompressedTable(default_port=0).build(routes)

        trie_cache = DataCache()
        comp_cache = DataCache()
        trie_model = LookupCostModel(trie_cache)
        comp_model = LookupCostModel(comp_cache)

        trie_cycles = comp_cycles = 0
        trie_visits = comp_visits = comp_visits_max = 0
        for _ in range(lookups):
            # Half the probes hit real routes (deep walks), half are
            # uniform random (mostly default-route misses).
            if rng.random() < 0.5:
                p = prefixes[int(rng.integers(0, len(prefixes)))]
                addr = p.random_member(rng)
            else:
                addr = int(rng.integers(0, 1 << 32))
            port_t, visits_t = trie_table.lookup_with_path(addr)
            port_c, visits_c = comp_table.lookup_with_path(addr)
            assert port_t == port_c, "structures disagree on LPM"
            # Trie nodes scatter over the heap; model distinct lines per
            # visit depth seeded by the address so reuse is realistic.
            trie_cycles += trie_model.cost(
                visits_t,
                (((addr >> 8) + d * 97) % (1 << 20) * costs.CACHE_LINE_BYTES
                 for d in range(visits_t)),
            )
            trie_visits += visits_t
            comp_cycles += comp_model.cost(
                visits_c,
                (((addr >> (24 - 8 * d)) % (1 << 16)) * costs.CACHE_LINE_BYTES
                 for d in range(visits_c)),
            )
            comp_visits += visits_c
            comp_visits_max = max(comp_visits_max, visits_c)

        trie_mlps = costs.CLOCK_HZ / (trie_cycles / lookups) / 1e6
        comp_mlps = costs.CLOCK_HZ / (comp_cycles / lookups) / 1e6
        result.add(f"trie_mlookups_per_s_{n_routes}", trie_mlps)
        result.add(f"compressed_mlookups_per_s_{n_routes}", comp_mlps)
        result.add(f"trie_mean_visits_{n_routes}", trie_visits / lookups)
        result.add(f"compressed_mean_visits_{n_routes}", comp_visits / lookups)
        result.add(f"compressed_max_visits_le3_{n_routes}", comp_visits_max <= 3, True)
        result.add(
            f"compressed_kbytes_{n_routes}", comp_table.memory_bytes() / 1024
        )
    # Section 8.2's multithreading-equivalence claim: non-blocking reads
    # over the dynamic network interleave independent lookups, recovering
    # the throughput a hardware-threaded network processor gets.
    for window in (1, 4, 8):
        engine = LookupEngine(visits_per_lookup=3, max_outstanding=window)
        res = engine.simulate(2000)
        result.add(
            f"nonblocking_mlps_W{window}",
            costs.CLOCK_HZ / res.cycles_per_lookup / 1e6,
        )
    result.add(
        "nonblocking_speedup_W8",
        LookupEngine(3, max_outstanding=8).speedup_over_blocking(),
        8.0,
    )
    result.notes = (
        "the compressed table bounds lookups at <=3 dependent memory "
        "touches regardless of table size; with 8 reads in flight over "
        "the dynamic network one tile sustains ~11 M lookups/s -- past "
        "the IXP1200's 3.5 Mpps the thesis benchmarks against "
        "(section 8.2's software-multithreading argument)."
    )
    return result
