"""Fig 5-1: the worked Rotating Crossbar example.

Ports 0,1,2,3 hold packets for 2,3,0,1 with the token at port 0.  The
thesis's resolution: all four transfer simultaneously; 0->2 and 2->0 ride
clockwise, 1->3 and 3->1 are pushed counterclockwise by the occupied
clockwise segments.  The allocation rule must reproduce exactly that.
"""

from __future__ import annotations

from repro.core.allocator import Allocator
from repro.core.ring import CCW, CW, RingGeometry
from repro.experiments.common import ExperimentResult

REQUESTS = (2, 3, 0, 1)
TOKEN = 0
EXPECTED_DIRECTIONS = {0: CW, 1: CCW, 2: CW, 3: CCW}


def run() -> ExperimentResult:
    ring = RingGeometry(4)
    alloc = Allocator(ring).allocate(REQUESTS, TOKEN)
    result = ExperimentResult(
        name="fig5_1",
        description="Worked example: permutation {0->2,1->3,2->0,3->1}, token at 0",
    )
    result.add("granted", alloc.num_granted, 4)
    result.add("conflict_free", alloc.is_conflict_free(), True)
    for src in range(4):
        grant = alloc.grants.get(src)
        result.add(
            f"direction_{src}->{REQUESTS[src]}",
            grant.path.direction if grant else "blocked",
            EXPECTED_DIRECTIONS[src],
        )
    return result
