"""Chapter 6 artifacts: configuration space, minimization, IMEM fit.

Reproduces the arithmetic of sections 6.1-6.2 and Table 6.1: the naive
|Hdr|^4 x |Token| = 2,500 space leaves ~3.3 switch instructions per
configuration; projecting onto per-tile client/server configurations
collapses it to a few dozen entries that comfortably fit the 8,192-word
switch memory.  The thesis reports 32 entries (78x); our allocator's
reachable set measures 27 (92.6x) -- same order, the delta is in the
scheduler-specific details ("not all possible configurations are used
by the compile-time scheduler").
"""

from __future__ import annotations

from repro.core.ring import RingGeometry
from repro.core.scheduler import CompileTimeScheduler
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run(num_ports: int = 4) -> ExperimentResult:
    ring = RingGeometry(num_ports)
    scheduler = CompileTimeScheduler(ring)
    schedule = scheduler.compile()
    minimization = schedule.minimization

    result = ExperimentResult(
        name="table6_1",
        description="Configuration space and its minimization (sections 6.1-6.2)",
    )
    result.add(
        "global_space",
        minimization.global_size,
        paperdata.CONFIG_SPACE if num_ports == 4 else None,
    )
    result.add(
        "instr_per_naive_config",
        costs.IMEM_WORDS / minimization.global_size,
        paperdata.INSTR_PER_NAIVE_CONFIG if num_ports == 4 else None,
    )
    result.add(
        "minimized_configs",
        minimization.minimized_size,
        paperdata.MINIMIZED_CONFIGS if num_ports == 4 else None,
    )
    result.add(
        "reduction_factor",
        minimization.reduction_factor,
        paperdata.REDUCTION_FACTOR if num_ports == 4 else None,
    )
    result.add("reachable_global_allocations", minimization.reachable_global)
    imem = schedule.imem_words_per_tile()
    result.add("switch_imem_words_used", imem)
    result.add("fits_switch_imem", schedule.fits_imem())
    result.notes = (
        f"clients/servers per Table 6.1: servers=(out, cwnext, ccwnext), "
        f"clients=(0, in, cwprev, ccwprev); generated switch code uses "
        f"{imem} of {costs.SWITCH_MEM_WORDS} switch-memory words."
    )
    return result
