"""Fig 7-3: per-tile utilization of the Raw processor, 64 B vs 1,024 B.

The thesis plots 800 cycles of per-tile activity: gray where a tile
processor is blocked on transmit, receive, or cache miss.  Its headline
observations, which this experiment reproduces from the word-level
model's trace:

* small packets leave the chip poorly utilized -- the ingress tiles
  (4, 7, 8, 11) sit blocked on the crossbar most of the time;
* large packets approach the static-network bandwidth limit -- busy
  fractions rise across the active tiles.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.metrics.utilization import UtilizationSummary, summarize_trace
from repro.raw.layout import INGRESS_TILES, CROSSBAR_RING, ROUTER_LAYOUT
from repro.router.wordlevel import WordLevelRouter, uniform_source
from repro.sim.trace import Trace
from repro.viz.timeline import render_timeline

#: The figure's plot window, in cycles.
WINDOW_CYCLES = 800


def run_one(
    packet_bytes: int,
    window_start: int = 6000,
    window_cycles: int = WINDOW_CYCLES,
    seed: int = 7,
):
    """Word-level run traced over ``[window_start, window_start+window)``.

    Returns (utilization summaries by trace key, rendered ASCII timeline,
    word-level result).
    """
    trace = Trace(window_start, window_start + window_cycles)
    rng = np.random.default_rng(seed)
    router = WordLevelRouter(uniform_source(packet_bytes, rng), trace=trace)
    res = router.run(until_cycles=window_start + window_cycles)
    keys = [f"t{t}" for t in range(16) if f"t{t}" in trace.keys()]
    timeline = render_timeline(
        trace, keys, window_start, window_start + window_cycles, width=80
    )
    summaries = summarize_trace(trace, window_start, window_start + window_cycles)
    return summaries, timeline, res


def _mean_busy(summaries: Dict[str, UtilizationSummary], tiles) -> float:
    keys = [f"t{t}" for t in tiles]
    vals = [summaries[k].busy_frac for k in keys if k in summaries]
    return float(np.mean(vals)) if vals else 0.0


def _mean_blocked(summaries: Dict[str, UtilizationSummary], tiles) -> float:
    keys = [f"t{t}" for t in tiles]
    vals = [summaries[k].blocked_frac for k in keys if k in summaries]
    return float(np.mean(vals)) if vals else 0.0


#: Cycles used for the scalar utilization metrics (the 800-cycle render
#: window of the figure is too short for stable fractions under uniform
#: traffic; the claims are about steady state).
METRIC_WINDOW_CYCLES = 4000


def run(seed: int = 7) -> ExperimentResult:
    """Both panels of Fig 7-3, reduced to the claims' key quantities."""
    result = ExperimentResult(
        name="fig7_3",
        description="Per-tile utilization over an 800-cycle window (word-level)",
    )
    small, _, _ = run_one(64, window_cycles=METRIC_WINDOW_CYCLES, seed=seed)
    large, _, _ = run_one(1024, window_cycles=METRIC_WINDOW_CYCLES, seed=seed)
    _, timeline_small, _ = run_one(64, seed=seed)
    _, timeline_large, _ = run_one(1024, seed=seed)

    xb_small = _mean_busy(small, CROSSBAR_RING)
    xb_large = _mean_busy(large, CROSSBAR_RING)
    ing_blocked_small = _mean_blocked(small, INGRESS_TILES)
    ing_blocked_large = _mean_blocked(large, INGRESS_TILES)
    all_tiles = [t for layout in ROUTER_LAYOUT for t in layout.tiles]
    busy_small = _mean_busy(small, all_tiles)
    busy_large = _mean_busy(large, all_tiles)

    ing_busy_small = _mean_busy(small, INGRESS_TILES)
    ing_busy_large = _mean_busy(large, INGRESS_TILES)

    # Qualitative claims of section 7.4 rendered as ordered quantities.
    result.add("mean_tile_busy_64B", busy_small)
    result.add("mean_tile_busy_1024B", busy_large)
    result.add("busy_ratio_1024_over_64", busy_large / busy_small if busy_small else 0)
    result.add("ingress_busy_64B", ing_busy_small)
    result.add("ingress_busy_1024B", ing_busy_large)
    result.add("ingress_blocked_frac_64B", ing_blocked_small)
    result.add("ingress_blocked_frac_1024B", ing_blocked_large)
    result.add("crossbar_busy_64B", xb_small)
    result.add("crossbar_busy_1024B", xb_large)
    result.notes = (
        "claims: utilization is considerably lower for 64B than 1024B; "
        "ingress tiles 4/7/8/11 spend most of the 64B window blocked on "
        "the crossbar (the figure's gray).\n\n64-byte packets:\n"
        + timeline_small
        + "\n\n1024-byte packets:\n"
        + timeline_large
    )
    return result
