"""Section 8.6: multicast in the switch fabric vs ingress replication.

The fabric replicates a multicast word at every crossbar tile it passes
(one-read/many-write switch instructions), so a fanout-F packet crosses
the ring once; a unicast-only fabric must send it F times from the
ingress.  The experiment measures delivered copies per cycle both ways
-- the fanout-splitting gain the thesis imports from the GSR argument.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.multicast import MulticastAllocator
from repro.core.phases import idle_quantum_cycles, quantum_cycles
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def _run_multicast_fabric(
    fanout: int, words: int, quanta: int, rng: np.random.Generator
) -> Tuple[float, float]:
    """(copies per kilocycle, cycles per packet) with fabric replication."""
    ring = RingGeometry(4)
    allocator = MulticastAllocator(ring)
    token = RotatingToken(4)
    pending: List[Optional[FrozenSet[int]]] = [None] * 4
    copies = 0
    packets = 0
    cycles = 0
    for _ in range(quanta):
        for port in range(4):
            if pending[port] is None:
                others = [p for p in range(4) if p != port]
                dests = rng.choice(others, size=fanout, replace=False)
                pending[port] = frozenset(int(d) for d in dests)
        alloc = allocator.allocate(pending, token.master)
        body = 0
        for grant in alloc.grants.values():
            body = max(body, words + grant.expansion)
        cycles += (
            quantum_cycles(0, 0) + body if alloc.grants else idle_quantum_cycles()
        )
        for src, grant in alloc.grants.items():
            copies += grant.copies
            remaining = pending[src] - grant.served
            if remaining:
                pending[src] = remaining
            else:
                pending[src] = None
                packets += 1
        token.advance()
    return copies * 1000.0 / cycles, cycles / max(packets, 1)  # cycles/pkt


def _run_ingress_replication(
    fanout: int, words: int, quanta: int, rng: np.random.Generator
) -> float:
    """Copies per kilocycle when the ingress sends F unicast copies."""
    from repro.core.allocator import Allocator

    ring = RingGeometry(4)
    allocator = Allocator(ring)
    token = RotatingToken(4)
    queues: List[List[int]] = [[] for _ in range(4)]
    copies = 0
    cycles = 0
    for _ in range(quanta):
        for port in range(4):
            if not queues[port]:
                others = [p for p in range(4) if p != port]
                dests = rng.choice(others, size=fanout, replace=False)
                queues[port] = [int(d) for d in dests]
        requests = tuple(q[0] if q else None for q in queues)
        alloc = allocator.allocate(requests, token.master)
        body = 0
        for grant in alloc.grants.values():
            body = max(body, words + grant.expansion)
        cycles += (
            quantum_cycles(0, 0) + body if alloc.grants else idle_quantum_cycles()
        )
        for src in alloc.grants:
            queues[src].pop(0)
            copies += 1
        token.advance()
    return copies * 1000.0 / cycles


def run(
    fanouts=(2, 3), size_bytes: int = 512, quanta: int = 3000, seed: int = 5
) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_multicast",
        description="Fabric multicast (fanout splitting) vs ingress replication",
    )
    words = costs.bytes_to_words(size_bytes)
    for fanout in fanouts:
        rng = np.random.default_rng(seed)
        fabric_rate, quanta_per_pkt = _run_multicast_fabric(fanout, words, quanta, rng)
        rng = np.random.default_rng(seed)
        ingress_rate = _run_ingress_replication(fanout, words, quanta, rng)
        result.add(f"fabric_copies_per_kcyc_F{fanout}", fabric_rate)
        result.add(f"ingress_copies_per_kcyc_F{fanout}", ingress_rate)
        result.add(
            f"fabric_gain_F{fanout}",
            fabric_rate / ingress_rate if ingress_rate else 0.0,
        )
        result.add(f"fabric_cycles_per_packet_F{fanout}", quanta_per_pkt)
    result.notes = (
        "the GSR argument the thesis adopts: replicating in the fabric "
        "instead of the input raises multicast throughput (McKeown "
        "quotes up to +40% for fanout splitting)."
    )
    return result
