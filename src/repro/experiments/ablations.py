"""Design-choice ablations.

* **Second static network** (sections 5.3 / 8.1): the thesis claims the
  second network "does not improve the performance of the router
  because of the limiting factor of contention for output ports rather
  than insufficiency of inter-tile bandwidth".  We run the allocator
  with one and two ring networks under permutation and uniform traffic
  and show the delta is ~zero.
* **Quantum size** (section 4.3): fragmenting a 1,024-byte packet into
  smaller quanta multiplies the per-quantum control overhead; sweeping
  the transfer block size exposes the throughput cost of fragmentation
  and why the design sizes the block to a full packet.
* **Pipelining** (sections 5.2 / 6.5): turning off the header/body
  overlap adds the ingress header + lookup work to every quantum's
  critical path.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocator import Allocator
from repro.core.fabricsim import (
    FabricSimulator,
    saturated_permutation,
    saturated_uniform,
)
from repro.core.ring import RingGeometry
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run_second_network(
    quanta: int = 3000, seed: int = 0, size_bytes: int = 1024
) -> ExperimentResult:
    """One vs two static networks, permutation and uniform traffic."""
    words = costs.bytes_to_words(size_bytes)
    result = ExperimentResult(
        name="abl_2nd_network",
        description="Adding Raw's second static network (section 5.3 claim: no gain)",
    )
    ring = RingGeometry(4)
    for label, uniform in (("permutation", False), ("uniform", True)):
        rates = {}
        for networks in (1, 2):
            sim = FabricSimulator(ring=ring, allocator=Allocator(ring, networks=networks))
            if uniform:
                rng = np.random.default_rng(seed)
                src = saturated_uniform(words, rng, exclude_self=True)
            else:
                src = saturated_permutation(words, shift=2)
            rates[networks] = sim.run(src, quanta=quanta, warmup_quanta=200).gbps
        result.add(f"{label}_1net_gbps", rates[1])
        result.add(f"{label}_2net_gbps", rates[2])
        result.add(
            f"{label}_speedup", rates[2] / rates[1] if rates[1] else 0.0, 1.0
        )
    result.notes = (
        "paper claim: speedup ~1.0 -- output-port contention, not ring "
        "bandwidth, is the binding constraint."
    )
    return result


def run_quantum_size(
    quanta_words=(16, 32, 64, 128, 256),
    size_bytes: int = 1024,
    quanta: int = 3000,
) -> ExperimentResult:
    """Throughput vs crossbar transfer-block size (fragmentation cost)."""
    result = ExperimentResult(
        name="abl_quantum",
        description=f"{size_bytes}B packets vs transfer-block size (words)",
    )
    words = costs.bytes_to_words(size_bytes)
    for q in quanta_words:
        sim = FabricSimulator(max_quantum_words=q)
        stats = sim.run(saturated_permutation(words, shift=2), quanta=quanta, warmup_quanta=200)
        result.add(f"quantum_{q}w", stats.gbps)
    full = result.measured(f"quantum_{quanta_words[-1]}w")
    small = result.measured(f"quantum_{quanta_words[0]}w")
    result.add("full_over_smallest", full / small if small else 0.0)
    result.notes = (
        "each fragment pays the control overhead once; the design sizes "
        "the block so every Fig 7-1 packet crosses in one quantum."
    )
    return result


def run_pipelining(size_bytes: int = 64, quanta: int = 3000) -> ExperimentResult:
    """Header/body overlap on vs off (the section 5.2 pipelining)."""
    result = ExperimentResult(
        name="abl_pipelining",
        description="Overlapping header processing with body streaming",
    )
    words = costs.bytes_to_words(size_bytes)
    rates = {}
    for pipelined in (True, False):
        sim = FabricSimulator(pipelined=pipelined)
        stats = sim.run(
            saturated_permutation(words, shift=2), quanta=quanta, warmup_quanta=200
        )
        rates[pipelined] = stats.gbps
    result.add("pipelined_gbps", rates[True])
    result.add("naive_gbps", rates[False])
    result.add("speedup_from_pipelining", rates[True] / rates[False])
    result.notes = (
        "small packets feel the overlap most: the ingress header + lookup "
        "work is comparable to the whole body transfer."
    )
    return result
