"""Fig 7-1: peak and average router throughput vs packet size vs Click.

Peak (top chart): conflict-free permutation traffic, saturated inputs --
every quantum all four ports stream, so the rate is set by the quantum
phase cost.  Average (bottom chart): uniform destinations under
"complete fairness"; output contention idles blocked inputs and the rate
drops to ~69% of peak.  The Click bar is measured by actually pushing
the same packets through the Click element graph.

Two engines produce the Raw numbers: the quantum-level fabric simulator
(default -- fast, used by the benchmarks) and the full phase-level
router with ingress/lookup/egress pipelines (``engine="router"``, used
by the integration tests to confirm the pipeline stages don't move the
bottleneck).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.baselines.click import standard_ip_router
from repro.core.fabricsim import (
    FabricSimulator,
    saturated_permutation,
    saturated_uniform,
)
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.raw import costs
from repro.traffic.patterns import FixedPermutation, UniformDestinations
from repro.traffic.sizes import PAPER_SIZES, FixedSize
from repro.traffic.arrivals import Saturated
from repro.traffic.workload import PacketFactory, Workload


def _fabric_gbps(size_bytes: int, uniform: bool, quanta: int, seed: int) -> float:
    words = costs.bytes_to_words(size_bytes)
    sim = FabricSimulator()
    if uniform:
        rng = np.random.default_rng(seed)
        source = saturated_uniform(words, rng, exclude_self=True)
    else:
        source = saturated_permutation(words, shift=2)
    stats = sim.run(source, quanta=quanta, warmup_quanta=max(50, quanta // 20))
    return stats.gbps


def _router_gbps(size_bytes: int, uniform: bool, packets: int, seed: int) -> float:
    from repro.router.router import RawRouter

    rng = np.random.default_rng(seed)
    warmup = 30_000
    router = RawRouter(warmup_cycles=warmup)
    pattern = (
        UniformDestinations(4, rng, exclude_self=True)
        if uniform
        else FixedPermutation.shift(4, 2)
    )
    workload = Workload(pattern, FixedSize(size_bytes), Saturated())
    router.attach_saturated(workload, PacketFactory(4, rng))
    result = router.run(target_packets=packets)
    return result.gbps


def measure_click_gbps(size_bytes: int = 64, packets: int = 2000, seed: int = 0) -> float:
    """Forward ``packets`` through the Click graph; aggregate Gbps."""
    rng = np.random.default_rng(seed)
    factory = PacketFactory(4, rng)
    router = standard_ip_router(4)
    batch = [
        (i % 4, factory.make(i % 4, int(rng.integers(0, 4)), size_bytes))
        for i in range(packets)
    ]
    return router.run_packets(batch).gbps


def run_peak(
    sizes: Iterable[int] = PAPER_SIZES,
    quanta: int = 2000,
    seed: int = 0,
    engine: str = "fabric",
    click_packets: int = 2000,
) -> ExperimentResult:
    """The top chart of Fig 7-1."""
    result = ExperimentResult(
        name="fig7_1_peak",
        description="Peak throughput (Gbps), conflict-free traffic, vs Click",
    )
    result.add("click_64B", measure_click_gbps(64, click_packets, seed), paperdata.CLICK_GBPS)
    for size in sizes:
        if engine == "fabric":
            gbps = _fabric_gbps(size, uniform=False, quanta=quanta, seed=seed)
        elif engine == "router":
            gbps = _router_gbps(size, uniform=False, packets=quanta, seed=seed)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        result.add(f"{size}B", gbps, paperdata.PEAK_GBPS.get(size))
    # The headline packet rate: 3.3 Mpps at 1,024-byte packets.
    gbps_1024 = result.measured("1024B")
    mpps = gbps_1024 * 1e9 / (1024 * 8) / 1e6
    result.add("peak_mpps_1024B", mpps, paperdata.PEAK_MPPS)
    return result


def run_average(
    sizes: Iterable[int] = PAPER_SIZES,
    quanta: int = 4000,
    seed: int = 0,
    engine: str = "fabric",
    click_packets: int = 2000,
) -> ExperimentResult:
    """The bottom chart of Fig 7-1 (uniform traffic, output contention)."""
    result = ExperimentResult(
        name="fig7_1_avg",
        description="Average throughput (Gbps), uniform traffic, vs Click",
    )
    result.add("click_64B", measure_click_gbps(64, click_packets, seed), paperdata.CLICK_GBPS)
    for size in sizes:
        if engine == "fabric":
            gbps = _fabric_gbps(size, uniform=True, quanta=quanta, seed=seed)
        elif engine == "router":
            gbps = _router_gbps(size, uniform=True, packets=quanta, seed=seed)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        result.add(f"{size}B", gbps, paperdata.AVG_GBPS.get(size))
    peak_1024 = _fabric_gbps(1024, uniform=False, quanta=quanta, seed=seed)
    result.add(
        "avg_to_peak_1024B",
        result.measured("1024B") / peak_1024,
        paperdata.AVG_TO_PEAK,
    )
    return result
