"""Fig 7-1: peak and average router throughput vs packet size vs Click.

Peak (top chart): conflict-free permutation traffic, saturated inputs --
every quantum all four ports stream, so the rate is set by the quantum
phase cost.  Average (bottom chart): uniform destinations under
"complete fairness"; output contention idles blocked inputs and the rate
drops to ~69% of peak.  The Click bar is measured by actually pushing
the same packets through the Click element graph.

Two engines produce the Raw numbers: the quantum-level fabric engine
(default -- fast, used by the benchmarks) and the full phase-level
router engine with ingress/lookup/egress pipelines (``engine="router"``,
used by the integration tests to confirm the pipeline stages don't move
the bottleneck).  Both go through the shared
:class:`repro.engines.Engine` interface, so what this experiment runs is
exactly what ``python -m repro sweep`` fans across workers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.baselines.click import standard_ip_router
from repro.config import SimConfig
from repro.engines import FabricEngine, RouterEngine, WorkloadSpec
from repro.experiments import paperdata
from repro.experiments.common import ExperimentResult
from repro.traffic.workload import PacketFactory
from repro.traffic.sizes import PAPER_SIZES


def _workload(size_bytes: int, uniform: bool, **budget) -> WorkloadSpec:
    return WorkloadSpec(
        pattern="uniform" if uniform else "permutation",
        packet_bytes=size_bytes,
        **budget,
    )


def _fabric_gbps(size_bytes: int, uniform: bool, quanta: int, seed: int) -> float:
    engine = FabricEngine(SimConfig(seed=seed))
    return engine.run(_workload(size_bytes, uniform, quanta=quanta)).gbps


def _router_gbps(size_bytes: int, uniform: bool, packets: int, seed: int) -> float:
    engine = RouterEngine(SimConfig(fidelity="router", seed=seed))
    return engine.run(_workload(size_bytes, uniform, packets=packets)).gbps


def measure_click_gbps(size_bytes: int = 64, packets: int = 2000, seed: int = 0) -> float:
    """Forward ``packets`` through the Click graph; aggregate Gbps."""
    rng = np.random.default_rng(seed)
    factory = PacketFactory(4, rng)
    router = standard_ip_router(4)
    batch = [
        (i % 4, factory.make(i % 4, int(rng.integers(0, 4)), size_bytes))
        for i in range(packets)
    ]
    return router.run_packets(batch).gbps


def run_peak(
    sizes: Iterable[int] = PAPER_SIZES,
    quanta: int = 2000,
    seed: int = 0,
    engine: str = "fabric",
    click_packets: int = 2000,
) -> ExperimentResult:
    """The top chart of Fig 7-1."""
    result = ExperimentResult(
        name="fig7_1_peak",
        description="Peak throughput (Gbps), conflict-free traffic, vs Click",
    )
    result.add("click_64B", measure_click_gbps(64, click_packets, seed), paperdata.CLICK_GBPS)
    for size in sizes:
        if engine == "fabric":
            gbps = _fabric_gbps(size, uniform=False, quanta=quanta, seed=seed)
        elif engine == "router":
            gbps = _router_gbps(size, uniform=False, packets=quanta, seed=seed)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        result.add(f"{size}B", gbps, paperdata.PEAK_GBPS.get(size))
    # The headline packet rate: 3.3 Mpps at 1,024-byte packets.
    gbps_1024 = result.measured("1024B")
    mpps = gbps_1024 * 1e9 / (1024 * 8) / 1e6
    result.add("peak_mpps_1024B", mpps, paperdata.PEAK_MPPS)
    return result


def run_average(
    sizes: Iterable[int] = PAPER_SIZES,
    quanta: int = 4000,
    seed: int = 0,
    engine: str = "fabric",
    click_packets: int = 2000,
) -> ExperimentResult:
    """The bottom chart of Fig 7-1 (uniform traffic, output contention)."""
    result = ExperimentResult(
        name="fig7_1_avg",
        description="Average throughput (Gbps), uniform traffic, vs Click",
    )
    result.add("click_64B", measure_click_gbps(64, click_packets, seed), paperdata.CLICK_GBPS)
    for size in sizes:
        if engine == "fabric":
            gbps = _fabric_gbps(size, uniform=True, quanta=quanta, seed=seed)
        elif engine == "router":
            gbps = _router_gbps(size, uniform=True, packets=quanta, seed=seed)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        result.add(f"{size}B", gbps, paperdata.AVG_GBPS.get(size))
    peak_1024 = _fabric_gbps(1024, uniform=False, quanta=quanta, seed=seed)
    result.add(
        "avg_to_peak_1024B",
        result.measured("1024B") / peak_1024,
        paperdata.AVG_TO_PEAK,
    )
    return result
