"""Reference numbers transcribed from the thesis.

Values are read off the text and the Fig 7-1 bar charts; the average
numbers are the bottom chart's bars (the text adds that average is
"only about 69% of the peak performance due to the contention for
output ports").
"""

from __future__ import annotations

#: Fig 7-1 (top): peak throughput in Gbps by packet size (bytes).
PEAK_GBPS = {64: 7.3, 128: 14.4, 256: 20.1, 512: 24.7, 1024: 26.9}

#: Fig 7-1 (bottom): average throughput in Gbps by packet size.
AVG_GBPS = {64: 5.0, 128: 9.9, 256: 13.8, 512: 16.9, 1024: 18.6}

#: Fig 7-1: the Click bar (both charts).
CLICK_GBPS = 0.23

#: Abstract / section 7.2: peak packet rate at 1,024-byte packets.
PEAK_MPPS = 3.3

#: Section 7.3: average / peak ratio.
AVG_TO_PEAK = 0.69

#: Section 6.1: naive configuration space |Hdr|^4 x |Token|.
CONFIG_SPACE = 2500

#: Section 6.1: switch IMEM words per naive configuration (~3.3).
IMEM_WORDS = 8192
INSTR_PER_NAIVE_CONFIG = IMEM_WORDS / CONFIG_SPACE

#: Section 6.2: minimized configuration count and reduction factor.
MINIMIZED_CONFIGS = 32
REDUCTION_FACTOR = 78

#: Section 2.2.2 claims (via McKeown): FIFO HOL limit and VOQ recovery.
HOL_THROUGHPUT = 0.586  # 2 - sqrt(2), large-N saturated FIFO
VOQ_THROUGHPUT = 1.0
#: Variable-length packets limit system throughput to ~60%; cells ~100%.
VARIABLE_LENGTH_UTIL = 0.60
CELL_UTIL = 1.0

#: Case-study context (chapter 2): MGR and IXP1200 forwarding rates.
MGR_MPPS = 32.0
MGR_BACKPLANE_GBPS = 50.0
IXP1200_MPPS = 3.5

#: Raw chip parameters quoted in chapter 3.
RAW_CLOCK_MHZ = 250
RAW_BISECTION_GBPS = 230
RAW_EXTERNAL_GBPS = 201
