"""Section 8.5: scaling the Rotating Crossbar beyond four ports.

The ring generalizes directly: N crossbar tiles, token rotating over N
positions, paths up to N/2 hops.  Two regimes emerge, quantified here:

* **Neighbor traffic** (shift-1 permutations): every flow holds one ring
  segment, so aggregate peak bandwidth scales ~linearly with N.
* **Antipodal traffic** (shift-N/2): each flow crosses half the ring and
  the bisection (2 directed links each way) caps concurrency at ~4
  flows regardless of N -- aggregate rate stays near the 4-port level.

This is exactly the trade the thesis defers to future work ("one
solution is simply to build a larger router out of multiple of these
small 4-port routers/crossbars", section 8.5): past a few ports, a ring
needs a richer topology for adversarial permutations.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocator import Allocator
from repro.core.fabricsim import (
    FabricSimulator,
    saturated_permutation,
    saturated_uniform,
)
from repro.core.ring import RingGeometry
from repro.core.token import RotatingToken
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run(
    port_counts=(4, 8, 16, 32),
    size_bytes: int = 1024,
    quanta: int = 3000,
    seed: int = 0,
    space_port_counts=(16, 64, 256),
    space_partitions: int = 0,
    space_transport: str = "pipe",
) -> ExperimentResult:
    """Large rings are affordable here because every run takes the fabric
    fast path (bit-identical to the plain step loop, so the reported
    numbers are unchanged): the deterministic permutations fast-forward
    through their steady-state cycle, and the stochastic uniform runs
    reuse allocations through the LRU cache."""
    result = ExperimentResult(
        name="ext_scaling",
        description=f"N-port rotating crossbar, {size_bytes}B packets",
    )
    words = costs.bytes_to_words(size_bytes)
    for n in port_counts:
        ring = RingGeometry(n)
        sim_nb = FabricSimulator(
            ring=ring, allocator=Allocator(ring, cache_size=4096),
            token=RotatingToken(n), fast_forward=True,
        )
        neighbor = sim_nb.run(
            saturated_permutation(words, shift=1, n=n),
            quanta=quanta,
            warmup_quanta=200,
        )
        sim = FabricSimulator(
            ring=ring, allocator=Allocator(ring, cache_size=4096),
            token=RotatingToken(n), fast_forward=True,
        )
        peak = sim.run(
            saturated_permutation(words, shift=max(1, n // 2), n=n),
            quanta=quanta,
            warmup_quanta=200,
        )
        rng = np.random.default_rng(seed)
        sim2 = FabricSimulator(
            ring=ring, allocator=Allocator(ring, cache_size=4096),
            token=RotatingToken(n),
        )
        avg = sim2.run(
            saturated_uniform(words, rng, n=n, exclude_self=True),
            quanta=quanta,
            warmup_quanta=200,
        )
        result.add(f"neighbor_gbps_N{n}", neighbor.gbps)
        result.add(f"antipodal_gbps_N{n}", peak.gbps)
        result.add(f"avg_gbps_N{n}", avg.gbps)
        result.add(f"mean_grants_N{n}", avg.mean_grants_per_quantum)

    # Past N=32 a single ring stops being the interesting topology; the
    # space-partitioned Clos (DESIGN.md §13/§15) carries the curve to
    # N=256 by distributing 3*sqrt(N) crossbar chips across worker
    # processes (``space_partitions=0`` picks the adaptive
    # min(middle-stage chips, cpu_count); ``space_transport`` selects
    # the boundary transport).
    import math

    from repro.core.spacetopo import build_topology
    from repro.parallel.space_shard import (
        SpaceSpec,
        auto_partitions,
        run_space,
    )

    for n in space_port_counts:
        k = math.isqrt(n)
        if k * k != n:
            raise ValueError(f"space Clos needs a square port count, got {n}")
        partitions = space_partitions or auto_partitions(
            build_topology("clos", k)
        )
        # The N=256 fabric steps 48 chips per quantum; a shorter
        # (post-warmup) horizon keeps the experiment affordable without
        # changing the saturated steady-state rate it reports.
        q = quanta if n <= 64 else max(400, quanta // 4)
        spec = SpaceSpec(
            k=k,
            latency=4,
            partitions=partitions,
            source=SpaceSpec.pack_source(
                {"kind": "permutation", "words": words, "shift": n // 2}
            ),
            quanta=q,
            warmup_quanta=200,
        )
        stats, info = run_space(spec, transport=space_transport)
        result.add(f"space_clos_antipodal_gbps_N{n}", stats.gbps)
        result.add(f"space_clos_workers_N{n}", float(info.workers))
    result.notes = (
        "neighbor permutations scale ~linearly with N; antipodal "
        "permutations are capped by the ring bisection (~4 concurrent "
        "half-ring flows however large N grows) -- the scaling caveat "
        "behind the thesis's multi-crossbar future-work proposal.  The "
        "space-partitioned Clos rows show the composed topology carrying "
        "antipodal traffic out to N=256 across distributed chip "
        "partitions (adaptive worker counts, pluggable transports)."
    )
    return result
