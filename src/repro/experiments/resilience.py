"""Resilience under injected faults: recovery time and degraded goodput.

The chaos counterpart of the throughput experiments: each scenario arms
one :class:`~repro.faults.plan.FaultPlan` against an engine run and
reports the resilience metrics of :mod:`repro.metrics.resilience` --
mean time to recover (MTTR, in cycles), delivered-vs-offered goodput,
and the drop taxonomy.  The scenarios map one-to-one to the failure
modes the fault model defines:

* ``baseline`` / ``empty_plan`` -- the fault-free reference, and the
  guarantee that an *empty* plan is bit-identical to no plan at all;
* ``dead_port`` -- one of four ports dies mid-run; degraded-mode
  routing masks it and the surviving ports' goodput is compared against
  a genuine 3-port fault-free run (the proportional-degradation claim);
* ``token_loss`` -- the rotating token vanishes; the fabric detects it
  by timeout and regenerates it at port 0 in a bounded number of idle
  quanta;
* ``link_flap`` -- an input link drops twice briefly; held words resume
  and both windows close;
* ``corrupt`` -- single-word corruption, caught downstream by the IP
  header checksum and counted as a drop, never delivered;
* ``overload`` -- an egress line card is overrun; upstream queues hold
  and drain after the window;
* ``phase_mixed`` -- a combined plan on the phase-level router engine,
  exercising the same machinery through the full ingress/lookup/egress
  pipeline.

``run()`` also evaluates the acceptance invariants (the ``checks`` list
in the JSON table): empty-plan identity, dead-port goodput within
tolerance of the 3-port reference, bounded token MTTR, and no
unrecovered faults.  ``python -m repro chaos --check`` turns any failed
check into a nonzero exit, which is what the CI smoke job gates on.

The acceptance bounds carry *real error bars*: before the chaos
scenarios run, the fault-free baseline is swept through the vectorized
many-worlds engine (:mod:`repro.parallel.manyworlds`) across ``worlds``
independent seeds.  The resulting envelope (mean/std/ci95/percentiles
per metric) lands in the JSON table as ``baseline_envelope``, the
world-0 run is checked bit-identical against the scalar engine, and the
single-seed baseline plus the dead-port ratio are judged against the
measured seed-to-seed spread instead of bare magic constants.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.config import SimConfig
from repro.engines import FabricEngine, RouterEngine, RunResult, WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.faults.plan import FaultEvent, FaultPlan, resolve_plan

RESULTS_SCHEMA = "repro-resilience/1"
DEFAULT_OUT = "benchmarks/RESILIENCE_results.json"

#: Generous bound on token-regeneration time: detection happens at the
#: next quantum boundary (one full body quantum at most) and repair
#: burns ``ports + 1`` idle control quanta, so anything in this
#: neighbourhood is "bounded"; a runaway would be orders larger.
TOKEN_MTTR_BOUND_CYCLES = 5_000

#: Monte Carlo budget for the fault-free baseline envelope: enough
#: worlds for a stable std estimate without dominating the experiment
#: wall-clock (the vectorized engine makes 200 worlds cheaper than a
#: handful of scalar runs).
ENVELOPE_WORLDS = 200
ENVELOPE_WORLDS_QUICK = 64


def _baseline_envelope(
    base: WorkloadSpec, seed: int, worlds: int, ports: int = 4
) -> Dict[str, Any]:
    """Many-worlds sweep of the fault-free baseline.

    Returns the JSON-ready envelope block: per-metric
    mean/std/ci95/percentile statistics over ``worlds`` seeds, plus the
    world-0 vs scalar bit-identity verdict.  Must run *before* any
    telemetry capture is armed -- the vectorized engine refuses to run
    under an active recorder and would fall back to ``worlds`` scalar
    runs.
    """
    from repro.parallel.manyworlds import run_scalar_world, run_worlds

    config = SimConfig(seed=seed, ports=ports)
    mw = run_worlds(config, base, worlds)
    w0 = mw.world_result(0)
    scalar0 = run_scalar_world(config, base, 0)
    identical = (
        w0.gbps == scalar0.gbps
        and w0.cycles == scalar0.cycles
        and w0.delivered_packets == scalar0.delivered_packets
        and w0.delivered_words == scalar0.delivered_words
    )
    return {
        "worlds": worlds,
        "ports": ports,
        "vectorized": mw.vectorized,
        "fallback_reason": mw.fallback_reason,
        "elapsed_s": mw.elapsed_s,
        "envelopes": mw.envelopes(),
        "world0_identical": identical,
        "world0_gbps": w0.gbps,
        "world0_scalar_gbps": scalar0.gbps,
    }


def _fabric_run(
    workload: WorkloadSpec, seed: int, ports: int = 4
) -> RunResult:
    return FabricEngine(SimConfig(seed=seed, ports=ports)).run(workload)


def _scenario_row(name: str, res: RunResult) -> Dict[str, Any]:
    resil = res.extra.get("resilience", {})
    return {
        "name": name,
        "fidelity": res.fidelity,
        "gbps": res.gbps,
        "cycles": res.cycles,
        "delivered_packets": res.delivered_packets,
        "per_port_packets": list(res.per_port_packets),
        "faults_injected": resil.get("faults_injected", 0),
        "faults_missed": resil.get("faults_missed", 0),
        "mttr_cycles": resil.get("mttr_cycles"),
        "max_recovery_cycles": resil.get("max_recovery_cycles"),
        "unrecovered": resil.get("unrecovered", 0),
        "goodput_ratio": resil.get("goodput_ratio"),
        "drops": resil.get("drops", {}),
    }


def run(
    quanta: int = 4000,
    packets: int = 2400,
    seed: int = 0,
    out: Optional[str] = DEFAULT_OUT,
    plan: Optional[str] = None,
    telemetry: bool = False,
    worlds: int = ENVELOPE_WORLDS,
) -> ExperimentResult:
    """The resilience table: one row per chaos scenario.

    ``plan`` optionally names a fault-plan JSON file to run as an extra
    user scenario at fabric fidelity.  Writes the machine-readable table
    to ``out`` (schema ``repro-resilience/1``) unless ``out`` is None.
    ``telemetry`` runs every scenario with the telemetry layer enabled
    and attaches the aggregate event/journey summary to the table.
    ``worlds`` sizes the many-worlds baseline envelope (0 disables it
    and the envelope-derived checks).
    """
    base = WorkloadSpec(pattern="uniform", packet_bytes=1024, quanta=quanta)
    # Envelope first: the vectorized engine refuses to run while a
    # telemetry recorder is armed (it cannot emit per-world traces).
    env = _baseline_envelope(base, seed, worlds) if worlds > 0 else None
    if telemetry:
        from repro.telemetry import runtime as _telemetry

        with _telemetry.capture() as tel:
            return _run_scenarios(quanta, packets, seed, out, plan, tel, base, env)
    return _run_scenarios(quanta, packets, seed, out, plan, None, base, env)


def _run_scenarios(
    quanta: int,
    packets: int,
    seed: int,
    out: Optional[str],
    plan: Optional[str],
    tel,
    base: WorkloadSpec,
    env: Optional[Dict[str, Any]],
) -> ExperimentResult:
    result = ExperimentResult(
        name="resilience",
        description="Chaos scenarios: MTTR (cycles), goodput, drop taxonomy",
    )
    costs = SimConfig().cost_model()
    words = costs.bytes_to_words(1024)
    # Rough per-quantum cycle cost (body + control) used only to place
    # fault cycles sensibly inside the run; nothing here needs to be
    # exact because every window is measured, not predicted.
    est_q = words + 100
    warmup = max(50, quanta // 20)
    horizon = quanta * est_q
    scenarios: List[Dict[str, Any]] = []

    # -- baseline + empty-plan identity ---------------------------------
    baseline = _fabric_run(base, seed)
    empty = _fabric_run(base.replace(fault_plan=FaultPlan.empty()), seed)
    result.add("baseline_gbps", baseline.gbps)
    scenarios.append(_scenario_row("baseline", baseline))
    # Seed-to-seed spread of the fault-free fabric, from the many-worlds
    # envelope computed in run().  ``rel_spread`` (std/mean of gbps) is
    # the real error bar behind the acceptance tolerances below.
    genv = env["envelopes"]["gbps"] if env is not None else None
    rel_spread = (
        genv["std"] / genv["mean"] if genv is not None and genv["mean"] else 0.0
    )
    if genv is not None:
        result.add(
            "baseline_envelope_gbps",
            f"{genv['mean']:.3f} ± {genv['ci95']:.3f}",
            extra_note=f"{env['worlds']} worlds, p50 {genv['p50']:.3f} "
            f"p99 {genv['p99']:.3f}",
        )
    empty_identical = (
        baseline.gbps == empty.gbps
        and baseline.cycles == empty.cycles
        and baseline.delivered_packets == empty.delivered_packets
    )

    # -- dead port vs a true 3-port reference ---------------------------
    # Permutation traffic with shift=1: killing port 3 turns the 4-flow
    # permutation into a clean 3-flow one (input 2's remapped 3->0 flow
    # replaces exactly the flow the dead input 3 stopped sending), so
    # the surviving ports' goodput is directly comparable to a genuine
    # 3-port fault-free run -- the proportional-degradation claim.
    # Uniform traffic would instead concentrate remapped load on one
    # neighbour (a hotspot, a different experiment).
    kill_cycle = (warmup + 10) * est_q  # just after the measured window opens
    perm = base.replace(pattern="permutation", shift=1)
    dead = _fabric_run(
        perm.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=kill_cycle, kind="port_down", target="port:3"),),
                name="dead-port",
            )
        ),
        seed,
    )
    ref3 = _fabric_run(perm, seed, ports=3)
    dead_ratio = dead.gbps / ref3.gbps if ref3.gbps else 0.0
    result.add("dead_port_gbps", dead.gbps, extra_note="vs 3-port ref")
    result.add("dead_port_vs_3port_ref", dead_ratio, 1.0)
    row = _scenario_row("dead_port", dead)
    row["ref_3port_gbps"] = ref3.gbps
    row["vs_3port_ref"] = dead_ratio
    scenarios.append(row)

    # -- token loss ------------------------------------------------------
    token = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=horizon // 3, kind="token_loss"),),
                name="token-loss",
            )
        ),
        seed,
    )
    token_mttr = token.extra["resilience"]["mttr_cycles"]
    result.add("token_loss_mttr_cycles", token_mttr)
    scenarios.append(_scenario_row("token_loss", token))

    # -- flapping input link --------------------------------------------
    flap_at = horizon // 4
    flap = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(
                    FaultEvent(cycle=flap_at, kind="link_down", target="input:1",
                               duration=8 * est_q),
                    FaultEvent(cycle=flap_at + 20 * est_q, kind="link_down",
                               target="input:1", duration=8 * est_q),
                ),
                name="link-flap",
            )
        ),
        seed,
    )
    result.add(
        "link_flap_goodput", flap.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("link_flap", flap))

    # -- single-word corruption -----------------------------------------
    corrupt = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=tuple(
                    FaultEvent(cycle=horizon // 3 + i * 10 * est_q,
                               kind="corrupt", target=f"input:{i}", param=5 + i)
                    for i in range(3)
                ),
                name="corrupt",
            )
        ),
        seed,
    )
    result.add(
        "corrupt_drops", corrupt.extra["resilience"]["drops"].get("corrupt", 0), 3
    )
    scenarios.append(_scenario_row("corrupt", corrupt))

    # -- egress overload -------------------------------------------------
    overload = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=horizon // 2, kind="overload",
                                   target="port:2", duration=15 * est_q),),
                name="overload",
            )
        ),
        seed,
    )
    result.add(
        "overload_goodput", overload.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("overload", overload))

    # -- bursty declarative workload under a link flap -------------------
    # The chaos harness through the unified traffic layer: IMIX sizes
    # with heavy on-off arrivals (the "imix_onoff" preset) instead of a
    # saturated fixed-size pattern, so recovery is measured under gaps
    # and mixed packet sizes.
    imix = _fabric_run(
        base.replace(
            traffic="imix_onoff",
            fault_plan=FaultPlan(
                events=(
                    FaultEvent(cycle=flap_at, kind="link_down",
                               target="input:2", duration=8 * est_q),
                ),
                name="imix-onoff-flap",
            ),
        ),
        seed,
    )
    result.add(
        "imix_onoff_goodput", imix.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("imix_onoff", imix))

    # -- combined plan through the phase-level router --------------------
    phase_plan = FaultPlan(
        events=(
            FaultEvent(cycle=36_000, kind="token_loss"),
            FaultEvent(cycle=42_000, kind="link_down", target="input:1",
                       duration=2_000),
            FaultEvent(cycle=48_000, kind="corrupt", target="input:2", param=7),
        ),
        name="phase-mixed",
    )
    phase = RouterEngine(SimConfig(fidelity="router", seed=seed)).run(
        WorkloadSpec(pattern="uniform", packet_bytes=1024, packets=packets,
                     fault_plan=phase_plan)
    )
    presil = phase.extra["resilience"]
    result.add("phase_mixed_goodput", presil["goodput_ratio"])
    result.add("phase_mixed_mttr_cycles", presil["mttr_cycles"])
    scenarios.append(_scenario_row("phase_mixed", phase))

    # -- optional user plan ---------------------------------------------
    if plan is not None:
        user = _fabric_run(base.replace(fault_plan=plan), seed)
        user_name = getattr(resolve_plan(plan), "name", "") or "user_plan"
        row = _scenario_row(f"plan:{user_name}", user)
        scenarios.append(row)
        resil = user.extra.get("resilience", {})
        result.add(f"plan_{user_name}_goodput", resil.get("goodput_ratio"))

    # -- acceptance invariants ------------------------------------------
    checks = [
        {
            "name": "empty_plan_identity",
            "passed": empty_identical,
            "detail": f"empty-plan run {empty.gbps:.8f} Gbps / {empty.cycles} cyc "
                      f"vs baseline {baseline.gbps:.8f} Gbps / {baseline.cycles} cyc",
        },
        {
            # The 5% floor is the historical bound; the envelope widens
            # it when the measured seed-to-seed spread says 5% would be
            # tighter than the fabric's own run-to-run noise.
            "name": "dead_port_within_5pct_of_3port",
            "passed": abs(dead_ratio - 1.0) <= max(0.05, 3 * rel_spread),
            "detail": f"degraded 4-port {dead.gbps:.3f} Gbps vs 3-port "
                      f"reference {ref3.gbps:.3f} Gbps (ratio {dead_ratio:.4f}, "
                      f"tolerance {max(0.05, 3 * rel_spread):.4f} from "
                      f"3-sigma envelope spread)",
        },
        {
            "name": "token_mttr_bounded",
            "passed": token_mttr is not None
            and 0 < token_mttr <= TOKEN_MTTR_BOUND_CYCLES,
            "detail": f"token regenerated in {token_mttr} cycles "
                      f"(bound {TOKEN_MTTR_BOUND_CYCLES})",
        },
        {
            "name": "imix_onoff_delivers",
            "passed": imix.delivered_packets > 0
            and imix.extra["resilience"]["faults_injected"] == 1,
            "detail": f"declarative imix_onoff workload delivered "
                      f"{imix.delivered_packets} packets under a link flap",
        },
        {
            "name": "all_faults_recovered",
            "passed": all(s["unrecovered"] == 0 for s in scenarios),
            "detail": "open recovery records: "
            + ", ".join(f"{s['name']}={s['unrecovered']}" for s in scenarios),
        },
    ]
    if env is not None:
        checks.append(
            {
                "name": "manyworlds_world0_identity",
                "passed": bool(env["world0_identical"]),
                "detail": f"vectorized world 0 {env['world0_gbps']:.8f} Gbps "
                f"vs scalar engine {env['world0_scalar_gbps']:.8f} Gbps "
                f"({env['worlds']} worlds, "
                f"{'vectorized' if env['vectorized'] else 'scalar fallback'})",
            }
        )
        # The single-seed baseline draws traffic from the historical
        # shared-np.random source, the envelope from the counter RNG --
        # different streams, same uniform-saturated distribution -- so
        # the baseline must sit inside the envelope's spread, not match
        # its mean exactly.
        tol = max(5 * genv["std"], 0.05 * genv["mean"])
        checks.append(
            {
                "name": "baseline_within_envelope",
                "passed": abs(baseline.gbps - genv["mean"]) <= tol,
                "detail": f"single-seed baseline {baseline.gbps:.3f} Gbps vs "
                f"envelope {genv['mean']:.3f} ± {genv['ci95']:.3f} Gbps "
                f"(ci95, {env['worlds']} worlds; tolerance {tol:.3f})",
            }
        )
    for c in checks:
        result.add(f"check:{c['name']}", "pass" if c["passed"] else "FAIL")
    result.checks = checks
    result.notes = "\n".join(
        f"  {s['name']:<14} {s['gbps']:8.3f} Gbps  "
        f"mttr={s['mttr_cycles'] if s['mttr_cycles'] is not None else '-':>8}  "
        f"goodput={s['goodput_ratio'] if s['goodput_ratio'] is not None else '-'}  "
        f"drops={s['drops']}"
        for s in scenarios
    )

    if out is not None:
        table = {
            "schema": RESULTS_SCHEMA,
            "seed": seed,
            "quanta": quanta,
            "packets": packets,
            "scenarios": scenarios,
            "checks": checks,
        }
        if env is not None:
            table["baseline_envelope"] = env
        if tel is not None:
            table["telemetry"] = tel.summary()
        with open(out, "w") as fh:
            json.dump(table, fh, indent=2)
            fh.write("\n")
    return result


def run_quick(seed: int = 0, out: Optional[str] = DEFAULT_OUT,
              plan: Optional[str] = None,
              telemetry: bool = False,
              worlds: int = ENVELOPE_WORLDS_QUICK) -> ExperimentResult:
    """CI-smoke budget: same scenarios, ~5x shorter runs, fewer worlds."""
    return run(quanta=800, packets=600, seed=seed, out=out, plan=plan,
               telemetry=telemetry, worlds=worlds)


def validate_results(path: str = DEFAULT_OUT) -> List[str]:
    """Schema-check a written resilience table; returns problem strings."""
    problems: List[str] = []
    try:
        with open(path) as fh:
            table = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    if table.get("schema") != RESULTS_SCHEMA:
        problems.append(f"schema is {table.get('schema')!r}, want {RESULTS_SCHEMA!r}")
    if not table.get("scenarios"):
        problems.append("no scenarios recorded")
    for check in table.get("checks", []):
        if not check.get("passed"):
            problems.append(f"check failed: {check['name']} ({check['detail']})")
    return problems
