"""Resilience under injected faults: recovery time and degraded goodput.

The chaos counterpart of the throughput experiments: each scenario arms
one :class:`~repro.faults.plan.FaultPlan` against an engine run and
reports the resilience metrics of :mod:`repro.metrics.resilience` --
mean time to recover (MTTR, in cycles), delivered-vs-offered goodput,
and the drop taxonomy.  The scenarios map one-to-one to the failure
modes the fault model defines:

* ``baseline`` / ``empty_plan`` -- the fault-free reference, and the
  guarantee that an *empty* plan is bit-identical to no plan at all;
* ``dead_port`` -- one of four ports dies mid-run; degraded-mode
  routing masks it and the surviving ports' goodput is compared against
  a genuine 3-port fault-free run (the proportional-degradation claim);
* ``token_loss`` -- the rotating token vanishes; the fabric detects it
  by timeout and regenerates it at port 0 in a bounded number of idle
  quanta;
* ``link_flap`` -- an input link drops twice briefly; held words resume
  and both windows close;
* ``corrupt`` -- single-word corruption, caught downstream by the IP
  header checksum and counted as a drop, never delivered;
* ``overload`` -- an egress line card is overrun; upstream queues hold
  and drain after the window;
* ``phase_mixed`` -- a combined plan on the phase-level router engine,
  exercising the same machinery through the full ingress/lookup/egress
  pipeline.

``run()`` also evaluates the acceptance invariants (the ``checks`` list
in the JSON table): empty-plan identity, dead-port goodput within 5% of
the 3-port reference, bounded token MTTR, and no unrecovered faults.
``python -m repro chaos --check`` turns any failed check into a nonzero
exit, which is what the CI smoke job gates on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.config import SimConfig
from repro.engines import FabricEngine, RouterEngine, RunResult, WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.faults.plan import FaultEvent, FaultPlan, resolve_plan

RESULTS_SCHEMA = "repro-resilience/1"
DEFAULT_OUT = "benchmarks/RESILIENCE_results.json"

#: Generous bound on token-regeneration time: detection happens at the
#: next quantum boundary (one full body quantum at most) and repair
#: burns ``ports + 1`` idle control quanta, so anything in this
#: neighbourhood is "bounded"; a runaway would be orders larger.
TOKEN_MTTR_BOUND_CYCLES = 5_000


def _fabric_run(
    workload: WorkloadSpec, seed: int, ports: int = 4
) -> RunResult:
    return FabricEngine(SimConfig(seed=seed, ports=ports)).run(workload)


def _scenario_row(name: str, res: RunResult) -> Dict[str, Any]:
    resil = res.extra.get("resilience", {})
    return {
        "name": name,
        "fidelity": res.fidelity,
        "gbps": res.gbps,
        "cycles": res.cycles,
        "delivered_packets": res.delivered_packets,
        "per_port_packets": list(res.per_port_packets),
        "faults_injected": resil.get("faults_injected", 0),
        "faults_missed": resil.get("faults_missed", 0),
        "mttr_cycles": resil.get("mttr_cycles"),
        "max_recovery_cycles": resil.get("max_recovery_cycles"),
        "unrecovered": resil.get("unrecovered", 0),
        "goodput_ratio": resil.get("goodput_ratio"),
        "drops": resil.get("drops", {}),
    }


def run(
    quanta: int = 4000,
    packets: int = 2400,
    seed: int = 0,
    out: Optional[str] = DEFAULT_OUT,
    plan: Optional[str] = None,
    telemetry: bool = False,
) -> ExperimentResult:
    """The resilience table: one row per chaos scenario.

    ``plan`` optionally names a fault-plan JSON file to run as an extra
    user scenario at fabric fidelity.  Writes the machine-readable table
    to ``out`` (schema ``repro-resilience/1``) unless ``out`` is None.
    ``telemetry`` runs every scenario with the telemetry layer enabled
    and attaches the aggregate event/journey summary to the table.
    """
    if telemetry:
        from repro.telemetry import runtime as _telemetry

        with _telemetry.capture() as tel:
            return _run_scenarios(quanta, packets, seed, out, plan, tel)
    return _run_scenarios(quanta, packets, seed, out, plan, None)


def _run_scenarios(
    quanta: int,
    packets: int,
    seed: int,
    out: Optional[str],
    plan: Optional[str],
    tel,
) -> ExperimentResult:
    result = ExperimentResult(
        name="resilience",
        description="Chaos scenarios: MTTR (cycles), goodput, drop taxonomy",
    )
    base = WorkloadSpec(pattern="uniform", packet_bytes=1024, quanta=quanta)
    costs = SimConfig().cost_model()
    words = costs.bytes_to_words(1024)
    # Rough per-quantum cycle cost (body + control) used only to place
    # fault cycles sensibly inside the run; nothing here needs to be
    # exact because every window is measured, not predicted.
    est_q = words + 100
    warmup = max(50, quanta // 20)
    horizon = quanta * est_q
    scenarios: List[Dict[str, Any]] = []

    # -- baseline + empty-plan identity ---------------------------------
    baseline = _fabric_run(base, seed)
    empty = _fabric_run(base.replace(fault_plan=FaultPlan.empty()), seed)
    result.add("baseline_gbps", baseline.gbps)
    scenarios.append(_scenario_row("baseline", baseline))
    empty_identical = (
        baseline.gbps == empty.gbps
        and baseline.cycles == empty.cycles
        and baseline.delivered_packets == empty.delivered_packets
    )

    # -- dead port vs a true 3-port reference ---------------------------
    # Permutation traffic with shift=1: killing port 3 turns the 4-flow
    # permutation into a clean 3-flow one (input 2's remapped 3->0 flow
    # replaces exactly the flow the dead input 3 stopped sending), so
    # the surviving ports' goodput is directly comparable to a genuine
    # 3-port fault-free run -- the proportional-degradation claim.
    # Uniform traffic would instead concentrate remapped load on one
    # neighbour (a hotspot, a different experiment).
    kill_cycle = (warmup + 10) * est_q  # just after the measured window opens
    perm = base.replace(pattern="permutation", shift=1)
    dead = _fabric_run(
        perm.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=kill_cycle, kind="port_down", target="port:3"),),
                name="dead-port",
            )
        ),
        seed,
    )
    ref3 = _fabric_run(perm, seed, ports=3)
    dead_ratio = dead.gbps / ref3.gbps if ref3.gbps else 0.0
    result.add("dead_port_gbps", dead.gbps, extra_note="vs 3-port ref")
    result.add("dead_port_vs_3port_ref", dead_ratio, 1.0)
    row = _scenario_row("dead_port", dead)
    row["ref_3port_gbps"] = ref3.gbps
    row["vs_3port_ref"] = dead_ratio
    scenarios.append(row)

    # -- token loss ------------------------------------------------------
    token = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=horizon // 3, kind="token_loss"),),
                name="token-loss",
            )
        ),
        seed,
    )
    token_mttr = token.extra["resilience"]["mttr_cycles"]
    result.add("token_loss_mttr_cycles", token_mttr)
    scenarios.append(_scenario_row("token_loss", token))

    # -- flapping input link --------------------------------------------
    flap_at = horizon // 4
    flap = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(
                    FaultEvent(cycle=flap_at, kind="link_down", target="input:1",
                               duration=8 * est_q),
                    FaultEvent(cycle=flap_at + 20 * est_q, kind="link_down",
                               target="input:1", duration=8 * est_q),
                ),
                name="link-flap",
            )
        ),
        seed,
    )
    result.add(
        "link_flap_goodput", flap.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("link_flap", flap))

    # -- single-word corruption -----------------------------------------
    corrupt = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=tuple(
                    FaultEvent(cycle=horizon // 3 + i * 10 * est_q,
                               kind="corrupt", target=f"input:{i}", param=5 + i)
                    for i in range(3)
                ),
                name="corrupt",
            )
        ),
        seed,
    )
    result.add(
        "corrupt_drops", corrupt.extra["resilience"]["drops"].get("corrupt", 0), 3
    )
    scenarios.append(_scenario_row("corrupt", corrupt))

    # -- egress overload -------------------------------------------------
    overload = _fabric_run(
        base.replace(
            fault_plan=FaultPlan(
                events=(FaultEvent(cycle=horizon // 2, kind="overload",
                                   target="port:2", duration=15 * est_q),),
                name="overload",
            )
        ),
        seed,
    )
    result.add(
        "overload_goodput", overload.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("overload", overload))

    # -- bursty declarative workload under a link flap -------------------
    # The chaos harness through the unified traffic layer: IMIX sizes
    # with heavy on-off arrivals (the "imix_onoff" preset) instead of a
    # saturated fixed-size pattern, so recovery is measured under gaps
    # and mixed packet sizes.
    imix = _fabric_run(
        base.replace(
            traffic="imix_onoff",
            fault_plan=FaultPlan(
                events=(
                    FaultEvent(cycle=flap_at, kind="link_down",
                               target="input:2", duration=8 * est_q),
                ),
                name="imix-onoff-flap",
            ),
        ),
        seed,
    )
    result.add(
        "imix_onoff_goodput", imix.extra["resilience"]["goodput_ratio"]
    )
    scenarios.append(_scenario_row("imix_onoff", imix))

    # -- combined plan through the phase-level router --------------------
    phase_plan = FaultPlan(
        events=(
            FaultEvent(cycle=36_000, kind="token_loss"),
            FaultEvent(cycle=42_000, kind="link_down", target="input:1",
                       duration=2_000),
            FaultEvent(cycle=48_000, kind="corrupt", target="input:2", param=7),
        ),
        name="phase-mixed",
    )
    phase = RouterEngine(SimConfig(fidelity="router", seed=seed)).run(
        WorkloadSpec(pattern="uniform", packet_bytes=1024, packets=packets,
                     fault_plan=phase_plan)
    )
    presil = phase.extra["resilience"]
    result.add("phase_mixed_goodput", presil["goodput_ratio"])
    result.add("phase_mixed_mttr_cycles", presil["mttr_cycles"])
    scenarios.append(_scenario_row("phase_mixed", phase))

    # -- optional user plan ---------------------------------------------
    if plan is not None:
        user = _fabric_run(base.replace(fault_plan=plan), seed)
        user_name = getattr(resolve_plan(plan), "name", "") or "user_plan"
        row = _scenario_row(f"plan:{user_name}", user)
        scenarios.append(row)
        resil = user.extra.get("resilience", {})
        result.add(f"plan_{user_name}_goodput", resil.get("goodput_ratio"))

    # -- acceptance invariants ------------------------------------------
    checks = [
        {
            "name": "empty_plan_identity",
            "passed": empty_identical,
            "detail": f"empty-plan run {empty.gbps:.8f} Gbps / {empty.cycles} cyc "
                      f"vs baseline {baseline.gbps:.8f} Gbps / {baseline.cycles} cyc",
        },
        {
            "name": "dead_port_within_5pct_of_3port",
            "passed": abs(dead_ratio - 1.0) <= 0.05,
            "detail": f"degraded 4-port {dead.gbps:.3f} Gbps vs 3-port "
                      f"reference {ref3.gbps:.3f} Gbps (ratio {dead_ratio:.4f})",
        },
        {
            "name": "token_mttr_bounded",
            "passed": token_mttr is not None
            and 0 < token_mttr <= TOKEN_MTTR_BOUND_CYCLES,
            "detail": f"token regenerated in {token_mttr} cycles "
                      f"(bound {TOKEN_MTTR_BOUND_CYCLES})",
        },
        {
            "name": "imix_onoff_delivers",
            "passed": imix.delivered_packets > 0
            and imix.extra["resilience"]["faults_injected"] == 1,
            "detail": f"declarative imix_onoff workload delivered "
                      f"{imix.delivered_packets} packets under a link flap",
        },
        {
            "name": "all_faults_recovered",
            "passed": all(s["unrecovered"] == 0 for s in scenarios),
            "detail": "open recovery records: "
            + ", ".join(f"{s['name']}={s['unrecovered']}" for s in scenarios),
        },
    ]
    for c in checks:
        result.add(f"check:{c['name']}", "pass" if c["passed"] else "FAIL")
    result.checks = checks
    result.notes = "\n".join(
        f"  {s['name']:<14} {s['gbps']:8.3f} Gbps  "
        f"mttr={s['mttr_cycles'] if s['mttr_cycles'] is not None else '-':>8}  "
        f"goodput={s['goodput_ratio'] if s['goodput_ratio'] is not None else '-'}  "
        f"drops={s['drops']}"
        for s in scenarios
    )

    if out is not None:
        table = {
            "schema": RESULTS_SCHEMA,
            "seed": seed,
            "quanta": quanta,
            "packets": packets,
            "scenarios": scenarios,
            "checks": checks,
        }
        if tel is not None:
            table["telemetry"] = tel.summary()
        with open(out, "w") as fh:
            json.dump(table, fh, indent=2)
            fh.write("\n")
    return result


def run_quick(seed: int = 0, out: Optional[str] = DEFAULT_OUT,
              plan: Optional[str] = None,
              telemetry: bool = False) -> ExperimentResult:
    """CI-smoke budget: same scenarios, ~5x shorter runs."""
    return run(quanta=800, packets=600, seed=seed, out=out, plan=plan,
               telemetry=telemetry)


def validate_results(path: str = DEFAULT_OUT) -> List[str]:
    """Schema-check a written resilience table; returns problem strings."""
    problems: List[str] = []
    try:
        with open(path) as fh:
            table = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    if table.get("schema") != RESULTS_SCHEMA:
        problems.append(f"schema is {table.get('schema')!r}, want {RESULTS_SCHEMA!r}")
    if not table.get("scenarios"):
        problems.append("no scenarios recorded")
    for check in table.get("checks", []):
        if not check.get("passed"):
            problems.append(f"check failed: {check['name']} ({check['detail']})")
    return problems
