"""Experiment harness: one module per paper table/figure + extensions.

Every module exposes a ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows pair the
measured value with the paper's reference number (from
:mod:`repro.experiments.paperdata`).  The pytest-benchmark files under
``benchmarks/`` are thin wrappers over these functions, so the printed
tables regenerate the thesis's evaluation artifacts:

==================  =====================================================
fig7_1              Peak / average throughput vs packet size vs Click
fig7_3              Per-tile utilization timelines (word-level model)
table6_1            Configuration space size + minimization
fig5_1              The worked allocation example of Fig 5-1
ablations           Second static network, quantum size, pipelining
claims_ch2          HOL vs VOQ/iSLIP, cells vs variable-length packets
scaling             N-port rotating crossbar (section 8.5)
multichip           Clos of 4-port crossbars vs one big ring (8.5)
fairness_qos        Starvation bound + weighted-token QoS (5.4, 8.7)
multicast_ext       Fabric multicast vs ingress replication (8.6)
lookup_ext          Route-lookup structures + non-blocking reads (8.2)
compute_ext         Computation in the fabric (8.3)
load_latency        Latency vs offered load (extension figure)
==================  =====================================================
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
