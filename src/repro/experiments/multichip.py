"""Section 8.5 realized: a 16-port router from twelve 4-port crossbars.

The thesis's scaling future-work: compose the 4-port Rotating Crossbar
rather than grow one ring.  This experiment measures why -- the single
16-ring's bisection caps antipodal permutations near the 4-port rate,
while a three-stage Clos of 4x4 Rotating Crossbars (with adaptive
middle-stage reselection) restores ~4x of it -- and what it costs
(12 crossbar chips and a 3-quantum pipeline instead of 1 ring).
"""

from __future__ import annotations

import numpy as np

from repro.core.compose import ClosFabric, clos_vs_single_ring
from repro.core.fabricsim import saturated_uniform
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run(size_bytes: int = 1024, quanta: int = 2000, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="ext_multichip",
        description="16 ports: one big ring vs a Clos of 4-port crossbars",
    )
    words = costs.bytes_to_words(size_bytes)

    ring_gbps, clos_gbps = clos_vs_single_ring(
        num_ports=16, words=words, quanta=quanta, shift=8
    )
    result.add("antipodal_single_ring_gbps", ring_gbps)
    result.add("antipodal_clos_gbps", clos_gbps)
    result.add("antipodal_clos_gain", clos_gbps / ring_gbps if ring_gbps else 0.0)

    ring_n_gbps, clos_n_gbps = clos_vs_single_ring(
        num_ports=16, words=words, quanta=quanta, shift=1
    )
    result.add("neighbor_single_ring_gbps", ring_n_gbps)
    result.add("neighbor_clos_gbps", clos_n_gbps)

    rng = np.random.default_rng(seed)
    clos = ClosFabric()
    uni = clos.run(
        saturated_uniform(words, rng, n=16, exclude_self=True),
        quanta=quanta,
        warmup_quanta=quanta // 10,
    )
    result.add("uniform_clos_gbps", uni.gbps)
    result.notes = (
        "the composition trades 12 chips and a 3-quantum pipeline for "
        "bisection bandwidth: adversarial permutations scale again, the "
        "thesis's multi-crossbar proposal quantified."
    )
    return result
