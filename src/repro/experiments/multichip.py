"""Section 8.5 realized: a (k*k)-port router from 3k k-port crossbars.

The thesis's scaling future-work: compose the 4-port Rotating Crossbar
rather than grow one ring.  This experiment measures why -- the single
k*k-ring's bisection caps antipodal permutations near the 4-port rate,
while a three-stage Clos of kxk Rotating Crossbars (with adaptive
middle-stage reselection) restores ~4x of it -- and what it costs
(3k crossbar chips and a 3-quantum pipeline instead of 1 ring).

``run()`` is parameterized over chip count (``k``: k*k external ports
on 3k chips), geometry, and -- via the space-partitioned engine
(:mod:`repro.parallel.space_shard`, DESIGN.md §13) -- the number of
worker processes the Clos is distributed across.  The distributed
numbers are asserted bit-identical to the serial reference before they
are reported, so the partitioned rows measure *the same* fabric.
"""

from __future__ import annotations

import numpy as np

from repro.core.compose import ClosFabric, clos_vs_single_ring
from repro.core.fabricsim import saturated_uniform
from repro.experiments.common import ExperimentResult
from repro.raw import costs


def run(
    size_bytes: int = 1024,
    quanta: int = 2000,
    seed: int = 0,
    k: int = 4,
    geometry: str = "clos",
    partitions: int = 3,
    latency: int = 4,
    transport: str = "pipe",
) -> ExperimentResult:
    """Compare one big ring against composed crossbars at ``k*k`` ports.

    ``k`` sets the chip size and port count (k*k ports from 3k chips);
    ``partitions``/``latency``/``transport`` drive the same Clos through
    the space-partitioned token-window engine for the distributed rows
    (``transport``: pipe, shm, or socket -- DESIGN.md §15).
    """
    if geometry != "clos":
        raise ValueError(f"unknown multichip geometry {geometry!r}")
    num_ports = k * k
    result = ExperimentResult(
        name="ext_multichip",
        description=(
            f"{num_ports} ports: one big ring vs a Clos of {k}-port "
            f"crossbars ({3 * k} chips, P={partitions} space partitions)"
        ),
    )
    words = costs.bytes_to_words(size_bytes)

    ring_gbps, clos_gbps = clos_vs_single_ring(
        num_ports=num_ports, words=words, quanta=quanta, shift=num_ports // 2
    )
    result.add("antipodal_single_ring_gbps", ring_gbps)
    result.add("antipodal_clos_gbps", clos_gbps)
    result.add("antipodal_clos_gain", clos_gbps / ring_gbps if ring_gbps else 0.0)

    ring_n_gbps, clos_n_gbps = clos_vs_single_ring(
        num_ports=num_ports, words=words, quanta=quanta, shift=1
    )
    result.add("neighbor_single_ring_gbps", ring_n_gbps)
    result.add("neighbor_clos_gbps", clos_n_gbps)

    rng = np.random.default_rng(seed)
    clos = ClosFabric(k=k)
    uni = clos.run(
        saturated_uniform(words, rng, n=num_ports, exclude_self=True),
        quanta=quanta,
        warmup_quanta=quanta // 10,
    )
    result.add("uniform_clos_gbps", uni.gbps)

    # The same Clos through the space-partitioned engine: serial
    # reference first, then P token-window workers, asserted identical.
    from repro.parallel.space_shard import (
        SpaceSpec,
        run_space,
        run_space_serial,
    )

    spec = SpaceSpec(
        k=k,
        latency=latency,
        partitions=partitions,
        source=SpaceSpec.pack_source(
            {"kind": "permutation", "words": words, "shift": num_ports // 2}
        ),
        quanta=quanta,
        warmup_quanta=quanta // 10,
    )
    serial = run_space_serial(spec, cached=True)
    dist, info = run_space(spec, transport=transport)
    if dist.counters() != serial.counters():
        raise AssertionError(
            "space-partitioned Clos diverged from the serial reference"
        )
    result.add("space_clos_antipodal_gbps", dist.gbps)
    result.add("space_partitions", float(info.workers))
    result.add(
        "space_boundary_flits_total", float(sum(info.boundary_flits))
    )
    result.add("space_bytes_moved", float(sum(info.bytes_moved)))
    result.notes = (
        "the composition trades 3k chips and a 3-quantum pipeline for "
        "bisection bandwidth: adversarial permutations scale again, the "
        "thesis's multi-crossbar proposal quantified -- and the same "
        "Clos runs space-partitioned across worker processes "
        "bit-identically (DESIGN.md §13)."
    )
    return result
